"""Run every fig-benchmark in reduced "smoke" mode and record a perf trajectory.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--output BENCH_engine.json]

Each benchmark's underlying sweep runs with deliberately small parameters
(one application, tiny tuning budgets) so the whole suite completes in well
under a minute.  The driver measures per-benchmark wall-clock, collects the
execution engine's cache/prefix-reuse counters from every pipeline run,
re-times the H2 window-tuner sweep through the sequential (no cache, no
prefix reuse) path, the batched engine path on every execution tier, and the
pipelined async-submission path, times two concurrent estimator
frontends sharing one engine through the slot scheduler against a serial
FIFO drain, and compares the dense and PTM simulation kernels on identical
inputs (``docs/ptm.md``), so future perf PRs have a machine-readable
trajectory (``BENCH_engine.json``) to compare against.
``docs/benchmarks.md`` explains every leg.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

os.environ.setdefault("REPRO_BENCH_SMOKE", "1")

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR))
# The randomized-schedule leg shares its generator with the fuzz test suites
# (one source for fuzz cases and benchmark inputs; see docs/testing.md), and
# the service-load leg reuses the load generator's runner.
sys.path.insert(0, str(BENCH_DIR.parent / "tests"))
sys.path.insert(0, str(BENCH_DIR.parent / "tools"))

import numpy as np

import vaqem_shared


def _smoke_runners():
    """(name, zero-argument callable) per fig-benchmark, smallest useful size."""
    import bench_fig03_surface
    import bench_fig05_dd_sweep
    import bench_fig06_gate_position
    import bench_fig08_angle_tuning
    import bench_fig09_sim_vs_machine
    import bench_fig12_improvements
    import bench_fig13_rel_optimal
    import bench_fig14_window_configs
    import bench_fig15_execution_time
    import bench_fig16_temporal_variability
    import bench_table1_characteristics

    return [
        ("table1_characteristics", bench_table1_characteristics._characterise),
        ("fig03_surface", lambda: bench_fig03_surface._surface_slice(num_points=5)),
        ("fig05_dd_sweep", lambda: bench_fig05_dd_sweep._dd_sweep(max_counts=6)),
        ("fig06_gate_position", lambda: bench_fig06_gate_position._position_sweep(num_positions=7)),
        ("fig08_angle_tuning", lambda: bench_fig08_angle_tuning._angle_tuning_trajectories(maxiter=20, samples=3)),
        ("fig09_sim_vs_machine", lambda: bench_fig09_sim_vs_machine._position_sweep(num_positions=5)),
        ("fig12_improvements", bench_fig12_improvements._run_all),
        ("fig13_rel_optimal", bench_fig13_rel_optimal._run_all),
        ("fig14_window_configs", bench_fig14_window_configs._window_configurations),
        ("fig15_execution_time", lambda: bench_fig15_execution_time._time_breakdowns(angle_iterations=50)),
        ("fig16_temporal_variability", lambda: bench_fig16_temporal_variability._drift_series(hours=6, step_hours=3)),
    ]


#: Worker count for the thread/process legs of the H2 comparison (the
#: acceptance target is the process tier beating threads at >= 4 workers;
#: on hosts with fewer cores the numbers are still recorded honestly).
_PARALLEL_WORKERS = 4


def _h2_tuner_comparison():
    """Time the H2 window-tuner sweep across every execution tier.

    Six legs tune from the same compiled schedule: the legacy *sequential*
    path (no cache, no prefix or segment reuse — what the pre-engine code
    did), the
    batched engine path in its *serial*, *thread* and *process* tiers, the
    *pipelined* leg — asynchronous submission over the process tier, where
    the tuner builds window N+1's candidates while window N's execute
    (``docs/async.md``) — and the *serial_exact* leg, which disables the
    commutation-aware canonical keying (``docs/architecture.md``) to isolate
    what canonicalisation is worth.  With ``shots=None`` the tuned energies
    of the five canonical legs must agree bit for bit (the engine acceptance
    criterion); only wall-clock may differ.  The exact-keying leg processes a
    mathematically equivalent but differently-ordered operator sequence, so
    its energy agrees to float tolerance and the delta is recorded.
    """
    from repro.engine import NoisyDensityMatrixEngine
    from repro.simulators import NoiseModel
    from repro.transpiler import transpile
    from repro.vaqem import IndependentWindowTuner, TuningBudget
    from repro.vqe import ExpectationEstimator, get_application

    application = get_application("UCCSD_H2")
    rng = np.random.default_rng(3)
    circuit = application.ansatz.bind_parameters(
        rng.uniform(-0.3, 0.3, application.num_parameters)
    )
    circuit.measure_all()
    device = application.device()
    compiled = transpile(circuit, device)
    budget = TuningBudget(dd_resolution=4, gs_resolution=4, max_windows=10)

    def tune(leg: str):
        # A fresh noise model per leg: otherwise the legs timed later would
        # inherit the first leg's warmed channel cache and bias the speedups.
        batched = leg != "sequential"
        pipelined = leg == "pipelined"
        exact_keying = leg == "serial_exact"
        tier = "process" if pipelined else ("serial" if exact_keying else leg)
        noise_model = NoiseModel.from_device(device)
        engine = NoisyDensityMatrixEngine(
            noise_model,
            seed=11,
            enable_prefix_reuse=batched,
            # The serial_exact leg keys and processes the plain time-sorted
            # order (pre-canonicalisation behaviour), isolating what the
            # commutation-aware canonical keying is worth.
            enable_canonicalisation=not exact_keying,
            # The sequential leg re-simulates every evaluation, like the
            # pre-engine code did — segment replay included, so it stays a
            # true no-reuse baseline.
            enable_segment_reuse=batched,
            result_cache_bytes=(256 << 20) if batched else 0,
        )
        estimator = ExpectationEstimator(noise_model, seed=11, engine=engine)
        tuner = IndependentWindowTuner(
            objective=lambda s: estimator.estimate(s, application.hamiltonian).value,
            budget=budget,
            batch_objective=(
                (
                    lambda ss: [
                        r.value
                        for r in estimator.estimate_batch(
                            ss,
                            application.hamiltonian,
                            max_workers=_PARALLEL_WORKERS,
                            parallelism=tier,
                        )
                    ]
                )
                if batched and not pipelined
                else None
            ),
            # The pipelined leg submits through the async layer: candidate
            # generation for the next window overlaps execution of the
            # current one on the same process tier (docs/async.md).
            async_batch_objective=(
                (
                    lambda ss: [
                        future.map(lambda r: r.value)
                        for future in estimator.submit_batch(
                            ss,
                            application.hamiltonian,
                            max_workers=_PARALLEL_WORKERS,
                            parallelism=tier,
                        )
                    ]
                )
                if pipelined
                else None
            ),
        )
        start = time.perf_counter()
        result = tuner.tune(compiled.scheduled, compiled.idle_windows)
        elapsed = time.perf_counter() - start
        engine.close()
        return elapsed, result, engine

    sequential_s, sequential, _ = tune("sequential")
    serial_s, serial, engine = tune("serial")
    thread_s, thread, _ = tune("thread")
    process_s, process, _ = tune("process")
    pipelined_s, pipelined, _ = tune("pipelined")
    exact_s, exact, exact_engine = tune("serial_exact")
    energies = {
        "sequential": sequential.tuned_value,
        "serial": serial.tuned_value,
        "thread": thread.tuned_value,
        "process": process.tuned_value,
        "pipelined": pipelined.tuned_value,
    }
    return {
        "sequential_seconds": sequential_s,
        "batched_seconds": serial_s,
        "speedup": sequential_s / serial_s if serial_s else float("inf"),
        "tuned_energy_sequential": sequential.tuned_value,
        "tuned_energy_batched": serial.tuned_value,
        "energies_exact_match": len(set(energies.values())) == 1,
        "num_evaluations": serial.num_evaluations,
        "engine_stats": engine.stats.as_dict(),
        # The headline prefix-reuse number (tracked by
        # tests/test_reuse_regression.py) plus the same sweep keyed on the
        # plain time-sorted order, isolating the canonicalisation win.  The
        # two orderings are mathematically equivalent operator sequences, so
        # their energies agree to float tolerance but not bit for bit; the
        # recorded delta keeps that honest.
        "reuse_fraction": engine.stats.reuse_fraction,
        # Segment-cache replay counters for the serial canonical leg
        # (docs/segment_reuse.md): hits are whole checkpoint-aligned segments
        # served from the content-keyed operator cache instead of re-walking
        # their instructions.
        "segment_cache": {
            "hits": engine.stats.segment_hits,
            "misses": engine.stats.segment_misses,
            "hit_rate": engine.stats.segment_hit_rate,
        },
        "canonicalisation": {
            "reuse_fraction": engine.stats.reuse_fraction,
            "exact_keying_reuse_fraction": exact_engine.stats.reuse_fraction,
            "exact_keying_seconds": exact_s,
            "canonical_vs_exact_energy_delta": abs(
                serial.tuned_value - exact.tuned_value
            ),
        },
        "parallelism": {
            "workers": _PARALLEL_WORKERS,
            "cpu_count": os.cpu_count(),
            "serial_seconds": serial_s,
            "thread_seconds": thread_s,
            "process_seconds": process_s,
            "pipelined_seconds": pipelined_s,
            "process_vs_thread_speedup": thread_s / process_s if process_s else float("inf"),
            "pipelined_vs_process_speedup": (
                process_s / pipelined_s if pipelined_s else float("inf")
            ),
            "tuned_energies": energies,
        },
    }


def _concurrent_frontends_leg():
    """Two estimators sharing one engine: slot scheduler vs serial FIFO drain.

    Each frontend owns a *disjoint* family of H2 schedules (different bound
    parameters, so no shared simulated prefix across frontends) and submits
    it in several thread-tier batches from its own thread.  The ``serial_fifo``
    configuration pins the engine's scheduler to one thread slot — the PR 3
    dispatcher behaviour, batches drain one at a time — while ``concurrent``
    uses the default slot table, letting the two frontends' independent
    batches overlap (``docs/scheduler.md``).  Values must be bit-identical
    between both configurations and a blocking serial reference; only
    wall-clock may differ.  The overlap is a genuine parallel win from two
    cores up — on a single-core host both configurations are bound by the
    same total simulation work, which the recorded ``cpu_count`` makes
    legible (``docs/benchmarks.md``).
    """
    import threading

    from repro.engine import NoisyDensityMatrixEngine
    from repro.mitigation import DDConfig, insert_dd_sequences
    from repro.mitigation.gate_scheduling import GSConfig, reschedule_gate
    from repro.simulators import NoiseModel
    from repro.transpiler import transpile
    from repro.vqe import ExpectationEstimator, get_application

    application = get_application("UCCSD_H2")
    device = application.device()
    rng = np.random.default_rng(17)

    def build_family():
        """One frontend's workload: a base schedule plus sweep-style variants."""
        circuit = application.ansatz.bind_parameters(
            rng.uniform(-0.3, 0.3, application.num_parameters)
        )
        circuit.measure_all()
        compiled = transpile(circuit, device)
        schedules = [compiled.scheduled]
        for window in compiled.idle_windows[:6]:
            for position in (0.0, 0.33, 0.66):
                schedules.append(
                    reschedule_gate(compiled.scheduled, window, GSConfig(position))
                )
            try:
                schedules.append(
                    insert_dd_sequences(compiled.scheduled, window, DDConfig("xy4", 1))
                )
            except Exception:
                pass
        return schedules

    families = [build_family(), build_family()]
    batch_size = 4
    batches = [
        [family[start : start + batch_size] for start in range(0, len(family), batch_size)]
        for family in families
    ]

    def run_leg(slots):
        # A fresh noise model per leg, as in the tuner comparison: later legs
        # must not inherit the first leg's warmed channel caches.
        noise_model = NoiseModel.from_device(device)
        engine = NoisyDensityMatrixEngine(noise_model, seed=11)
        if slots is not None:
            engine.scheduler_slots = slots
        estimators = [
            ExpectationEstimator(noise_model, seed=11, engine=engine) for _ in families
        ]
        values = {}
        errors = []

        def frontend(index):
            try:
                futures = []
                for batch in batches[index]:
                    futures.extend(
                        estimators[index].submit_batch(
                            batch,
                            application.hamiltonian,
                            max_workers=_PARALLEL_WORKERS,
                            parallelism="thread",
                        )
                    )
                values[index] = tuple(future.result().value for future in futures)
            except Exception as error:  # pragma: no cover - surfaced via raise below
                errors.append(error)

        threads = [
            threading.Thread(target=frontend, args=(index,)) for index in range(len(families))
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        engine.close()
        if errors:
            raise errors[0]
        return elapsed, tuple(values[index] for index in range(len(families)))

    fifo_seconds, fifo_values = run_leg({"thread": 1, "process": 1})
    concurrent_seconds, concurrent_values = run_leg(None)

    # Blocking serial reference: the determinism bar for both configurations.
    noise_model = NoiseModel.from_device(device)
    reference_engine = NoisyDensityMatrixEngine(noise_model, seed=11)
    reference_estimator = ExpectationEstimator(noise_model, seed=11, engine=reference_engine)
    reference_values = tuple(
        tuple(
            r.value
            for r in reference_estimator.estimate_batch(family, application.hamiltonian)
        )
        for family in families
    )
    reference_engine.close()

    return {
        "num_frontends": len(families),
        "schedules_per_frontend": len(families[0]),
        "batches_per_frontend": len(batches[0]),
        "workers": _PARALLEL_WORKERS,
        "cpu_count": os.cpu_count(),
        "serial_fifo_seconds": fifo_seconds,
        "concurrent_seconds": concurrent_seconds,
        "speedup": fifo_seconds / concurrent_seconds if concurrent_seconds else float("inf"),
        "values_exact_match": fifo_values == concurrent_values == reference_values,
    }


def _randomized_reuse_leg():
    """Canonical vs exact keying on the shared randomized schedule families.

    Inputs come from ``tests/randomized.py`` — the same seeded generator the
    fuzz suites run — so this leg benchmarks exactly the cases the
    differential tests prove correct.  Each family is a base schedule, its
    sweep-style DD/GS variants and one benign permutation of the base (same
    content, reassembled instruction list).  Canonical keying deduplicates
    the permutation outright (a result-cache hit) and shares longer
    checkpoint prefixes inside each family; the exact-keying pass quantifies
    both effects on the same inputs.
    """
    import randomized
    from repro.engine import NoisyDensityMatrixEngine
    from repro.simulators import NoiseModel

    device = randomized.fuzz_device()
    seeds = randomized.fuzz_seeds(6, offset=500)
    families = []
    for seed in seeds:
        compiled = randomized.random_compiled(seed, device=device)
        family = randomized.schedule_family(compiled, seed)
        family.append(randomized.benign_permutation(family[0], seed))
        families.append(family)
    num_schedules = sum(len(family) for family in families)

    def run(enable_canonicalisation):
        noise_model = NoiseModel.from_device(device)
        engine = NoisyDensityMatrixEngine(
            noise_model, seed=5, enable_canonicalisation=enable_canonicalisation
        )
        start = time.perf_counter()
        for family in families:
            for scheduled in family:
                engine.run(scheduled)
        elapsed = time.perf_counter() - start
        stats = engine.stats.as_dict()
        engine.close()
        return elapsed, stats

    canonical_seconds, canonical_stats = run(True)
    exact_seconds, exact_stats = run(False)
    return {
        "seeds": seeds,
        "num_families": len(families),
        "num_schedules": num_schedules,
        "canonical_seconds": canonical_seconds,
        "exact_seconds": exact_seconds,
        "speedup": exact_seconds / canonical_seconds if canonical_seconds else float("inf"),
        "canonical_reuse_fraction": canonical_stats["reuse_fraction"],
        "exact_reuse_fraction": exact_stats["reuse_fraction"],
        "canonical_cache_hits": canonical_stats["cache_hits"],
        "exact_cache_hits": exact_stats["cache_hits"],
    }


def _ptm_kernel_comparison():
    """Dense kernel vs PTM kernel on identical inputs, seeds and schedules.

    Two workloads, both kernel-blind at the API level: the H2 window-tuner
    sweep (the paper's hot loop) and the randomized schedule families shared
    with the fuzz suites (the exact seeds ``_randomized_reuse_leg`` uses).
    Both kernels run with the same engine seed; the leg records wall-clock
    per kernel, the PTM backend's fused-kernel counters
    (``ptm_matmuls`` / ``instructions_fused`` / ``batch_width``), the number
    of tensor contractions the dense backend spends on the same op streams
    (:func:`repro.simulators.ptm.dense_contraction_count` — the acceptance
    bar is ``ptm_matmuls`` strictly below it), and the largest energy
    difference between kernels (float-tolerance parity; the differential
    suite ``tests/test_ptm_differential.py`` enforces ``<= 1e-9``).
    """
    import randomized
    from repro.engine import NoisyDensityMatrixEngine
    from repro.operators import tfim_hamiltonian
    from repro.simulators import NoiseModel
    from repro.simulators.ptm import dense_contraction_count
    from repro.transpiler import transpile
    from repro.vaqem import IndependentWindowTuner, TuningBudget
    from repro.vqe import ExpectationEstimator, get_application

    application = get_application("UCCSD_H2")
    rng = np.random.default_rng(3)
    circuit = application.ansatz.bind_parameters(
        rng.uniform(-0.3, 0.3, application.num_parameters)
    )
    circuit.measure_all()
    device = application.device()
    compiled = transpile(circuit, device)
    budget = TuningBudget(dd_resolution=4, gs_resolution=4, max_windows=10)

    def tune(kernel: str):
        # Same seed and inputs as the serial leg of the H2 comparison; only
        # the kernel differs (fresh noise model per leg, as ever).
        noise_model = NoiseModel.from_device(device)
        engine = NoisyDensityMatrixEngine(noise_model, seed=11, kernel=kernel)
        estimator = ExpectationEstimator(noise_model, seed=11, engine=engine)
        tuner = IndependentWindowTuner(
            objective=lambda s: estimator.estimate(s, application.hamiltonian).value,
            budget=budget,
            batch_objective=lambda ss: [
                r.value
                for r in estimator.estimate_batch(ss, application.hamiltonian)
            ],
        )
        start = time.perf_counter()
        result = tuner.tune(compiled.scheduled, compiled.idle_windows)
        elapsed = time.perf_counter() - start
        stats = engine.stats.as_dict()
        engine.close()
        return elapsed, result, stats

    dense_seconds, dense_tuned, dense_stats = tune("dense")
    ptm_seconds, ptm_tuned, ptm_stats = tune("ptm")

    # Randomized families: the same seeds the reuse leg benchmarks and the
    # differential suites prove correct.
    fuzz_device = randomized.fuzz_device()
    seeds = randomized.fuzz_seeds(6, offset=500)
    schedules = []
    for seed in seeds:
        family_compiled = randomized.random_compiled(seed, device=fuzz_device)
        schedules.extend(randomized.schedule_family(family_compiled, seed))
    observable = tfim_hamiltonian(4)

    def run_families(kernel: str):
        noise_model = NoiseModel.from_device(fuzz_device)
        engine = NoisyDensityMatrixEngine(noise_model, seed=5, kernel=kernel)
        start = time.perf_counter()
        values = engine.expectation_batch(schedules, observable)
        elapsed = time.perf_counter() - start
        stats = engine.stats.as_dict()
        engine.close()
        return elapsed, values, stats

    family_dense_seconds, family_dense_values, _ = run_families("dense")
    family_ptm_seconds, family_ptm_values, family_ptm_stats = run_families("ptm")
    contraction_noise = NoiseModel.from_device(fuzz_device)
    dense_contractions = sum(
        dense_contraction_count(contraction_noise, scheduled) for scheduled in schedules
    )
    max_family_delta = max(
        abs(a - b) for a, b in zip(family_dense_values, family_ptm_values)
    )

    return {
        "h2_window_tuner": {
            "dense_seconds": dense_seconds,
            "ptm_seconds": ptm_seconds,
            "speedup": dense_seconds / ptm_seconds if ptm_seconds else float("inf"),
            "tuned_energy_dense": dense_tuned.tuned_value,
            "tuned_energy_ptm": ptm_tuned.tuned_value,
            "tuned_energy_delta": abs(dense_tuned.tuned_value - ptm_tuned.tuned_value),
            "num_evaluations": ptm_tuned.num_evaluations,
            "ptm_matmuls": ptm_stats["ptm_matmuls"],
            "instructions_fused": ptm_stats["instructions_fused"],
            "batch_width": ptm_stats["batch_width"],
            "dense_engine_stats": dense_stats,
        },
        "randomized_families": {
            "seeds": seeds,
            "num_schedules": len(schedules),
            "dense_seconds": family_dense_seconds,
            "ptm_seconds": family_ptm_seconds,
            "speedup": (
                family_dense_seconds / family_ptm_seconds
                if family_ptm_seconds
                else float("inf")
            ),
            "max_energy_delta": max_family_delta,
            "ptm_matmuls": family_ptm_stats["ptm_matmuls"],
            "instructions_fused": family_ptm_stats["instructions_fused"],
            "batch_width": family_ptm_stats["batch_width"],
            "dense_contractions": dense_contractions,
            # The acceptance criterion: fused kernels strictly undercut the
            # dense backend's per-instruction contraction count.
            "ptm_beats_dense_contractions": (
                family_ptm_stats["ptm_matmuls"] < dense_contractions
            ),
        },
    }


def _ingestion_leg():
    """External-program ingestion: the ``benchmarks/qasm/`` standard set
    through the frontend (``docs/ingestion.md``), timed end to end.

    Four measurements: (1) QASM parse throughput — tokenize, parse,
    macro-expand, decompose to native gates, resource-validate; (2) the JSON
    wire-format round trip of the same circuits; (3) the rejection cost of
    adversarial inputs — every corruption class applied to every benchmark
    must fail with a typed ``IngestError``, and the time it takes is the
    overhead an ingesting service pays per malicious submission; (4) executing
    the ingested programs through the full noisy pipeline under both
    simulation kernels.  The kernels sample from distributions that agree to
    float tolerance, so per-benchmark counts agreement is recorded as a
    fraction rather than asserted bit-exact (the PTM differential suite owns
    the tolerance bar).
    """
    import randomized
    from repro.backends import get_device
    from repro.engine import FakeDeviceEngine
    from repro.exceptions import IngestError
    from repro.frontend import (
        IngestStats,
        circuit_from_json,
        circuit_to_json,
        ingest_qasm,
        parse_qasm,
    )

    qasm_dir = BENCH_DIR / "qasm"
    sources = {path.stem: path.read_text() for path in sorted(qasm_dir.glob("*.qasm"))}
    if not sources:
        raise FileNotFoundError(f"no .qasm benchmarks found in {qasm_dir}")
    repeats = 20
    total_bytes = sum(len(text.encode()) for text in sources.values())

    # Leg 1: parse throughput (repeated — the individual files are small).
    programs = {}
    start = time.perf_counter()
    for _ in range(repeats):
        for name, text in sources.items():
            programs[name] = ingest_qasm(text, name=name)
    parse_seconds = time.perf_counter() - start
    stats = IngestStats()
    for program in programs.values():
        stats.record(program)

    # Leg 2: JSON wire-format round trip of the parsed circuits.
    start = time.perf_counter()
    for _ in range(repeats):
        for program in programs.values():
            circuit_from_json(circuit_to_json(program.circuit))
    json_seconds = time.perf_counter() - start

    # Leg 3: adversarial inputs — every corruption class on every file.
    rejected = 0
    benign = 0
    start = time.perf_counter()
    for index, text in enumerate(sources.values()):
        for kind in randomized.CORRUPTION_KINDS:
            _, corrupted = randomized.corrupt_program(text, 4000 + index, kind=kind)
            try:
                parse_qasm(corrupted)
                benign += 1  # some mutations stay valid; typed failure or success only
            except IngestError:
                rejected += 1
    reject_seconds = time.perf_counter() - start

    # Leg 4: execute the ingested programs under both simulation kernels.
    device = get_device("fake_casablanca")
    kernels = {}
    counts_by_kernel = {}
    for kernel in ("dense", "ptm"):
        engine = FakeDeviceEngine(device, seed=11, shots=256, kernel=kernel)
        start = time.perf_counter()
        counts_by_kernel[kernel] = {
            name: engine.run(program).counts for name, program in programs.items()
        }
        kernels[kernel] = {
            "seconds": time.perf_counter() - start,
            # The inner schedule-level engine carries the kernel counters
            # (ptm_matmuls / instructions_fused); the frontend engine's own
            # stats only track its transpile cache.
            "engine_stats": engine.noisy_engine.stats.as_dict(),
        }
    matches = sum(
        counts_by_kernel["dense"][name] == counts_by_kernel["ptm"][name]
        for name in sources
    )

    return {
        "benchmarks": sorted(sources),
        "repeats": repeats,
        "source_bytes": total_bytes,
        "ingest_counters": stats.as_dict(),
        "parse_seconds": parse_seconds,
        "programs_per_second": (repeats * len(sources)) / parse_seconds
        if parse_seconds
        else float("inf"),
        "json_round_trip_seconds": json_seconds,
        "corruption": {
            "cases": rejected + benign,
            "typed_rejections": rejected,
            "benign_mutations": benign,
            "seconds": reject_seconds,
        },
        "kernels": kernels,
        "counts_agreement_fraction": matches / len(sources),
    }


def _segment_reuse_leg():
    """A/B the segment-level operator cache on the H2 window-tuner sweep.

    Both legs run the serial tier with canonical keying and prefix reuse on;
    only ``enable_segment_reuse`` differs.  Replaying a cached segment applies
    the identical operator arrays in the identical order as re-walking its
    instructions, so the tuned energies must agree *bit for bit* — the delta
    recorded here is the acceptance check, not a tolerance.  The reuse
    fractions quantify what segment replay adds on top of prefix snapshots:
    window-tuner candidates differing only inside window k share every
    checkpoint-aligned segment after k (docs/segment_reuse.md).
    """
    from repro.engine import NoisyDensityMatrixEngine
    from repro.simulators import NoiseModel
    from repro.transpiler import transpile
    from repro.vaqem import IndependentWindowTuner, TuningBudget
    from repro.vqe import ExpectationEstimator, get_application

    application = get_application("UCCSD_H2")
    rng = np.random.default_rng(3)
    circuit = application.ansatz.bind_parameters(
        rng.uniform(-0.3, 0.3, application.num_parameters)
    )
    circuit.measure_all()
    device = application.device()
    compiled = transpile(circuit, device)
    budget = TuningBudget(dd_resolution=4, gs_resolution=4, max_windows=10)

    def tune(enable_segment_reuse):
        noise_model = NoiseModel.from_device(device)
        engine = NoisyDensityMatrixEngine(
            noise_model, seed=11, enable_segment_reuse=enable_segment_reuse
        )
        estimator = ExpectationEstimator(noise_model, seed=11, engine=engine)
        tuner = IndependentWindowTuner(
            objective=lambda s: estimator.estimate(s, application.hamiltonian).value,
            budget=budget,
            batch_objective=lambda ss: [
                r.value for r in estimator.estimate_batch(ss, application.hamiltonian)
            ],
        )
        start = time.perf_counter()
        result = tuner.tune(compiled.scheduled, compiled.idle_windows)
        elapsed = time.perf_counter() - start
        stats = engine.stats.as_dict()
        engine.close()
        return elapsed, result, stats

    on_seconds, on_result, on_stats = tune(True)
    off_seconds, off_result, off_stats = tune(False)

    # Randomized segment families (tests/randomized.py:segment_family — the
    # same generator the tests/test_segments.py differential suite fuzzes):
    # window-divergent variants plus benign permutations, run with the cache
    # on and off, checking the final probability vectors bit for bit.
    import randomized

    fuzz_device = randomized.fuzz_device()
    families = []
    for fuzz_seed in randomized.fuzz_seeds(4, offset=900):
        fuzz_compiled = randomized.random_compiled(fuzz_seed, device=fuzz_device)
        families.append(randomized.segment_family(fuzz_compiled, fuzz_seed))
    num_schedules = sum(len(family) for family in families)

    def run_families(enable_segment_reuse):
        noise_model = NoiseModel.from_device(fuzz_device)
        engine = NoisyDensityMatrixEngine(
            noise_model, seed=5, enable_segment_reuse=enable_segment_reuse
        )
        start = time.perf_counter()
        probabilities = [
            engine.run(scheduled).probabilities
            for family in families
            for _, _, scheduled in family
        ]
        elapsed = time.perf_counter() - start
        stats = engine.stats.as_dict()
        engine.close()
        return elapsed, probabilities, stats

    fam_on_seconds, fam_on_probs, fam_on_stats = run_families(True)
    fam_off_seconds, fam_off_probs, _ = run_families(False)
    families_bit_identical = all(
        np.array_equal(a, b) for a, b in zip(fam_on_probs, fam_off_probs)
    )

    return {
        "segments_on_seconds": on_seconds,
        "segments_off_seconds": off_seconds,
        "speedup": off_seconds / on_seconds if on_seconds else float("inf"),
        "reuse_fraction": on_stats["reuse_fraction"],
        "reuse_fraction_segments_off": off_stats["reuse_fraction"],
        "segment_hits": on_stats["segment_hits"],
        "segment_misses": on_stats["segment_misses"],
        "segment_hit_rate": on_stats["segment_hit_rate"],
        "tuned_energy": on_result.tuned_value,
        # Bitwise, by construction — replay applies the same arrays in the
        # same order.  Recorded as the delta so a regression is visible in
        # the trajectory, not just in the test suite.
        "energies_bit_identical": on_result.tuned_value == off_result.tuned_value,
        "energy_delta": abs(on_result.tuned_value - off_result.tuned_value),
        "randomized_families": {
            "num_families": len(families),
            "num_schedules": num_schedules,
            "segments_on_seconds": fam_on_seconds,
            "segments_off_seconds": fam_off_seconds,
            "segment_hits": fam_on_stats["segment_hits"],
            "segment_misses": fam_on_stats["segment_misses"],
            "reuse_fraction": fam_on_stats["reuse_fraction"],
            "probabilities_bit_identical": families_bit_identical,
        },
    }


class _RecordingObjective:
    """Record every evaluated point while forwarding to a batch objective."""

    def __init__(self, inner):
        self.inner = inner
        self.points = []

    def __call__(self, parameters):
        self.points.append(np.asarray(parameters, dtype=float).copy())
        return self.inner(parameters)

    def evaluate_batch(self, points):
        self.points.extend(np.asarray(p, dtype=float).copy() for p in points)
        return self.inner.evaluate_batch(points)


def _spsa_convergence_leg():
    """Circuits-executed-to-convergence: engine-batched SPSA vs fixed-shot scipy.

    Both optimizers minimise the same sampled H2 objective (hardware-
    efficient SU2 ansatz, 16 parameters, a scarce 64-shot budget per
    evaluation — the shot-frugal regime where stochastic-approximation
    optimizers earn their keep) from the same initial point on identically
    seeded engines, under an equal evaluation budget.  The cost metric is
    *circuits executed until convergence* — each objective evaluation submits
    one measured circuit per qubit-wise-commuting Hamiltonian group —
    following the convention of the shot-frugal optimizer literature rather
    than wall-clock (``docs/algorithms.md``).  Convergence is judged
    honestly: the recorded evaluation points are replayed at ``shots=None``
    (the exact noisy expectation, engine-cached so the replay is nearly free)
    and the first evaluation closing 95% of the exact gap to the
    trajectories' best value marks the convergence point.  A QAOA MaxCut
    instance (``qaoa_ansatz`` + ``ring_maxcut_hamiltonian``) rides along as a
    second workload exercising the same batched path on a different ansatz
    family.
    """
    from repro.circuits import efficient_su2, qaoa_ansatz
    from repro.engine import NoisyDensityMatrixEngine
    from repro.operators import h2_hamiltonian, ring_maxcut_hamiltonian
    from repro.optimizers import COBYLA, SPSA
    from repro.simulators import NoiseModel
    from repro.vqe import VQE, get_application

    smoke = vaqem_shared.smoke_mode()
    maxiter = 60 if smoke else 100
    shots = 64

    hamiltonian = h2_hamiltonian()
    ansatz = efficient_su2(hamiltonian.num_qubits, reps=1, entanglement="linear")
    device = get_application("UCCSD_H2").device()
    num_groups = len(hamiltonian.group_commuting())

    def run(optimizer):
        # A fresh seeded engine per optimizer: identical sampled objective,
        # no cache inherited from the other optimizer's trajectory.
        noise_model = NoiseModel.from_device(device)
        engine = NoisyDensityMatrixEngine(noise_model, seed=11)
        vqe = VQE(ansatz, hamiltonian, seed=7)
        objective = _RecordingObjective(
            vqe.noisy_batch_objective_factory(
                device, noise_model=noise_model, shots=shots, engine=engine
            )
        )
        start = time.perf_counter()
        result = optimizer.minimize(objective, vqe.initial_point(scale=0.5))
        elapsed = time.perf_counter() - start
        # Honest convergence: replay every evaluated point at shots=None (the
        # exact noisy expectation; the noisy evolutions are already cached).
        exact_objective = vqe.noisy_batch_objective_factory(
            device, noise_model=noise_model, shots=None, engine=engine
        )
        exact_values = exact_objective.evaluate_batch(objective.points)
        engine.close()
        return result, exact_values, elapsed

    # Gains tuned for the SU2/H2 landscape (Spall's schedules with a larger
    # base step; the defaults are calibrated for the small-angle UCCSD runs).
    spsa = SPSA(maxiter=maxiter, seed=7, learning_rate=2.0, perturbation=0.2)
    spsa_result, spsa_exact, spsa_seconds = run(spsa)
    # Equal evaluation budget for the scipy baseline (COBYLA is the paper's
    # feasible-flow optimizer for the chemistry problems).
    evaluation_budget = 1 + 2 * spsa.resamplings * maxiter
    cobyla_result, cobyla_exact, cobyla_seconds = run(COBYLA(maxiter=evaluation_budget))

    exact_initial = spsa_exact[0]
    exact_best = min(min(spsa_exact), min(cobyla_exact))
    threshold = exact_best + max(0.05 * (exact_initial - exact_best), 0.02)

    def circuits_to_convergence(exact_values):
        for index, value in enumerate(exact_values):
            if value <= threshold:
                return (index + 1) * num_groups, True
        return len(exact_values) * num_groups, False

    spsa_circuits, spsa_converged = circuits_to_convergence(spsa_exact)
    cobyla_circuits, cobyla_converged = circuits_to_convergence(cobyla_exact)

    # QAOA ride-along: the same batched SPSA on a MaxCut ring instance.
    qaoa_ham = ring_maxcut_hamiltonian(6)
    qaoa_noise = NoiseModel.from_device(device)
    qaoa_engine = NoisyDensityMatrixEngine(qaoa_noise, seed=11)
    qaoa_vqe = VQE(
        qaoa_ansatz(6, [(i, (i + 1) % 6) for i in range(6)], reps=2), qaoa_ham, seed=7
    )
    qaoa_objective = qaoa_vqe.noisy_batch_objective_factory(
        device, noise_model=qaoa_noise, shots=shots, engine=qaoa_engine
    )
    qaoa_result = SPSA(maxiter=maxiter, seed=7).minimize(
        qaoa_objective, qaoa_vqe.initial_point()
    )
    qaoa_exact_final = qaoa_vqe.noisy_batch_objective_factory(
        device, noise_model=qaoa_noise, shots=None, engine=qaoa_engine
    ).evaluate_batch([qaoa_result.optimal_parameters])[0]
    qaoa_engine.close()

    return {
        "workload": "H2_efficient_su2",
        "num_parameters": ansatz.num_parameters,
        "shots": shots,
        "maxiter": maxiter,
        "num_measurement_groups": num_groups,
        "evaluation_budget": evaluation_budget,
        "exact_initial": exact_initial,
        "exact_best": exact_best,
        "convergence_threshold": threshold,
        "spsa": {
            "circuits_to_convergence": spsa_circuits,
            "converged": spsa_converged,
            "num_evaluations": spsa_result.num_evaluations,
            # The hidden-third-evaluation regression pin, visible in the
            # trajectory as well as the test suite.
            "evaluations_match_contract": (
                spsa_result.num_evaluations == evaluation_budget
            ),
            "exact_final": spsa_exact[-1],
            "metadata": spsa_result.metadata,
            "seconds": spsa_seconds,
        },
        "cobyla": {
            "circuits_to_convergence": cobyla_circuits,
            "converged": cobyla_converged,
            "num_evaluations": cobyla_result.num_evaluations,
            "exact_final": cobyla_exact[-1],
            "seconds": cobyla_seconds,
        },
        # The acceptance criterion: batched SPSA reaches convergence with
        # fewer executed circuits than the fixed-shot scipy baseline.
        "spsa_fewer_circuits": spsa_circuits < cobyla_circuits,
        "qaoa_ring6": {
            "shots": shots,
            "maxiter": maxiter,
            "num_measurement_groups": len(qaoa_ham.group_commuting()),
            "num_evaluations": qaoa_result.num_evaluations,
            "exact_final": qaoa_exact_final,
            "ground_energy": qaoa_ham.ground_energy(),
        },
    }


def _adaptive_shots_leg():
    """Adaptive shot collector vs a uniform split at the same budget.

    The workload is the LiH-scale surrogate Hamiltonian (6 qubits, 7
    measurement groups with strongly unequal variances) on a hardware-
    efficient SU2 ansatz.  Both strategies spend exactly the same budget on
    the same seeded engine; ``round_shots=budget`` degenerates the collector
    into its uniform warm-up round, so the baseline runs the identical code
    path.  Recorded per strategy, averaged over independent seeds: absolute
    error against the exact noisy expectation and the estimated standard
    error.  Neyman allocation should cut both — the stderr ratio is the
    analytic win, the error ratio the empirical one.
    """
    from repro.circuits import efficient_su2
    from repro.engine import NoisyDensityMatrixEngine
    from repro.operators import lih_hamiltonian
    from repro.simulators import NoiseModel
    from repro.transpiler import transpile
    from repro.vqe import AdaptiveShotCollector, ExpectationEstimator, get_application

    smoke = vaqem_shared.smoke_mode()
    budget = 4096 if smoke else 16384
    repeats = 3 if smoke else 5

    hamiltonian = lih_hamiltonian()
    ansatz = efficient_su2(hamiltonian.num_qubits, reps=1, entanglement="circular")
    rng = np.random.default_rng(5)
    circuit = ansatz.bind_parameters(rng.uniform(-0.4, 0.4, ansatz.num_parameters))
    circuit.measure_all()
    device = get_application("UCCSD_H2").device()
    compiled = transpile(circuit, device)

    noise_model = NoiseModel.from_device(device)
    engine = NoisyDensityMatrixEngine(noise_model, seed=11)
    estimator = ExpectationEstimator(noise_model, engine=engine)
    exact = engine.expectation(compiled.scheduled, hamiltonian)

    def collect(round_shots, seed):
        collector = AdaptiveShotCollector(
            estimator,
            compiled.scheduled,
            hamiltonian,
            total_shots=budget,
            round_shots=round_shots,
            seed=seed,
        )
        return collector.collect()

    start = time.perf_counter()
    adaptive_runs = [collect(None, 100 + index) for index in range(repeats)]
    uniform_runs = [collect(budget, 100 + index) for index in range(repeats)]
    elapsed = time.perf_counter() - start
    engine.close()

    adaptive_error = float(np.mean([abs(run.value - exact) for run in adaptive_runs]))
    uniform_error = float(np.mean([abs(run.value - exact) for run in uniform_runs]))
    adaptive_stderr = float(np.mean([run.stderr for run in adaptive_runs]))
    uniform_stderr = float(np.mean([run.stderr for run in uniform_runs]))
    sample = adaptive_runs[0]
    return {
        "workload": "LiH_surrogate",
        "num_qubits": hamiltonian.num_qubits,
        "num_terms": hamiltonian.num_terms,
        "num_measurement_groups": len(sample.groups),
        "budget": budget,
        "repeats": repeats,
        "exact_noisy_value": exact,
        "adaptive": {
            "mean_abs_error": adaptive_error,
            "mean_stderr": adaptive_stderr,
            "rounds": sample.rounds,
            "circuits_executed": sample.circuits_executed,
            "shots_per_group": sample.shots_per_group,
        },
        "uniform": {
            "mean_abs_error": uniform_error,
            "mean_stderr": uniform_stderr,
            "rounds": uniform_runs[0].rounds,
            "circuits_executed": uniform_runs[0].circuits_executed,
            "shots_per_group": uniform_runs[0].shots_per_group,
        },
        "stderr_ratio": adaptive_stderr / uniform_stderr if uniform_stderr else float("inf"),
        "error_ratio": adaptive_error / uniform_error if uniform_error else float("inf"),
        "adaptive_beats_uniform_stderr": adaptive_stderr < uniform_stderr,
        "seconds": elapsed,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(BENCH_DIR.parent / "BENCH_engine.json"),
        help="where to write the machine-readable trajectory (default: repo root)",
    )
    args = parser.parse_args()

    timings = {}
    failures = {}
    suite_start = time.perf_counter()
    for name, runner in _smoke_runners():
        start = time.perf_counter()
        try:
            runner()
            timings[name] = time.perf_counter() - start
            print(f"[run_all] {name:28s} {timings[name]:7.2f}s")
        except Exception as error:  # keep the trajectory even if one fig regresses
            failures[name] = f"{type(error).__name__}: {error}"
            print(f"[run_all] {name:28s} FAILED ({failures[name]})")

    # Guarded like the fig loop: a tuner-leg failure must not discard the
    # per-fig trajectory collected above.
    tuner = None
    try:
        tuner = _h2_tuner_comparison()
    except Exception as error:
        failures["h2_window_tuner"] = f"{type(error).__name__}: {error}"
        print(f"[run_all] h2 tuner comparison FAILED ({failures['h2_window_tuner']})")
    if tuner is not None:
        print(
            f"[run_all] h2 tuner: sequential {tuner['sequential_seconds']:.2f}s, "
            f"batched {tuner['batched_seconds']:.2f}s "
            f"({tuner['speedup']:.1f}x, exact match: {tuner['energies_exact_match']})"
        )
        canonicalisation = tuner["canonicalisation"]
        print(
            f"[run_all] h2 tuner prefix reuse: canonical "
            f"{canonicalisation['reuse_fraction']:.3f} vs exact keying "
            f"{canonicalisation['exact_keying_reuse_fraction']:.3f} "
            f"(energy delta {canonicalisation['canonical_vs_exact_energy_delta']:.2e})"
        )
        parallel = tuner["parallelism"]
        print(
            f"[run_all] h2 tuner tiers ({parallel['workers']} workers, "
            f"{parallel['cpu_count']} cores): serial {parallel['serial_seconds']:.2f}s, "
            f"thread {parallel['thread_seconds']:.2f}s, "
            f"process {parallel['process_seconds']:.2f}s, "
            f"pipelined {parallel['pipelined_seconds']:.2f}s "
            f"(process vs thread: {parallel['process_vs_thread_speedup']:.2f}x, "
            f"pipelined vs process: {parallel['pipelined_vs_process_speedup']:.2f}x)"
        )

    # The concurrent-frontends leg (docs/scheduler.md): guarded like the
    # others so a scheduler regression still leaves the rest of the file.
    concurrent = None
    try:
        concurrent = _concurrent_frontends_leg()
    except Exception as error:
        failures["h2_concurrent_frontends"] = f"{type(error).__name__}: {error}"
        print(
            f"[run_all] concurrent frontends FAILED ({failures['h2_concurrent_frontends']})"
        )
    if concurrent is not None:
        print(
            f"[run_all] concurrent frontends ({concurrent['num_frontends']} estimators, "
            f"{concurrent['cpu_count']} cores): serial FIFO "
            f"{concurrent['serial_fifo_seconds']:.2f}s, concurrent "
            f"{concurrent['concurrent_seconds']:.2f}s "
            f"({concurrent['speedup']:.2f}x, exact match: "
            f"{concurrent['values_exact_match']})"
        )

    # Randomized-schedule leg: benchmark inputs shared with the fuzz suites.
    randomized_reuse = None
    try:
        randomized_reuse = _randomized_reuse_leg()
    except Exception as error:
        failures["randomized_reuse"] = f"{type(error).__name__}: {error}"
        print(f"[run_all] randomized reuse FAILED ({failures['randomized_reuse']})")
    if randomized_reuse is not None:
        print(
            f"[run_all] randomized reuse ({randomized_reuse['num_schedules']} schedules): "
            f"canonical {randomized_reuse['canonical_reuse_fraction']:.3f} "
            f"({randomized_reuse['canonical_cache_hits']} dedup hits) vs exact "
            f"{randomized_reuse['exact_reuse_fraction']:.3f} "
            f"({randomized_reuse['exact_cache_hits']} hits), "
            f"{randomized_reuse['speedup']:.2f}x faster"
        )

    # Segment-cache A/B leg (docs/segment_reuse.md): guarded like the others.
    segment_reuse = None
    try:
        segment_reuse = _segment_reuse_leg()
    except Exception as error:
        failures["segment_reuse"] = f"{type(error).__name__}: {error}"
        print(f"[run_all] segment reuse FAILED ({failures['segment_reuse']})")
    if segment_reuse is not None:
        print(
            f"[run_all] segment reuse: on {segment_reuse['segments_on_seconds']:.2f}s "
            f"(reuse {segment_reuse['reuse_fraction']:.3f}, "
            f"{segment_reuse['segment_hits']} hits / "
            f"{segment_reuse['segment_misses']} misses) vs off "
            f"{segment_reuse['segments_off_seconds']:.2f}s "
            f"(reuse {segment_reuse['reuse_fraction_segments_off']:.3f}), "
            f"{segment_reuse['speedup']:.2f}x, bit identical: "
            f"{segment_reuse['energies_bit_identical']}"
        )

    # Dense vs PTM kernel comparison (docs/ptm.md): guarded like the others.
    ptm_comparison = None
    try:
        ptm_comparison = _ptm_kernel_comparison()
    except Exception as error:
        failures["ptm_kernel_comparison"] = f"{type(error).__name__}: {error}"
        print(
            f"[run_all] ptm kernel comparison FAILED ({failures['ptm_kernel_comparison']})"
        )
    if ptm_comparison is not None:
        h2 = ptm_comparison["h2_window_tuner"]
        families = ptm_comparison["randomized_families"]
        print(
            f"[run_all] ptm kernel h2 tuner: dense {h2['dense_seconds']:.2f}s, "
            f"ptm {h2['ptm_seconds']:.2f}s ({h2['speedup']:.2f}x, "
            f"energy delta {h2['tuned_energy_delta']:.2e})"
        )
        print(
            f"[run_all] ptm kernel families ({families['num_schedules']} schedules): "
            f"{families['ptm_matmuls']} fused kernels vs "
            f"{families['dense_contractions']} dense contractions "
            f"({families['instructions_fused']} ops fused, batch width "
            f"{families['batch_width']}, max energy delta "
            f"{families['max_energy_delta']:.2e})"
        )

    # External-program ingestion leg (docs/ingestion.md): guarded like the
    # others so a frontend regression still leaves the rest of the file.
    ingestion = None
    try:
        ingestion = _ingestion_leg()
    except Exception as error:
        failures["ingestion"] = f"{type(error).__name__}: {error}"
        print(f"[run_all] ingestion FAILED ({failures['ingestion']})")
    if ingestion is not None:
        corruption = ingestion["corruption"]
        print(
            f"[run_all] ingestion ({len(ingestion['benchmarks'])} programs x "
            f"{ingestion['repeats']}): {ingestion['programs_per_second']:.0f} parses/s, "
            f"json round trip {ingestion['json_round_trip_seconds']:.2f}s, "
            f"{corruption['typed_rejections']}/{corruption['cases']} corruptions "
            f"rejected typed, dense {ingestion['kernels']['dense']['seconds']:.2f}s vs "
            f"ptm {ingestion['kernels']['ptm']['seconds']:.2f}s, counts agreement "
            f"{ingestion['counts_agreement_fraction']:.2f}"
        )

    # Batched-SPSA convergence leg (docs/algorithms.md): guarded as ever.
    spsa_convergence = None
    try:
        spsa_convergence = _spsa_convergence_leg()
    except Exception as error:
        failures["spsa_convergence"] = f"{type(error).__name__}: {error}"
        print(f"[run_all] spsa convergence FAILED ({failures['spsa_convergence']})")
    if spsa_convergence is not None:
        print(
            f"[run_all] spsa convergence (H2, {spsa_convergence['shots']} shots): "
            f"spsa {spsa_convergence['spsa']['circuits_to_convergence']} circuits "
            f"(converged: {spsa_convergence['spsa']['converged']}) vs cobyla "
            f"{spsa_convergence['cobyla']['circuits_to_convergence']} "
            f"(converged: {spsa_convergence['cobyla']['converged']}), "
            f"spsa fewer: {spsa_convergence['spsa_fewer_circuits']}, "
            f"eval contract: {spsa_convergence['spsa']['evaluations_match_contract']}"
        )

    # Adaptive shot-collector leg (docs/algorithms.md): guarded as ever.
    adaptive_shots = None
    try:
        adaptive_shots = _adaptive_shots_leg()
    except Exception as error:
        failures["adaptive_shots"] = f"{type(error).__name__}: {error}"
        print(f"[run_all] adaptive shots FAILED ({failures['adaptive_shots']})")
    if adaptive_shots is not None:
        print(
            f"[run_all] adaptive shots (LiH, {adaptive_shots['budget']} shots x "
            f"{adaptive_shots['repeats']}): adaptive stderr "
            f"{adaptive_shots['adaptive']['mean_stderr']:.2e} vs uniform "
            f"{adaptive_shots['uniform']['mean_stderr']:.2e} "
            f"(ratio {adaptive_shots['stderr_ratio']:.2f}, error ratio "
            f"{adaptive_shots['error_ratio']:.2f})"
        )

    # Service-tier load leg (docs/service.md): N synthetic tenants against
    # one served engine, open-loop arrivals, shared program pool so the
    # fleet store sees cross-tenant duplicates.
    service_load = None
    try:
        import load_gen

        service_load = load_gen.run_load(
            num_tenants=2,
            duration_seconds=2.0 if vaqem_shared.smoke_mode() else 10.0,
            rate_per_tenant=20.0,
            seed=2026,
            kernel=os.environ.get("REPRO_ENGINE_KERNEL") or None,
        )
        if service_load["unexpected_errors"]:
            raise RuntimeError(
                f"unexpected service errors: {service_load['unexpected_errors'][:3]}"
            )
    except Exception as error:
        failures["service_load"] = f"{type(error).__name__}: {error}"
        print(f"[run_all] service load FAILED ({failures['service_load']})")
    if service_load is not None:
        print(
            f"[run_all] service load ({service_load['tenants']} tenants x "
            f"{service_load['duration_seconds']:.0f}s): "
            f"{service_load['throughput_rps']:.1f} rps, "
            f"p50 {service_load['latency_ms']['p50']:.1f} ms, "
            f"p99 {service_load['latency_ms']['p99']:.1f} ms, "
            f"rejections {sum(service_load['rejections'].values())}, "
            f"dedupe hit-rate {service_load['dedupe_hit_rate']:.2f}"
        )

    payload = {
        "mode": "smoke" if vaqem_shared.smoke_mode() else "default",
        "python": platform.python_version(),
        "total_seconds": time.perf_counter() - suite_start,
        "benchmarks_seconds": timings,
        "failures": failures,
        "pipeline_engine_stats": vaqem_shared.collected_engine_stats(),
        "h2_window_tuner": tuner,
        "h2_concurrent_frontends": concurrent,
        "randomized_reuse": randomized_reuse,
        "segment_reuse": segment_reuse,
        "ptm_kernel_comparison": ptm_comparison,
        "ingestion": ingestion,
        "spsa_convergence": spsa_convergence,
        "adaptive_shots": adaptive_shots,
        "service_load": service_load,
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[run_all] wrote {output}")
    if failures:
        sys.exit(1)


if __name__ == "__main__":
    main()
