"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the corresponding rows/series.  The heavy evaluation experiments (Figs. 12,
13, 14) share a cached VAQEM run per application so that running the whole
``benchmarks/`` directory does not repeat work.

Two knobs control the fidelity/cost trade-off:

* ``REPRO_BENCH_APPS`` — comma-separated application names, or ``all``
  (default: a representative 3-application subset so the full benchmark suite
  completes in minutes; set to ``all`` to sweep every Table-I benchmark).
* ``REPRO_BENCH_FULL`` — set to ``1`` to use the full per-window sweep budget
  instead of the reduced default.
* ``REPRO_BENCH_SMOKE`` — set to ``1`` for the minimal configuration used by
  ``benchmarks/run_all.py``: one application, few angle-tuning iterations and
  a tiny per-window sweep, so the whole suite finishes in well under a
  minute while still exercising every code path.

All heavy executions route through each pipeline's shared
:class:`~repro.engine.density_engine.NoisyDensityMatrixEngine`; the engine's
cache/prefix-reuse counters are collected into every run result
(``VAQEMRunResult.engine_stats``) and aggregated by :func:`collected_engine_stats`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.vaqem import TuningBudget, VAQEMConfig, VAQEMPipeline, VAQEMRunResult
from repro.vqe import VQAApplication, build_applications, get_application

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Strategies evaluated for Figs. 12/13, in the paper's bar order.
FIGURE12_STRATEGIES = (
    "no_em",
    "mem",
    "dd_xx",
    "dd_xy4",
    "vaqem_gs",
    "vaqem_xx",
    "vaqem_xy",
    "vaqem_gs_xy",
)

_DEFAULT_APPS = ("HW_TFIM_4q_c_6r", "HW_TFIM_4q_f_6r", "UCCSD_H2")

_RUN_CACHE: Dict[str, VAQEMRunResult] = {}


def smoke_mode() -> bool:
    """Whether the reduced ``run_all.py`` smoke configuration is active."""
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def selected_application_names() -> List[str]:
    """Applications selected via ``REPRO_BENCH_APPS`` (default: fast subset)."""
    raw = os.environ.get("REPRO_BENCH_APPS", "").strip()
    if not raw:
        return [_DEFAULT_APPS[0]] if smoke_mode() else list(_DEFAULT_APPS)
    if raw.lower() == "all":
        return [app.name for app in build_applications()]
    return [name.strip() for name in raw.split(",") if name.strip()]


def benchmark_config(seed: int = 11) -> VAQEMConfig:
    """The VAQEM configuration used by the evaluation benchmarks."""
    if os.environ.get("REPRO_BENCH_FULL", "0") == "1":
        budget = TuningBudget(dd_resolution=6, gs_resolution=5, max_windows=None)
        iterations = 250
    elif smoke_mode():
        budget = TuningBudget(dd_resolution=2, gs_resolution=2, max_windows=3)
        iterations = 30
    else:
        budget = TuningBudget(dd_resolution=4, gs_resolution=4, max_windows=10)
        iterations = 250
    return VAQEMConfig(angle_tuning_iterations=iterations, budget=budget, seed=seed)


def run_application(name: str, strategies: Sequence[str] = FIGURE12_STRATEGIES) -> VAQEMRunResult:
    """Run (or fetch from cache) the full VAQEM evaluation of one application."""
    key = (
        f"{name}:{','.join(strategies)}:{os.environ.get('REPRO_BENCH_FULL', '0')}"
        f":{os.environ.get('REPRO_BENCH_SMOKE', '0')}"
    )
    if key not in _RUN_CACHE:
        application = get_application(name)
        pipeline = VAQEMPipeline(application, benchmark_config())
        _RUN_CACHE[key] = pipeline.run(strategies=strategies)
    return _RUN_CACHE[key]


#: Derived ratios in ``EngineStats.as_dict`` — recomputed from the aggregated
#: counters below, never summed across runs.
_RATIO_FIELDS = ("hit_rate", "reuse_fraction")


def collected_engine_stats() -> Dict[str, float]:
    """Execution-engine counters aggregated across every cached pipeline run.

    Counter fields stay integers in the output (``batch_width`` is a
    high-water mark, so it max-merges exactly as
    :meth:`~repro.engine.base.EngineStats.add_counters` does); the derived
    ``hit_rate`` / ``reuse_fraction`` ratios are recomputed from the totals.
    """
    totals: Dict[str, float] = {}
    for result in _RUN_CACHE.values():
        for field, value in result.engine_stats.items():
            if field in _RATIO_FIELDS:
                continue
            if field == "batch_width":
                totals[field] = max(totals.get(field, 0), int(value))
            else:
                totals[field] = totals.get(field, 0) + int(value)
    executions = totals.get("executions", 0)
    simulated = totals.get("instructions_simulated", 0)
    reused = totals.get("instructions_reused", 0)
    if executions:
        totals["hit_rate"] = totals.get("cache_hits", 0) / executions
    if simulated + reused:
        totals["reuse_fraction"] = reused / (simulated + reused)
    return totals


def save_results(filename: str, payload) -> Path:
    """Persist benchmark output under ``benchmarks/results`` for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / filename
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def print_table(title: str, header: Sequence[str], rows: Sequence[Sequence[str]]) -> None:
    """Print an aligned text table (the benchmark's stdout deliverable)."""
    rows = [list(map(str, header))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    print(f"\n=== {title} ===")
    for index, row in enumerate(rows):
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            print("  ".join("-" * widths[i] for i in range(len(header))))
