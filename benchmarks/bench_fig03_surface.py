"""Figure 3 — ideal vs noisy vs error-mitigated VQE optimisation surface.

The paper's Fig. 3 is a conceptual comparison of the optimisation landscape
under ideal, noisy and error-mitigated execution: noise lifts the surface
(local minima sit above the ideal curve) and mitigation moves it back toward
the ideal.  This benchmark traces a one-dimensional slice of the TFIM-4q
energy landscape (sweeping one ansatz parameter around the tuned optimum)
under the three execution modes and prints the three series.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mitigation import uniform_dd
from repro.simulators import NoiseModel
from repro.transpiler import transpile
from repro.vaqem import VAQEMConfig, VAQEMPipeline
from repro.vqe import ExpectationEstimator, get_application

from vaqem_shared import print_table, save_results


def _surface_slice(num_points: int = 9):
    application = get_application("HW_TFIM_4q_c_6r")
    pipeline = VAQEMPipeline(application, VAQEMConfig(angle_tuning_iterations=150, seed=2))
    angle_result = pipeline.tune_angles()
    device = pipeline.device
    optimum = np.asarray(angle_result.optimal_parameters, dtype=float)

    device_noise = NoiseModel.from_device(device)
    estimator = ExpectationEstimator(device_noise)
    offsets = np.linspace(-np.pi / 2, np.pi / 2, num_points)

    # Build every circuit/schedule of the slice up front, then submit each
    # series as one engine batch (the three series share the estimator's
    # result cache; the ideal series goes through the statevector engine).
    bound_circuits, schedules, dd_schedules = [], [], []
    for offset in offsets:
        params = optimum.copy()
        params[0] += offset
        bound = application.ansatz.bind_parameters(list(params))
        bound_circuits.append(bound)
        bound_measured = bound.copy()
        bound_measured.measure_all()
        compiled = transpile(bound_measured, device)
        schedules.append(compiled.scheduled)
        dd_schedules.append(uniform_dd(compiled.scheduled, compiled.idle_windows, "xy4", 1))

    from repro.engine import StatevectorEngine

    ideal = [
        float(v)
        for v in StatevectorEngine().expectation_batch(bound_circuits, application.hamiltonian)
    ]
    noisy = [r.value for r in estimator.estimate_batch(schedules, application.hamiltonian)]
    mitigated = [r.value for r in estimator.estimate_batch(dd_schedules, application.hamiltonian)]
    return offsets.tolist(), ideal, noisy, mitigated, application.exact_ground_energy()


@pytest.mark.benchmark(group="fig03")
def test_fig03_optimization_surface(benchmark):
    offsets, ideal, noisy, mitigated, e0 = benchmark.pedantic(_surface_slice, rounds=1, iterations=1)
    rows = [
        [f"{o:+.2f}", f"{i:.4f}", f"{n:.4f}", f"{m:.4f}"]
        for o, i, n, m in zip(offsets, ideal, noisy, mitigated)
    ]
    print_table(
        "Fig. 3: energy surface slice (ideal vs noisy vs DD-mitigated)",
        ["d(theta0)", "ideal", "noisy", "mitigated"],
        rows,
    )
    save_results(
        "fig03_surface.json",
        {"offsets": offsets, "ideal": ideal, "noisy": noisy, "mitigated": mitigated, "ground_energy": e0},
    )
    # Shape checks from the figure: noise lifts the whole surface above the
    # ideal curve, nothing falls below the exact ground energy, and mitigation
    # lands between the noisy and ideal surfaces at the tuned optimum.
    assert all(n >= i - 1e-6 for n, i in zip(noisy, ideal))
    assert all(value >= e0 - 1e-6 for series in (ideal, noisy, mitigated) for value in series)
    centre = len(offsets) // 2
    assert mitigated[centre] <= noisy[centre] + 0.05 * abs(noisy[centre])
    benchmark.extra_info["centre_values"] = {
        "ideal": ideal[centre], "noisy": noisy[centre], "mitigated": mitigated[centre]
    }
