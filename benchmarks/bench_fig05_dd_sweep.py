"""Figure 5 — circuit fidelity vs number of inserted DD sequences.

The paper inserts a varying number of XY4 sequences into one large idle
window of a small circuit and shows that fidelity responds non-monotonically:
some counts beat the no-DD baseline (blue region), some fall below it
(yellow region), and distinct peaks exist that variational tuning can find.
This benchmark sweeps the sequence count on the two-qubit idle-window
micro-benchmark and prints the fidelity series.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import idle_window_microbenchmark
from repro.backends import fake_casablanca
from repro.engine import NoisyDensityMatrixEngine
from repro.metrics import hellinger_fidelity
from repro.mitigation import DDConfig, insert_dd_sequences, max_sequences_in_window
from repro.simulators import NoiseModel, StatevectorSimulator
from repro.transpiler import transpile

from vaqem_shared import print_table, save_results


def _dd_sweep(idle_ns: float = 12000.0, max_counts: int = 16):
    device = fake_casablanca()
    circuit = idle_window_microbenchmark(idle_ns=idle_ns)
    compiled = transpile(circuit, device)
    window = max(compiled.idle_windows, key=lambda w: w.duration_ns)
    capacity = max_sequences_in_window(window, compiled.scheduled, "xy4")
    counts = list(range(0, min(capacity, max_counts) + 1))

    ideal_probs = StatevectorSimulator().probabilities(circuit.remove_final_measurements())
    ideal = {format(i, "02b"): p for i, p in enumerate(ideal_probs) if p > 1e-12}
    # The whole sweep is one batch on the execution engine: every candidate
    # shares its simulated prefix up to the idle window's start.
    engine = NoisyDensityMatrixEngine(NoiseModel.from_device(device), seed=0)
    schedules = [
        insert_dd_sequences(compiled.scheduled, window, DDConfig("xy4", count))
        if count
        else compiled.scheduled
        for count in counts
    ]
    results = engine.run_batch(schedules)
    fidelities = [hellinger_fidelity(result.probabilities, ideal) for result in results]
    return counts, fidelities


@pytest.mark.benchmark(group="fig05")
def test_fig05_dd_sequence_sweep(benchmark):
    counts, fidelities = benchmark.pedantic(_dd_sweep, rounds=1, iterations=1)
    baseline = fidelities[0]
    rows = [
        [count, f"{fidelity:.4f}", "gain" if fidelity > baseline else ("loss" if fidelity < baseline else "-")]
        for count, fidelity in zip(counts, fidelities)
    ]
    print_table(
        "Fig. 5: fidelity vs number of XY4 sequences in one idle window",
        ["# sequences", "Hellinger fidelity", "vs no-DD"],
        rows,
    )
    save_results("fig05_dd_sweep.json", {"counts": counts, "fidelities": fidelities})
    # Shape checks: at least one count beats the no-DD baseline (blue region),
    # the response is non-monotonic (distinct peaks), and the best count is
    # strictly better than the baseline by a visible margin.
    best = max(fidelities[1:])
    assert best > baseline
    diffs = np.sign(np.diff(fidelities[1:]))
    assert (diffs > 0).any() and (diffs < 0).any(), "fidelity response should be non-monotonic"
    benchmark.extra_info["baseline"] = baseline
    benchmark.extra_info["best"] = best
    benchmark.extra_info["best_count"] = counts[int(np.argmax(fidelities))]
