"""Figure 9 — mitigation tuning trends: noisy simulation vs the real machine.

The paper shows that a calibration-derived noise model ("noisy simulation")
predicts completely different gate-position tuning trends than the real
machine, because the simulation lacks the coherent error processes that gate
scheduling actually refocuses.  In this reproduction the two flavours are
``NoiseModel.from_calibration`` (Markovian-only) and ``NoiseModel.from_device``
(adds detunings, drift and ZZ crosstalk); this benchmark sweeps the gate
position of a 2-qubit micro-benchmark under both and prints both series.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import fake_casablanca
from repro.circuits import QuantumCircuit
from repro.metrics import hellinger_fidelity
from repro.mitigation import GSConfig, reschedule_gate
from repro.simulators import NoiseModel, NoisySimulator, StatevectorSimulator
from repro.transpiler import find_idle_windows, schedule_circuit

from vaqem_shared import print_table, save_results


def _micro_benchmark(device, idle_ns: float = 12000.0):
    """A 2-qubit circuit with one large idle window and a movable echo gate.

    Qubit 0 sits in a phase-sensitive superposition while it waits for its
    partner (which holds an excitation for ``idle_ns``); the X pulse adjacent
    to that idle window is the gate whose position the sweep tunes, and the
    final Hadamard maps the residual idle phase into the measured outcome.
    """
    circuit = QuantumCircuit(2)
    circuit.h(0)
    circuit.x(1)
    # Pin the preparation before the wait (otherwise ALAP would slide it to
    # the end and the idle time would fall outside the qubit's runtime).
    circuit.barrier()
    circuit.delay(idle_ns, 1)
    circuit.barrier()
    circuit.x(0)
    circuit.h(0)
    circuit.x(1)
    circuit.measure_all()
    return circuit


def _position_sweep(num_positions: int = 11):
    device = fake_casablanca()
    circuit = _micro_benchmark(device)
    from repro.mitigation import movable_gate
    from repro.transpiler import transpile

    compiled = transpile(circuit, device)
    # Tune the window on the phase-sensitive qubit (logical qubit 0, i.e. the
    # circuit position measured into clbit 0); the partner qubit's idle window
    # is insensitive to gate position because it waits in a Z-basis state.
    position_of_logical0 = [pos for pos, clbit in compiled.scheduled.measured_positions() if clbit == 0][0]
    candidates = [
        w
        for w in compiled.idle_windows
        if w.position == position_of_logical0 and movable_gate(compiled.scheduled, w) is not None
    ]
    window = max(candidates, key=lambda w: w.duration_ns)
    ideal_probs = StatevectorSimulator().probabilities(circuit.remove_final_measurements())
    ideal = {format(i, "02b"): p for i, p in enumerate(ideal_probs) if p > 1e-12}

    positions = np.linspace(0.0, 1.0, num_positions)
    calibration = NoisySimulator(NoiseModel.from_calibration(device), seed=2)
    machine = NoisySimulator(NoiseModel.from_device(device), seed=2)

    calib_series, machine_series = [], []
    for position in positions:
        moved = reschedule_gate(compiled.scheduled, window, GSConfig(float(position)))
        probs_calibration, _ = calibration.measured_probabilities(moved)
        probs_machine, _ = machine.measured_probabilities(moved)
        calib_series.append(hellinger_fidelity(probs_calibration, ideal))
        machine_series.append(hellinger_fidelity(probs_machine, ideal))
    return positions.tolist(), calib_series, machine_series


@pytest.mark.benchmark(group="fig09")
def test_fig09_simulation_vs_machine_trends(benchmark):
    positions, calibration, machine = benchmark.pedantic(_position_sweep, rounds=1, iterations=1)
    rows = [
        [f"{p:.2f}", f"{c:.4f}", f"{m:.4f}"]
        for p, c, m in zip(positions, calibration, machine)
    ]
    print_table(
        "Fig. 9: gate-position tuning under calibration-only noise vs the device model",
        ["position", "noisy simulation", "machine model"],
        rows,
    )
    save_results(
        "fig09_sim_vs_machine.json",
        {"positions": positions, "calibration": calibration, "machine": machine},
    )
    calibration_range = max(calibration) - min(calibration)
    machine_range = max(machine) - min(machine)
    # Shape checks from the paper: the calibration model is essentially flat in
    # the gate position, the machine model shows a much larger fidelity range,
    # and the two disagree on where the optimum lies.
    assert machine_range > 5 * max(calibration_range, 1e-6)
    assert machine_range > 0.02
    best_machine = positions[int(np.argmax(machine))]
    best_calibration = positions[int(np.argmax(calibration))]
    benchmark.extra_info["machine_range"] = machine_range
    benchmark.extra_info["calibration_range"] = calibration_range
    benchmark.extra_info["best_position_machine"] = best_machine
    benchmark.extra_info["best_position_calibration"] = best_calibration
