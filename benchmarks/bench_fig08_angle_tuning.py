"""Figure 8 — angle-tuning convergence: ideal simulation vs machine execution.

The paper tunes the gate-rotation angles of a 6-qubit VQE problem on the
ideal simulator and replays the same parameter trajectory on the real machine
(ibmq_casablanca): the objective values differ but the convergence *trend* is
the same, which justifies tuning angles in simulation.  This benchmark runs
SPSA on the ideal simulator, replays a sub-sampled trajectory on the noisy
device model and prints both series.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.optimizers import SPSA
from repro.vqe import VQE, get_application

from vaqem_shared import print_table, save_results


def _angle_tuning_trajectories(maxiter: int = 120, samples: int = 13):
    application = get_application("HW_TFIM_6q_c_2r")
    vqe = VQE(application.ansatz, application.hamiltonian, seed=3)
    optimizer = SPSA(maxiter=maxiter, seed=3)
    result = optimizer.minimize(vqe.ideal_objective, vqe.initial_point())

    # Sub-sample the evaluation trajectory (the paper plots every iteration;
    # we replay a handful of points on the machine model to keep this cheap).
    # Both replays submit the whole trajectory as one expectation_batch: the
    # ideal series through the statevector engine, the machine series through
    # a shared noisy engine (one transpile + one simulation per point).
    indices = np.unique(np.linspace(0, len(result.parameter_history) - 1, samples).astype(int))
    points = [result.parameter_history[i] for i in indices]
    ideal_series = vqe.evaluate_trajectory_ideal(points)

    device = application.device()
    noisy_series = vqe.evaluate_trajectory_noisy(points, device, use_mem=True)
    return indices.tolist(), ideal_series, noisy_series, application.exact_ground_energy()


@pytest.mark.benchmark(group="fig08")
def test_fig08_angle_tuning_convergence(benchmark):
    iterations, ideal, noisy, e0 = benchmark.pedantic(
        _angle_tuning_trajectories, rounds=1, iterations=1
    )
    rows = [[i, f"{a:.4f}", f"{b:.4f}"] for i, a, b in zip(iterations, ideal, noisy)]
    print_table(
        "Fig. 8: objective vs tuning iteration (ideal simulation vs machine model)",
        ["iteration", "ideal simulation", "machine execution"],
        rows,
    )
    save_results(
        "fig08_angle_tuning.json",
        {"iterations": iterations, "ideal": ideal, "noisy": noisy, "ground_energy": e0},
    )
    # Shape checks: both series trend downward (later third better than the
    # first third), the machine values sit above the ideal ones on average,
    # and nothing violates the variational bound.
    third = max(1, len(ideal) // 3)
    assert np.mean(ideal[-third:]) < np.mean(ideal[:third])
    assert np.mean(noisy[-third:]) < np.mean(noisy[:third])
    assert np.mean(noisy) > np.mean(ideal)
    assert all(value >= e0 - 1e-6 for value in noisy)
    benchmark.extra_info["final_ideal"] = ideal[-1]
    benchmark.extra_info["final_noisy"] = noisy[-1]
