"""Figure 12 — VQE energy improvements relative to the MEM baseline.

The paper's headline result: across the seven applications, variationally
tuning the mitigation features (VAQEM) beats both the MEM-only baseline and
the untuned one-round DD configurations, and combining gate scheduling with
DD inside the VAQEM framework performs best (3.02x geometric-mean improvement
on their hardware).  This benchmark runs the full feasible flow per selected
application and prints the same bar values (improvement over the MEM
baseline, higher is better) plus the geometric-mean column.

The exact magnitudes depend on the device noise realisation; the shape that
is asserted here is the paper's qualitative ordering:
``VAQEM:GS+XY >= VAQEM:XY >= XY4 >= baseline`` and ``VAQEM:XX >= XX``.
"""

from __future__ import annotations

import pytest

from repro.analysis import EvaluationSummary

from vaqem_shared import (
    FIGURE12_STRATEGIES,
    print_table,
    run_application,
    save_results,
    selected_application_names,
)

#: Paper values (Fig. 12) for the strategies we reproduce, per application.
PAPER_GEOMEAN = {
    "vaqem_gs": 2.19, "dd_xy4": 1.41, "vaqem_xy": 2.10,
    "dd_xx": 1.27, "vaqem_xx": 1.58, "vaqem_gs_xy": 3.02,
}


def _run_all():
    summary = EvaluationSummary()
    for name in selected_application_names():
        summary.add(run_application(name, FIGURE12_STRATEGIES).to_application_result())
    return summary


@pytest.mark.benchmark(group="fig12")
def test_fig12_vqe_energy_improvements(benchmark):
    summary = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    strategies = ["dd_xx", "dd_xy4", "vaqem_gs", "vaqem_xx", "vaqem_xy", "vaqem_gs_xy"]
    rows = []
    for result in summary.results:
        rows.append([result.application] + [f"{result.improvement(s):.2f}" for s in strategies])
    geomeans = {s: summary.geomean_improvement(s) for s in strategies}
    rows.append(["GeoMean"] + [f"{geomeans[s]:.2f}" for s in strategies])
    rows.append(["GeoMean (paper)"] + [f"{PAPER_GEOMEAN[s]:.2f}" for s in strategies])
    print_table(
        "Fig. 12: VQE energy relative to the MEM baseline (higher is better)",
        ["application"] + strategies,
        rows,
    )
    save_results(
        "fig12_improvements.json",
        {
            "improvements": {s: summary.improvements(s) for s in strategies},
            "geomeans": geomeans,
            "paper_geomeans": PAPER_GEOMEAN,
            "energies": {
                r.application: {s: r.energy(s) for s in r.strategies()} for r in summary.results
            },
        },
    )
    # Qualitative shape of the paper's result.
    assert geomeans["vaqem_xy"] >= geomeans["dd_xy4"] - 1e-9, "tuned DD must beat one-round DD"
    assert geomeans["vaqem_xx"] >= geomeans["dd_xx"] - 1e-9
    # The combined strategy is the best or within a few percent of the best
    # individual VAQEM strategy (the independent-window flow does not
    # guarantee strict dominance; see EXPERIMENTS.md).
    assert geomeans["vaqem_gs_xy"] >= 0.95 * max(geomeans["vaqem_xy"], geomeans["vaqem_gs"])
    assert geomeans["vaqem_gs_xy"] >= geomeans["dd_xy4"] - 1e-9
    assert geomeans["vaqem_gs_xy"] > 1.1, "the combined VAQEM strategy must beat the baseline"
    for strategy in strategies:
        assert geomeans[strategy] >= 0.95, f"{strategy} should not regress below the baseline"
    benchmark.extra_info["geomeans"] = geomeans
