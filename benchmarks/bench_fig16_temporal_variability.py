"""Figure 16 — temporal variability of the VQE objective over 24 hours.

The paper repeatedly measures the same batch of VQA parameter configurations
over a 24-hour period on ibmq_casablanca: the objective values vary by
10-20 % of the ideal objective, and a machine re-calibration event visibly
shifts the distribution.  This benchmark replays a fixed-parameter ansatz
against drifted device snapshots produced by :class:`CalibrationDrift`
(including one re-calibration boundary) and prints the per-hour objective.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import CalibrationDrift, fake_casablanca
from repro.circuits import efficient_su2
from repro.operators import tfim_hamiltonian
from repro.simulators import NoiseModel
from repro.transpiler import transpile
from repro.vqe import ExpectationEstimator

from vaqem_shared import print_table, save_results


def _drift_series(hours: int = 24, step_hours: int = 2):
    base_device = fake_casablanca()
    drift = CalibrationDrift(base_device, calibration_period_hours=12.0, seed=17)
    hamiltonian = tfim_hamiltonian(4)
    ansatz = efficient_su2(4, reps=2, entanglement="circular")
    rng = np.random.default_rng(6)
    bound = ansatz.bind_parameters(rng.uniform(-np.pi, np.pi, ansatz.num_parameters))
    bound.measure_all()

    times = list(range(0, hours + 1, step_hours))
    values = []
    cycles = []
    for hour in times:
        snapshot = drift.snapshot(float(hour))
        compiled = transpile(bound, snapshot)
        estimator = ExpectationEstimator(NoiseModel.from_device(snapshot))
        values.append(estimator.estimate(compiled.scheduled, hamiltonian).value)
        cycles.append(drift.calibration_cycle(float(hour)))
    ideal = abs(hamiltonian.ground_energy())
    return times, values, cycles, ideal


@pytest.mark.benchmark(group="fig16")
def test_fig16_temporal_variability(benchmark):
    times, values, cycles, ideal_scale = benchmark.pedantic(_drift_series, rounds=1, iterations=1)
    rows = [
        [f"{t}h", f"{v:.4f}", f"cycle {c}"] for t, v, c in zip(times, values, cycles)
    ]
    print_table(
        "Fig. 16: objective for fixed parameters over 24 h (re-calibration at 12 h)",
        ["time", "objective", "calibration cycle"],
        rows,
    )
    save_results(
        "fig16_temporal_variability.json",
        {"times": times, "values": values, "cycles": cycles, "ideal_scale": ideal_scale},
    )
    spread = max(values) - min(values)
    relative = spread / ideal_scale
    # The paper reports a 10-20 % swing relative to the ideal objective; the
    # reproduction should show a clearly non-zero drift of a few percent or
    # more, and the post-calibration distribution should differ from the
    # pre-calibration one.
    assert relative > 0.02, f"objective drift of {relative:.3f} is implausibly small"
    first_cycle = [v for v, c in zip(values, cycles) if c == 0]
    second_cycle = [v for v, c in zip(values, cycles) if c == 1]
    assert second_cycle, "the 24 h window must cross a re-calibration boundary"
    assert abs(np.mean(second_cycle) - np.mean(first_cycle)) > 1e-3
    benchmark.extra_info["relative_spread"] = relative
    benchmark.extra_info["mean_shift_across_calibration"] = float(
        abs(np.mean(second_cycle) - np.mean(first_cycle))
    )
