"""Figure 13 — VQE energy relative to the simulated optimal value.

The paper normalises every strategy's measured energy by the classically
simulated optimum: No-EM recovers only 1-30 % of the optimal energy, the MEM
baseline 2-35 %, and the VAQEM strategies push that to 10-55 %, with the
combined GS+XY strategy always best.  This benchmark prints the same
percentages for the selected applications (re-using the cached Fig. 12 runs).
"""

from __future__ import annotations

import pytest

from repro.analysis import EvaluationSummary

from vaqem_shared import (
    FIGURE12_STRATEGIES,
    print_table,
    run_application,
    save_results,
    selected_application_names,
)


def _run_all():
    summary = EvaluationSummary()
    for name in selected_application_names():
        summary.add(run_application(name, FIGURE12_STRATEGIES).to_application_result())
    return summary


@pytest.mark.benchmark(group="fig13")
def test_fig13_energy_relative_to_optimal(benchmark):
    summary = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    strategies = ["no_em", "mem", "vaqem_gs", "vaqem_xy", "vaqem_gs_xy"]
    rows = []
    fractions = {s: summary.fractions_of_optimal(s) for s in strategies}
    for result in summary.results:
        rows.append(
            [result.application]
            + [f"{100 * fractions[s][result.application]:.1f}%" for s in strategies]
        )
    print_table(
        "Fig. 13: VQE energy as a percentage of the simulated optimal",
        ["application"] + strategies,
        rows,
    )
    save_results("fig13_rel_optimal.json", {"fractions": fractions})
    for result in summary.results:
        name = result.application
        # Shape checks per application: nothing exceeds the optimum, the
        # combined VAQEM strategy recovers the largest fraction, and the MEM
        # baseline is at least as good as no mitigation at all.
        for strategy in strategies:
            assert fractions[strategy][name] <= 1.0 + 1e-9
        best = max(fractions[s][name] for s in strategies)
        # The combined strategy is always at (or within a few percent of) the
        # top, and clearly above the unmitigated baselines.
        assert fractions["vaqem_gs_xy"][name] >= best - 0.05
        assert fractions["vaqem_gs_xy"][name] >= fractions["mem"][name] - 1e-9
        assert fractions["mem"][name] >= fractions["no_em"][name] - 0.05
    benchmark.extra_info["fractions"] = {
        s: {k: round(v, 4) for k, v in per_app.items()} for s, per_app in fractions.items()
    }
