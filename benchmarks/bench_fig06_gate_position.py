"""Figure 6 — Hellinger fidelity vs X-gate position inside a 28.44 us window.

The paper's single-qubit micro-benchmark (H + delay + X + H, measured in the
X basis) sweeps the position of the X pulse from ALAP to ASAP across a
28.44 us idle window and finds that fidelity peaks when the pulse sits near
the centre of the window (the Hahn-echo condition).  This benchmark repeats
that sweep on the fake device.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import fake_casablanca
from repro.circuits import hahn_echo_microbenchmark
from repro.engine import FakeDeviceEngine
from repro.metrics import hellinger_fidelity

from vaqem_shared import print_table, save_results

#: The paper's window: 799 identity gates of ~35.56 ns each.
PAPER_WINDOW_NS = 28440.0


def _position_sweep(num_positions: int = 21):
    engine = FakeDeviceEngine(fake_casablanca(), seed=1)
    positions = np.linspace(0.0, 1.0, num_positions)
    ideal = {"0": 1.0}

    # One batched submission of logical circuits: the fake-device engine
    # transpiles (cached per circuit content) and executes each noisily; the
    # density-matrix prefix up to the moving echo pulse is shared.
    circuits = [
        hahn_echo_microbenchmark(delay_ns=PAPER_WINDOW_NS, echo_position=float(position))
        for position in positions
    ]
    results = engine.run_batch(circuits)
    fidelities = [
        hellinger_fidelity({"0": r.probabilities[0], "1": r.probabilities[1]}, ideal)
        for r in results
    ]

    no_echo = hahn_echo_microbenchmark(delay_ns=PAPER_WINDOW_NS, include_echo=False)
    probs = engine.run(no_echo).probabilities
    baseline = hellinger_fidelity({"0": probs[0], "1": probs[1]}, ideal)
    return positions.tolist(), fidelities, baseline


@pytest.mark.benchmark(group="fig06")
def test_fig06_gate_position_sweep(benchmark):
    positions, fidelities, no_echo = benchmark.pedantic(_position_sweep, rounds=1, iterations=1)
    rows = [[f"{p:.2f}", f"{f:.4f}"] for p, f in zip(positions, fidelities)]
    rows.append(["no echo", f"{no_echo:.4f}"])
    print_table(
        "Fig. 6: Hellinger fidelity vs X-gate position (0 = ASAP, 1 = ALAP)",
        ["position", "fidelity"],
        rows,
    )
    save_results(
        "fig06_gate_position.json",
        {"positions": positions, "fidelities": fidelities, "no_echo": no_echo},
    )
    best_index = int(np.argmax(fidelities))
    best_position = positions[best_index]
    centre_index = len(positions) // 2
    # Shape checks: the best placement is in the interior of the window (not
    # the ALAP/ASAP extremes), the mid-window echo beats both extremes and the
    # echo-free reference, and the position visibly matters.  (With a ~28 us
    # window the accumulated phase wraps several times, so the curve oscillates
    # exactly as in the paper's figure; the envelope still favours the middle.)
    assert 0.0 < best_position < 1.0
    assert fidelities[centre_index] > fidelities[0]
    assert fidelities[centre_index] > fidelities[-1]
    assert fidelities[centre_index] > no_echo
    assert max(fidelities) - min(fidelities) > 0.05
    benchmark.extra_info["best_position"] = best_position
    benchmark.extra_info["best_fidelity"] = fidelities[best_index]
    benchmark.extra_info["no_echo_fidelity"] = no_echo
