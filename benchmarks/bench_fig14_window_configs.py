"""Figure 14 — chosen per-window configurations for HW_TFIM_6q_c_4r.

The paper plots, for every idle window of its deepest 6-qubit benchmark, the
gate position and the number of DD sequences chosen by VAQEM, each as a
fraction of its maximum — showing that the optima vary widely from window to
window (which is exactly why a one-size-fits-all configuration is
insufficient and a variational approach is needed).  This benchmark runs the
combined GS+XY tuning for that application and prints the per-window choices.

Note: the deep 6-qubit application is the most expensive one to simulate; set
``REPRO_FIG14_APP`` to a lighter application name to regenerate the figure's
shape more quickly.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.mitigation import max_sequences_in_window

from vaqem_shared import print_table, run_application, save_results


def _window_configurations():
    name = os.environ.get("REPRO_FIG14_APP", "HW_TFIM_4q_c_6r")
    result = run_application(name, ("mem", "vaqem_gs_xy"))
    tuning = result.tuning_results["vaqem_gs_xy"]
    scheduled = result.transpile_result.scheduled
    rows = []
    for record in tuning.window_records:
        window = record.window
        best = record.best
        capacity = max_sequences_in_window(window, scheduled, "xy4")
        dd_count = best.dd.num_sequences if best is not None and best.dd is not None else 0
        dd_fraction = dd_count / capacity if capacity else 0.0
        position = best.gs.position if best is not None and best.gs is not None else 1.0
        rows.append(
            {
                "window": window.index,
                "qubit": window.position,
                "duration_ns": window.duration_ns,
                "gate_position": position,
                "dd_sequences": dd_count,
                "dd_fraction_of_max": dd_fraction,
            }
        )
    return name, rows


@pytest.mark.benchmark(group="fig14")
def test_fig14_per_window_configurations(benchmark):
    name, rows = benchmark.pedantic(_window_configurations, rounds=1, iterations=1)
    table_rows = [
        [
            row["window"],
            row["qubit"],
            f"{row['duration_ns']:.0f}",
            f"{row['gate_position']:.2f}",
            row["dd_sequences"],
            f"{row['dd_fraction_of_max']:.2f}",
        ]
        for row in rows
    ]
    print_table(
        f"Fig. 14: per-window VAQEM configuration for {name}",
        ["window", "qubit", "duration(ns)", "gate position", "# DD seq", "DD fraction of max"],
        table_rows,
    )
    save_results("fig14_window_configs.json", {"application": name, "windows": rows})
    assert rows, "the application must expose idle windows"
    positions = [row["gate_position"] for row in rows]
    fractions = [row["dd_fraction_of_max"] for row in rows]
    # The paper's point: the chosen configurations vary across windows (they
    # are not all at the same value), i.e. a single static configuration
    # cannot be optimal everywhere.
    assert len(set(np.round(fractions, 3))) + len(set(np.round(positions, 3))) > 2
    benchmark.extra_info["num_windows"] = len(rows)
    benchmark.extra_info["distinct_dd_fractions"] = len(set(np.round(fractions, 3)))
