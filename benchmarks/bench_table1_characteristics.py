"""Table I — benchmark characteristics (CX depth and number of idle windows).

The paper reports, for each of the seven applications, the compiled circuit
depth counted in CX gates and the number of idle windows targeted by the
mitigation techniques.  This benchmark compiles every application with the
reproduction's transpiler and prints the same two rows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.transpiler import transpile
from repro.vqe import build_applications

from vaqem_shared import print_table, save_results

#: Paper values for reference (Table I).
PAPER_DEPTH = {
    "HW_TFIM_6q_f_2r": 54, "HW_TFIM_6q_c_2r": 31, "HW_TFIM_4q_c_6r": 57,
    "HW_TFIM_4q_f_6r": 101, "HW_TFIM_6q_c_4r": 55, "HW_Li+": 90, "UCCSD_H2": 61,
}
PAPER_WINDOWS = {
    "HW_TFIM_6q_f_2r": 42, "HW_TFIM_6q_c_2r": 24, "HW_TFIM_4q_c_6r": 22,
    "HW_TFIM_4q_f_6r": 34, "HW_TFIM_6q_c_4r": 30, "HW_Li+": 45, "UCCSD_H2": 26,
}


def _characterise():
    rows = []
    payload = {}
    rng = np.random.default_rng(0)
    for application in build_applications():
        bound = application.ansatz.bind_parameters(
            rng.uniform(-np.pi, np.pi, application.num_parameters)
        )
        bound.measure_all()
        result = transpile(bound, application.device())
        rows.append(
            [
                application.name,
                result.cx_depth,
                PAPER_DEPTH[application.name],
                result.num_idle_windows,
                PAPER_WINDOWS[application.name],
            ]
        )
        payload[application.name] = {
            "cx_depth": result.cx_depth,
            "paper_cx_depth": PAPER_DEPTH[application.name],
            "num_windows": result.num_idle_windows,
            "paper_num_windows": PAPER_WINDOWS[application.name],
        }
    return rows, payload


@pytest.mark.benchmark(group="table1")
def test_table1_benchmark_characteristics(benchmark):
    rows, payload = benchmark.pedantic(_characterise, rounds=1, iterations=1)
    print_table(
        "Table I: benchmark characteristics (measured vs paper)",
        ["Bench", "Depth", "Depth(paper)", "# Win", "# Win(paper)"],
        rows,
    )
    save_results("table1_characteristics.json", payload)
    # Sanity on the shape: every application compiles to a non-trivial CX depth
    # and exposes idle windows for mitigation to target.
    assert all(row[1] > 0 for row in rows)
    assert all(row[3] > 0 for row in rows)
    benchmark.extra_info["rows"] = {row[0]: (row[1], row[3]) for row in rows}
