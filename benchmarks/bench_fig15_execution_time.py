"""Figure 15 — end-to-end execution-time breakdown per application.

The paper decomposes the wall-clock cost of each application into angle
tuning (simulation or Qiskit Runtime), error-mitigation tuning and queueing,
and observes that (a) simulation-based angle tuning is much faster than
Runtime, (b) queueing dominates everything, and (c) the added EM-tuning time
is modest (under an hour).  This benchmark evaluates the reproduction's
execution-time model with each application's measured evaluation counts and
prints the same four components in minutes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mitigation import max_sequences_in_window
from repro.runtime import ExecutionTimeModel
from repro.transpiler import transpile
from repro.vaqem import TuningBudget
from repro.vqe import build_applications

from vaqem_shared import print_table, save_results


def _time_breakdowns(angle_iterations: int = 300):
    model = ExecutionTimeModel()
    budget = TuningBudget(dd_resolution=6, gs_resolution=5)
    breakdowns = []
    rng = np.random.default_rng(1)
    for application in build_applications():
        bound = application.ansatz.bind_parameters(
            rng.uniform(-np.pi, np.pi, application.num_parameters)
        )
        bound.measure_all()
        compiled = transpile(bound, application.device())
        # Per-window sweep size: DD counts plus gate positions (paper §VI-C),
        # capped by what actually fits in each window.
        em_evaluations = 0
        for window in compiled.idle_windows:
            capacity = max_sequences_in_window(window, compiled.scheduled, "xy4")
            em_evaluations += min(budget.dd_resolution, capacity + 1) + budget.gs_resolution
        angle_evaluations = 1 + 3 * angle_iterations  # SPSA cost model
        breakdown = model.breakdown(
            application=application.name,
            device_name=application.device().name,
            uses_runtime=application.uses_runtime,
            angle_tuning_evaluations=angle_evaluations,
            em_tuning_evaluations=em_evaluations,
            num_job_submissions=4,
        )
        breakdowns.append(breakdown)
    return breakdowns


@pytest.mark.benchmark(group="fig15")
def test_fig15_execution_time_breakdown(benchmark):
    breakdowns = benchmark.pedantic(_time_breakdowns, rounds=1, iterations=1)
    rows = []
    for b in breakdowns:
        d = b.as_dict()
        rows.append(
            [b.application]
            + [f"{d[k]:.1f}" for k in ("Tuning Angles - Sim", "Tuning Angles - QR", "Tuning EM", "Avg Queuing")]
            + [f"{b.total_min:.1f}"]
        )
    print_table(
        "Fig. 15: execution time breakdown (minutes)",
        ["application", "Angles-Sim", "Angles-QR", "Tuning EM", "Queuing", "Total"],
        rows,
    )
    save_results(
        "fig15_execution_time.json",
        {b.application: b.as_dict() for b in breakdowns},
    )
    sim_apps = [b for b in breakdowns if b.angle_tuning_simulation_min > 0]
    runtime_apps = [b for b in breakdowns if b.angle_tuning_runtime_min > 0]
    # Shape checks from the paper's discussion of Fig. 15.
    assert len(runtime_apps) == 2, "the two chemistry applications use Runtime"
    assert min(b.angle_tuning_runtime_min for b in runtime_apps) > max(
        b.angle_tuning_simulation_min for b in sim_apps
    ), "simulation-based angle tuning is much faster than Runtime"
    for b in breakdowns:
        assert b.queueing_min > b.em_tuning_min, "queueing dominates the actual tuning time"
        tuning = b.angle_tuning_simulation_min + b.angle_tuning_runtime_min
        # The paper reports EM tuning roughly matching the original tuning time
        # and staying around/under an hour; allow the deepest benchmarks a bit
        # more head-room since the sweep size scales with the window count.
        assert b.em_tuning_min < max(100.0, 2.0 * tuning), "EM tuning time stays modest"
    benchmark.extra_info["totals"] = {b.application: b.total_min for b in breakdowns}
