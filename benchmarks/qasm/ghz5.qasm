// 5-qubit GHZ chain with a pre-measurement barrier.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
cx q[3], q[4];
barrier q;
measure q -> c;
