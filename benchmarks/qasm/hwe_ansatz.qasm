// Hardware-efficient ansatz layer (bound angles): u3 rotations + crz
// entanglers, the gate mix of the paper's VQE workloads.
OPENQASM 2.0;
include "qelib1.inc";
gate layer(t1, t2, t3, t4) a, b, c, d
{
  u3(t1, -t1/2, t1/4) a;
  u3(t2, -t2/2, t2/4) b;
  u3(t3, -t3/2, t3/4) c;
  u3(t4, -t4/2, t4/4) d;
  crz(t1/2) a, b;
  crz(t2/2) b, c;
  crz(t3/2) c, d;
}
qreg q[4];
creg c[4];
layer(0.3, -0.7, 1.1, 0.25) q[0], q[1], q[2], q[3];
layer(-0.45, 0.8, -0.2, 0.6) q[0], q[1], q[2], q[3];
barrier q;
measure q -> c;
