// 4-qubit quantum Fourier transform, written with a controlled-phase macro
// so ingestion exercises gate definitions, expressions and the cp / swap
// decomposition rules.
OPENQASM 2.0;
include "qelib1.inc";
gate cphase(t) a, b { cp(t) a, b; }
qreg q[4];
creg c[4];
h q[0];
cphase(pi/2) q[1], q[0];
cphase(pi/4) q[2], q[0];
cphase(pi/8) q[3], q[0];
h q[1];
cphase(pi/2) q[2], q[1];
cphase(pi/4) q[3], q[1];
h q[2];
cphase(pi/2) q[3], q[2];
h q[3];
swap q[0], q[3];
swap q[1], q[2];
measure q -> c;
