// Toffoli chain: every ccx expands through the 15-gate standard
// decomposition, making this the decomposer-heavy benchmark.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
x q[0];
x q[1];
ccx q[0], q[1], q[2];
ccx q[1], q[2], q[3];
ccx q[2], q[3], q[4];
barrier q;
measure q -> c;
