"""Execute every fenced ``python`` snippet in the given markdown files.

Usage::

    PYTHONPATH=src python tools/run_doc_snippets.py [FILE.md ...]

Without arguments, checks ``README.md`` and every ``docs/*.md``.  All
snippets of one file run cumulatively in a single namespace (so a reference
block can use names an earlier example imported), each file starts fresh.
Snippets are compiled with their markdown path and line number as the
filename, so a failing snippet's traceback points into the document.

A fence opened with ```` ```python no-run ```` is extracted but not executed
(for illustrating APIs that need resources the CI container lacks); plain
```` ``` ```` fences and other languages are ignored entirely.

This is the CI guard that keeps the docs subsystem from rotting: a renamed
method or changed signature fails the snippet run the same way it would fail
a user.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from pathlib import Path
from typing import List, NamedTuple

REPO_ROOT = Path(__file__).resolve().parent.parent


class Snippet(NamedTuple):
    path: Path
    line: int  # 1-based line of the snippet's first code line
    code: str
    runnable: bool


def extract_snippets(path: Path) -> List[Snippet]:
    """All fenced code blocks of ``path`` whose info string starts ``python``."""
    snippets: List[Snippet] = []
    fence: str = ""
    info: str = ""
    start = 0
    lines: List[str] = []
    for number, raw in enumerate(path.read_text().splitlines(), start=1):
        stripped = raw.strip()
        if not fence:
            if stripped.startswith("```"):
                fence = "```"
                info = stripped[3:].strip().lower()
                start = number + 1
                lines = []
            continue
        if stripped.startswith("```"):
            if info.split() and info.split()[0] == "python":
                runnable = "no-run" not in info.split()
                snippets.append(Snippet(path, start, "\n".join(lines), runnable))
            fence = ""
            continue
        lines.append(raw)
    return snippets


def run_file(path: Path) -> int:
    """Execute one file's snippets in a shared namespace; returns #failures."""
    snippets = extract_snippets(path)
    namespace: dict = {"__name__": f"doc_snippets:{path.name}"}
    executed = 0
    for snippet in snippets:
        if not snippet.runnable:
            print(f"[doc-snippets] {path}:{snippet.line} skipped (no-run)")
            continue
        location = f"{path}:{snippet.line}"
        try:
            code = compile(snippet.code, location, "exec")
            exec(code, namespace)  # noqa: S102 - executing our own docs is the point
        except Exception:
            print(f"[doc-snippets] FAILED {location}")
            traceback.print_exc()
            return 1
        executed += 1
    print(f"[doc-snippets] {path}: {executed} snippet(s) ok, "
          f"{len(snippets) - executed} skipped")
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="markdown files to check (default: README.md and docs/*.md)",
    )
    args = parser.parse_args(argv)
    files = args.files or [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    failures = 0
    for path in files:
        if not path.exists():
            print(f"[doc-snippets] missing file: {path}")
            failures += 1
            continue
        failures += run_file(path)
    if failures:
        print(f"[doc-snippets] {failures} file(s) failed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
