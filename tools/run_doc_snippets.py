"""Execute every fenced ``python`` snippet in the given markdown files, and
validate their intra-repository links.

Usage::

    PYTHONPATH=src python tools/run_doc_snippets.py [FILE.md ...]

Without arguments, checks ``README.md`` and every ``docs/*.md``.  All
snippets of one file run cumulatively in a single namespace (so a reference
block can use names an earlier example imported), each file starts fresh.
Snippets are compiled with their markdown path and line number as the
filename, so a failing snippet's traceback points into the document.

A fence opened with ```` ```python no-run ```` is extracted but not executed
(for illustrating APIs that need resources the CI container lacks); plain
```` ``` ```` fences and other languages are ignored entirely.

In addition to running snippets, every relative markdown link —
``[text](other.md)``, ``[text](other.md#section)``, ``[text](#section)``,
``[text](../examples/quickstart.py)`` — is resolved against the repository:
the target file must exist, and a ``#fragment`` pointing into a markdown
file must name one of its heading anchors (GitHub slug rules).  External
links (``http(s)://``, ``mailto:``) are left alone.

This is the CI guard that keeps the docs subsystem from rotting: a renamed
method or changed signature fails the snippet run the same way it would fail
a user, and a renamed document or section breaks the link check instead of a
reader.
"""

from __future__ import annotations

import argparse
import re
import sys
import traceback
from pathlib import Path
from typing import List, NamedTuple, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent


class Snippet(NamedTuple):
    path: Path
    line: int  # 1-based line of the snippet's first code line
    code: str
    runnable: bool


def extract_snippets(path: Path) -> List[Snippet]:
    """All fenced code blocks of ``path`` whose info string starts ``python``."""
    snippets: List[Snippet] = []
    fence: str = ""
    info: str = ""
    start = 0
    lines: List[str] = []
    for number, raw in enumerate(path.read_text().splitlines(), start=1):
        stripped = raw.strip()
        if not fence:
            if stripped.startswith("```"):
                fence = "```"
                info = stripped[3:].strip().lower()
                start = number + 1
                lines = []
            continue
        if stripped.startswith("```"):
            if info.split() and info.split()[0] == "python":
                runnable = "no-run" not in info.split()
                snippets.append(Snippet(path, start, "\n".join(lines), runnable))
            fence = ""
            continue
        lines.append(raw)
    return snippets


# ----------------------------------------------------------------------------
# Intra-repository link validation
# ----------------------------------------------------------------------------

#: Inline markdown links (and images): ``[text](target)`` with an optional
#: ``"title"``.  Targets never contain whitespace in this repository.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")
_EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def _unfenced_lines(path: Path) -> List[Tuple[int, str]]:
    """``(line number, text)`` for every line outside fenced code blocks."""
    lines: List[Tuple[int, str]] = []
    fenced = False
    for number, raw in enumerate(path.read_text().splitlines(), start=1):
        if raw.strip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            lines.append((number, raw))
    return lines


def _slugify(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, punctuation stripped,
    spaces to hyphens."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\s-]", "", slug)
    return re.sub(r"\s+", "-", slug)


def heading_anchors(path: Path) -> Set[str]:
    """Every anchor a ``#fragment`` may target in a markdown file
    (duplicate headings get ``-1``, ``-2``, ... suffixes, as on GitHub)."""
    anchors: Set[str] = set()
    counts: dict = {}
    for _, line in _unfenced_lines(path):
        match = re.match(r"(#{1,6})\s+(.*)", line)
        if not match:
            continue
        slug = _slugify(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def check_links(path: Path) -> List[str]:
    """Broken intra-repo links of one markdown file, as printable errors."""
    errors: List[str] = []
    for number, line in _unfenced_lines(path):
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL_SCHEMES):
                continue
            file_part, _, fragment = target.partition("#")
            if file_part:
                resolved = (path.parent / file_part).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{path}:{number}: broken link '{target}' "
                        f"(no such file: {file_part})"
                    )
                    continue
            else:
                resolved = path.resolve()
            if fragment and resolved.suffix == ".md":
                if fragment not in heading_anchors(resolved):
                    errors.append(
                        f"{path}:{number}: broken link '{target}' "
                        f"(no heading anchor '#{fragment}' in {resolved.name})"
                    )
    return errors


def run_link_check(path: Path) -> int:
    """Validate one file's links; returns 1 on any broken link."""
    errors = check_links(path)
    for error in errors:
        print(f"[doc-links] FAILED {error}")
    if not errors:
        print(f"[doc-links] {path}: links ok")
    return 1 if errors else 0


def run_file(path: Path) -> int:
    """Execute one file's snippets in a shared namespace; returns #failures."""
    snippets = extract_snippets(path)
    namespace: dict = {"__name__": f"doc_snippets:{path.name}"}
    executed = 0
    for snippet in snippets:
        if not snippet.runnable:
            print(f"[doc-snippets] {path}:{snippet.line} skipped (no-run)")
            continue
        location = f"{path}:{snippet.line}"
        try:
            code = compile(snippet.code, location, "exec")
            exec(code, namespace)  # noqa: S102 - executing our own docs is the point
        except Exception:
            print(f"[doc-snippets] FAILED {location}")
            traceback.print_exc()
            return 1
        executed += 1
    print(f"[doc-snippets] {path}: {executed} snippet(s) ok, "
          f"{len(snippets) - executed} skipped")
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="markdown files to check (default: README.md and docs/*.md)",
    )
    args = parser.parse_args(argv)
    files = args.files or [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    failures = 0
    for path in files:
        if not path.exists():
            print(f"[doc-snippets] missing file: {path}")
            failures += 1
            continue
        failures += run_link_check(path)
        failures += run_file(path)
    if failures:
        print(f"[doc-snippets] {failures} file(s) failed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
