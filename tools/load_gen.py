#!/usr/bin/env python
"""Open-loop load generator for the engine service tier.

Spins up an :class:`~repro.service.EngineServer` on an ephemeral port, then
drives it with N synthetic tenants whose requests arrive as independent
seeded Poisson processes — open loop: arrival times are drawn ahead of time
and each request fires on schedule in its own thread, whether or not earlier
requests have completed, so server-side queueing shows up as latency and
admission rejections instead of silently throttling the offered load.

All tenants draw from one shared program pool, so identical schedules hit
the fleet-wide result store across tenants — the dedupe hit-rate the smoke
gate asserts on.

Usage::

    PYTHONPATH=src python tools/load_gen.py --smoke      # CI gate (~10 s)
    PYTHONPATH=src python tools/load_gen.py --tenants 8 --duration 30 --rate 40

``--smoke`` runs 2 tenants for a few seconds and **fails** (exit 1) unless:
no unexpected errors occurred (admission rejections are expected and typed),
the fleet dedupe hit-rate is positive, and every counter — per-tenant,
fleet, and deterministic ``EngineStats`` — is monotone between a mid-run and
a final metrics snapshot.

The result dict doubles as the ``service_load`` leg of
``BENCH_engine.json`` (see ``benchmarks/run_all.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

import numpy as np

from repro.backends import fake_casablanca
from repro.circuits import efficient_su2
from repro.engine import NoisyDensityMatrixEngine
from repro.exceptions import AdmissionError
from repro.frontend import schedule_to_json
from repro.service import EngineServer, ServiceClient, ServiceConfig, TenantPolicy
from repro.service.metrics import percentile
from repro.simulators import NoiseModel
from repro.transpiler import transpile


def _program_pool(device, size: int, seed: int) -> List[dict]:
    """``size`` distinct scheduled programs, shared by every tenant."""
    rng = np.random.default_rng(seed)
    documents = []
    for index in range(size):
        ansatz = efficient_su2(2, reps=1, entanglement="linear")
        bound = ansatz.bind_parameters(
            rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
        )
        bound.measure_all()
        bound.name = f"load-{index}"
        documents.append(json.loads(schedule_to_json(transpile(bound, device).scheduled)))
    return documents


def _flatten_counters(tree: Any, prefix: str = "") -> Dict[str, int]:
    """Every integer counter in a nested metrics payload, keyed by path."""
    flat: Dict[str, int] = {}
    if isinstance(tree, dict):
        for key, value in tree.items():
            flat.update(_flatten_counters(value, f"{prefix}{key}."))
    elif isinstance(tree, bool):
        pass
    elif isinstance(tree, int):
        flat[prefix[:-1]] = tree
    return flat


def _counters_monotone(before: dict, after: dict) -> List[str]:
    """Counter paths that went backwards between two metrics snapshots."""
    first, second = _flatten_counters(before), _flatten_counters(after)
    return sorted(
        path for path, value in first.items() if second.get(path, value) < value
    )


def run_load(
    num_tenants: int = 4,
    duration_seconds: float = 10.0,
    rate_per_tenant: float = 20.0,
    seed: int = 2026,
    kernel: Optional[str] = None,
    pool_size: int = 3,
    max_concurrent: int = 64,
) -> Dict[str, Any]:
    """Run the load shape against a fresh server; returns the metrics leg."""
    device = fake_casablanca()
    engine_kwargs = {"seed": 97}
    if kernel is not None:
        engine_kwargs["kernel"] = kernel
    engine = NoisyDensityMatrixEngine(NoiseModel.from_device(device), **engine_kwargs)
    config = ServiceConfig(
        default_policy=TenantPolicy(
            rate_per_second=rate_per_tenant, burst=max(4, int(rate_per_tenant))
        )
    )
    documents = _program_pool(device, pool_size, seed)

    lock = threading.Lock()
    latencies: List[float] = []
    rejections: Dict[str, int] = {}
    unexpected: List[str] = []
    completed = 0
    sent = 0
    gate = threading.Semaphore(max_concurrent)

    with EngineServer(engine, config, own_engine=True) as server:
        observer = ServiceClient(server.host, server.port, tenant="load-observer")

        def fire(tenant_name: str, document: dict) -> None:
            nonlocal completed
            client = ServiceClient(server.host, server.port, tenant=tenant_name)
            started = time.monotonic()
            try:
                client.run(document)
            except AdmissionError as error:
                with lock:
                    name = type(error).__name__
                    rejections[name] = rejections.get(name, 0) + 1
                return
            except Exception as error:  # noqa: BLE001 - recorded, judged later
                with lock:
                    unexpected.append(f"{tenant_name}: {type(error).__name__}: {error}")
                return
            finally:
                gate.release()
            with lock:
                completed += 1
                latencies.append(time.monotonic() - started)

        def tenant_worker(index: int) -> None:
            nonlocal sent
            rng = np.random.default_rng(seed + 1000 + index)
            tenant_name = f"tenant-{index:02d}"
            clock_zero = time.monotonic()
            elapsed = 0.0
            threads = []
            while True:
                elapsed += rng.exponential(1.0 / rate_per_tenant)
                if elapsed >= duration_seconds:
                    break
                wait = clock_zero + elapsed - time.monotonic()
                if wait > 0:
                    time.sleep(wait)
                document = documents[int(rng.integers(len(documents)))]
                gate.acquire()
                with lock:
                    sent += 1
                thread = threading.Thread(target=fire, args=(tenant_name, document))
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join()

        workers = [
            threading.Thread(target=tenant_worker, args=(index,))
            for index in range(num_tenants)
        ]
        run_started = time.monotonic()
        for worker in workers:
            worker.start()
        time.sleep(duration_seconds / 2)
        mid_metrics = observer.metrics()
        for worker in workers:
            worker.join()
        elapsed = time.monotonic() - run_started
        final_metrics = observer.metrics()

    regressions = _counters_monotone(mid_metrics, final_metrics)
    sorted_latencies = sorted(latencies)
    store = final_metrics["fleet"]["store"]
    return {
        "tenants": num_tenants,
        "duration_seconds": duration_seconds,
        "rate_per_tenant": rate_per_tenant,
        "kernel": kernel or os.environ.get("REPRO_ENGINE_KERNEL", "dense"),
        "pool_size": pool_size,
        "requests_sent": sent,
        "completed": completed,
        "rejections": rejections,
        "unexpected_errors": unexpected,
        "throughput_rps": completed / elapsed if elapsed > 0 else 0.0,
        "latency_ms": {
            "count": len(sorted_latencies),
            "p50": percentile(sorted_latencies, 0.50) * 1e3,
            "p99": percentile(sorted_latencies, 0.99) * 1e3,
        },
        "fleet_store": store,
        "dedupe_hit_rate": store["hit_rate"],
        "engine_stats": final_metrics["fleet"]["engine_stats"],
        "per_tenant": final_metrics["tenants"],
        "counter_regressions": regressions,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--duration", type=float, default=10.0, help="seconds of offered load")
    parser.add_argument("--rate", type=float, default=20.0, help="arrivals/s per tenant")
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--kernel", default=os.environ.get("REPRO_ENGINE_KERNEL") or None,
        help="simulation kernel (default: REPRO_ENGINE_KERNEL or engine default)",
    )
    parser.add_argument("--pool-size", type=int, default=3, dest="pool_size")
    parser.add_argument("--output", help="write the result JSON here")
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: 2 tenants, short run, assert no unexpected errors, "
        "positive dedupe hit-rate, monotone counters",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.tenants = 2
        args.duration = min(args.duration, 8.0)

    result = run_load(
        num_tenants=args.tenants,
        duration_seconds=args.duration,
        rate_per_tenant=args.rate,
        seed=args.seed,
        kernel=args.kernel,
        pool_size=args.pool_size,
    )
    print(
        f"[load_gen] {result['tenants']} tenants x {result['duration_seconds']:.0f}s "
        f"@{result['rate_per_tenant']:.0f}/s: {result['completed']}/{result['requests_sent']} "
        f"completed ({result['throughput_rps']:.1f} rps), "
        f"p50 {result['latency_ms']['p50']:.1f} ms, p99 {result['latency_ms']['p99']:.1f} ms, "
        f"rejections {result['rejections'] or '{}'}, "
        f"dedupe hit-rate {result['dedupe_hit_rate']:.2f}"
    )
    if args.output:
        Path(args.output).write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"[load_gen] wrote {args.output}")

    if args.smoke:
        failures = []
        if result["unexpected_errors"]:
            failures.append(f"unexpected errors: {result['unexpected_errors'][:5]}")
        if result["completed"] == 0:
            failures.append("no request completed")
        if result["dedupe_hit_rate"] <= 0.0:
            failures.append("fleet dedupe hit-rate was zero")
        if result["counter_regressions"]:
            failures.append(f"counters went backwards: {result['counter_regressions']}")
        if failures:
            for failure in failures:
                print(f"[load_gen] SMOKE FAIL: {failure}")
            return 1
        print("[load_gen] smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
