"""Standalone frontend fuzz runner — the CI smoke step and a local soak tool.

Runs the same seeded generators as ``tests/test_frontend_fuzz.py`` but as a
flat loop with a summary line, so it can be pointed at much larger seed
ranges than the pytest suite pins::

    PYTHONPATH=src python tools/fuzz_frontend.py                 # CI smoke (default counts)
    PYTHONPATH=src python tools/fuzz_frontend.py --count 5000    # local soak
    PYTHONPATH=src python tools/fuzz_frontend.py --offset 7000   # fresh seed block

Checks three properties per round:

1. a seeded valid QASM program parses to a circuit bit-identical to its
   independently-built reference (fingerprint equality);
2. the QASM emitter round trip is a fixed point;
3. a mutated program either parses cleanly or raises a typed
   :class:`~repro.exceptions.IngestError` — any other exception type is a
   parser bug and fails the run.

Exits non-zero on the first property violation, printing the seed and
corruption kind needed to replay it.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tests"))

from randomized import corrupt_program, fuzz_seeds, random_qasm_case  # noqa: E402
from repro.engine.fingerprint import circuit_fingerprint  # noqa: E402
from repro.exceptions import IngestError, ParseError  # noqa: E402
from repro.frontend import ResourceLimits, circuit_to_qasm, parse_qasm  # noqa: E402


def run(count: int, corrupt_count: int, offset: int) -> int:
    limits = ResourceLimits()
    failures = 0
    started = time.perf_counter()

    parsed = 0
    for seed in fuzz_seeds(count, offset=offset):
        text, reference = random_qasm_case(seed)
        try:
            circuit = parse_qasm(text, limits=limits)
            if circuit_fingerprint(circuit) != circuit_fingerprint(reference):
                print(f"FAIL seed={seed}: parsed circuit diverged from reference")
                failures += 1
                continue
            rebuilt = parse_qasm(circuit_to_qasm(circuit), limits=limits)
            if circuit_fingerprint(rebuilt) != circuit_fingerprint(circuit):
                print(f"FAIL seed={seed}: emitter round trip diverged")
                failures += 1
                continue
        except Exception as error:  # noqa: BLE001 - valid input must never raise
            print(f"FAIL seed={seed}: valid program raised {type(error).__name__}: {error}")
            failures += 1
            continue
        parsed += 1

    typed = 0
    clean = 0
    for seed in fuzz_seeds(corrupt_count, offset=offset + 200):
        text, _ = random_qasm_case(seed)
        kind, corrupted = corrupt_program(text, seed)
        try:
            parse_qasm(corrupted, limits=limits)
            clean += 1
        except IngestError as error:
            if isinstance(error, ParseError) and error.line is None:
                print(f"FAIL seed={seed} kind={kind}: ParseError without line info")
                failures += 1
                continue
            typed += 1
        except Exception as error:  # noqa: BLE001 - the bug class this tool hunts
            print(
                f"FAIL seed={seed} kind={kind}: untyped {type(error).__name__}: {error!r}"
            )
            failures += 1

    elapsed = time.perf_counter() - started
    print(
        f"fuzz_frontend: {parsed}/{count} valid round trips, "
        f"{typed} typed rejections + {clean} benign mutations of {corrupt_count} "
        f"corrupted programs, {failures} failures in {elapsed:.1f}s"
    )
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=100, help="valid-program seeds")
    parser.add_argument("--corrupt-count", type=int, default=150, help="mutation seeds")
    parser.add_argument(
        "--offset", type=int, default=2000,
        help="seed offset (2000 matches the pytest suite; pick another block to soak)",
    )
    options = parser.parse_args()
    return run(options.count, options.corrupt_count, options.offset)


if __name__ == "__main__":
    sys.exit(main())
