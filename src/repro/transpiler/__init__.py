"""Compilation: layout, routing, basis translation, scheduling, idle windows."""

from .basis import single_qubit_sequence, translate_to_basis, unitaries_equal_up_to_phase, zyz_angles
from .coupling import CouplingMap
from .idle_windows import IdleWindow, adjacent_single_qubit_gate, find_idle_windows, total_idle_time, windows_by_qubit
from .layout import Layout, noise_aware_layout, select_qubit_subset
from .pipeline import TranspileResult, transpile
from .routing import count_added_swaps, route_circuit
from .scheduling import ScheduledCircuit, TimedInstruction, schedule_circuit

__all__ = [
    "CouplingMap",
    "Layout",
    "noise_aware_layout",
    "select_qubit_subset",
    "route_circuit",
    "count_added_swaps",
    "translate_to_basis",
    "single_qubit_sequence",
    "zyz_angles",
    "unitaries_equal_up_to_phase",
    "ScheduledCircuit",
    "TimedInstruction",
    "schedule_circuit",
    "IdleWindow",
    "find_idle_windows",
    "adjacent_single_qubit_gate",
    "total_idle_time",
    "windows_by_qubit",
    "TranspileResult",
    "transpile",
]
