"""Idle-window analysis of scheduled circuits.

An *idle window* is a maximal interval during a qubit's runtime (first gate to
measurement) in which no instruction acts on it.  Idle windows are where
decoherence and coherent phase errors accumulate, and they are the insertion
points for the two mitigation techniques VAQEM tunes (DD sequences and
single-qubit gate rescheduling).  Table I of the paper reports the number of
idle windows targeted per benchmark; that count is produced by
:func:`find_idle_windows` with the same minimum-duration filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import TranspilerError
from .scheduling import ScheduledCircuit, TimedInstruction


@dataclass(frozen=True)
class IdleWindow:
    """A contiguous idle interval on one circuit position (qubit)."""

    index: int
    position: int
    physical_qubit: int
    start_ns: float
    end_ns: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    def __repr__(self):
        return (
            f"IdleWindow(#{self.index}, q{self.position}->phys{self.physical_qubit}, "
            f"[{self.start_ns:.1f}, {self.end_ns:.1f}]ns, {self.duration_ns:.1f}ns)"
        )


def _busy_intervals(scheduled: ScheduledCircuit, position: int) -> List[Tuple[float, float]]:
    intervals = [
        (t.start_ns, t.end_ns)
        for t in scheduled.instructions_on(position)
        if t.name not in ("barrier",) and t.duration_ns > 0
    ]
    zero_duration = [
        (t.start_ns, t.start_ns)
        for t in scheduled.instructions_on(position)
        if t.name not in ("barrier",) and t.duration_ns == 0
    ]
    return sorted(intervals + zero_duration)


def find_idle_windows(
    scheduled: ScheduledCircuit,
    min_duration_ns: Optional[float] = None,
    include_pre_runtime: bool = False,
) -> List[IdleWindow]:
    """Locate idle windows on every qubit of a scheduled circuit.

    Parameters
    ----------
    scheduled:
        The scheduled circuit to analyse.
    min_duration_ns:
        Windows shorter than this are ignored (too short to host even one DD
        pulse pair).  Defaults to twice the device's single-qubit gate time.
    include_pre_runtime:
        Whether to report the interval between circuit start and a qubit's
        first gate.  The paper does not mitigate that region (the qubit is
        still in |0> and ALAP already protects it), so the default is False.
    """
    if min_duration_ns is None:
        min_duration_ns = 2.0 * scheduled.device.single_qubit_gate.duration_ns

    windows: List[IdleWindow] = []
    counter = 0
    for position in range(scheduled.num_qubits):
        runtime_start, runtime_end = scheduled.qubit_runtime(position)
        if runtime_end <= runtime_start:
            continue
        busy = _busy_intervals(scheduled, position)
        busy = [iv for iv in busy if iv[0] < runtime_end]
        cursor = 0.0 if include_pre_runtime else runtime_start
        for start, end in busy:
            if start - cursor >= min_duration_ns:
                windows.append(
                    IdleWindow(
                        index=counter,
                        position=position,
                        physical_qubit=scheduled.physical_qubit(position),
                        start_ns=cursor,
                        end_ns=start,
                    )
                )
                counter += 1
            cursor = max(cursor, end)
        if runtime_end - cursor >= min_duration_ns:
            windows.append(
                IdleWindow(
                    index=counter,
                    position=position,
                    physical_qubit=scheduled.physical_qubit(position),
                    start_ns=cursor,
                    end_ns=runtime_end,
                )
            )
            counter += 1
    return windows


def total_idle_time(scheduled: ScheduledCircuit, min_duration_ns: float = 0.0) -> float:
    """Sum of idle-window durations across all qubits (ns)."""
    return sum(w.duration_ns for w in find_idle_windows(scheduled, min_duration_ns))


def windows_by_qubit(windows: Sequence[IdleWindow]) -> Dict[int, List[IdleWindow]]:
    """Group idle windows by circuit position."""
    grouped: Dict[int, List[IdleWindow]] = {}
    for window in windows:
        grouped.setdefault(window.position, []).append(window)
    for group in grouped.values():
        group.sort(key=lambda w: w.start_ns)
    return grouped


def adjacent_single_qubit_gate(
    scheduled: ScheduledCircuit, window: IdleWindow, tolerance_ns: float = 1.0
) -> Optional[TimedInstruction]:
    """The movable single-qubit gate adjacent to an idle window, if any.

    ALAP scheduling leaves single-qubit gates immediately *after* their idle
    slack, so the primary candidate is the non-virtual single-qubit gate whose
    start coincides with the window end; failing that, the gate ending at the
    window start.  Virtual gates (rz) take no time and cannot refocus anything,
    so they are never candidates.
    """
    candidates = [
        t
        for t in scheduled.instructions_on(window.position)
        if len(t.qubits) == 1 and t.name in ("x", "sx", "y") and t.duration_ns > 0
    ]
    for timed in candidates:
        if abs(timed.start_ns - window.end_ns) <= tolerance_ns:
            return timed
    for timed in candidates:
        if abs(timed.end_ns - window.start_ns) <= tolerance_ns:
            return timed
    return None
