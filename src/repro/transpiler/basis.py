"""Basis translation to the IBM hardware gate set ``{rz, sx, x, cx}``.

Single-qubit gates are decomposed through their ZYZ Euler angles and the
identity ``Ry(theta) ~ SX . RZ(pi - theta) . SX . RZ(pi)`` (up to global
phase), yielding the standard ``RZ - SX - RZ - SX - RZ`` hardware sequence.
Two-qubit gates are rewritten onto CX plus single-qubit corrections.

Global phases are irrelevant for every consumer in this library (density
matrices, expectation values, sampling), so the translation only guarantees
equality of the circuit unitary up to a global phase — this is asserted by
the test-suite via :func:`unitaries_equal_up_to_phase`.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..exceptions import TranspilerError

_ATOL = 1e-9


def zyz_angles(matrix: np.ndarray) -> Tuple[float, float, float]:
    """Euler angles (theta, phi, lam) with ``U ~ Rz(phi) Ry(theta) Rz(lam)``.

    The result is defined up to global phase.  ``theta`` lies in [0, pi].
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise TranspilerError("zyz_angles expects a single-qubit matrix")
    # Normalise to SU(2).
    det = np.linalg.det(matrix)
    su2 = matrix / cmath.sqrt(det)
    # su2 = [[cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #        [sin(t/2) e^{ i(phi-lam)/2},  cos(t/2) e^{ i(phi+lam)/2}]]
    cos_half = abs(su2[0, 0])
    sin_half = abs(su2[1, 0])
    theta = 2.0 * math.atan2(sin_half, cos_half)
    if sin_half < _ATOL:
        # Diagonal: only phi + lam is defined.
        phi_plus_lam = 2.0 * cmath.phase(su2[1, 1])
        return 0.0, phi_plus_lam, 0.0
    if cos_half < _ATOL:
        # Anti-diagonal: only phi - lam is defined.
        phi_minus_lam = 2.0 * cmath.phase(su2[1, 0])
        return math.pi, phi_minus_lam, 0.0
    phi_plus_lam = 2.0 * cmath.phase(su2[1, 1])
    phi_minus_lam = 2.0 * cmath.phase(su2[1, 0])
    phi = 0.5 * (phi_plus_lam + phi_minus_lam)
    lam = 0.5 * (phi_plus_lam - phi_minus_lam)
    return theta, phi, lam


def _wrap(angle: float) -> float:
    """Wrap an angle into (-pi, pi]."""
    wrapped = math.fmod(angle + math.pi, 2.0 * math.pi)
    if wrapped <= 0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


def single_qubit_sequence(matrix: np.ndarray) -> List[Tuple[str, Tuple[float, ...]]]:
    """Hardware sequence (circuit order) implementing a 1-qubit unitary.

    Returns a list of ``(gate_name, params)`` drawn from {rz, sx, x}.  Pure Z
    rotations collapse to a single ``rz``; X-like gates collapse to ``x``.
    """
    theta, phi, lam = zyz_angles(matrix)
    theta, phi, lam = _wrap(theta), _wrap(phi), _wrap(lam)
    if abs(theta) < _ATOL:
        total = _wrap(phi + lam)
        return [] if abs(total) < _ATOL else [("rz", (total,))]
    # Circuit order (first applied first):
    #   rz(lam + pi), sx, rz(pi - theta), sx, rz(phi)   ~   Rz(phi) Ry(theta) Rz(lam)
    sequence: List[Tuple[str, Tuple[float, ...]]] = []
    first = _wrap(lam + math.pi)
    middle = _wrap(math.pi - theta)
    last = _wrap(phi)
    if abs(first) > _ATOL:
        sequence.append(("rz", (first,)))
    sequence.append(("sx", ()))
    if abs(middle) > _ATOL:
        sequence.append(("rz", (middle,)))
    sequence.append(("sx", ()))
    if abs(last) > _ATOL:
        sequence.append(("rz", (last,)))
    return sequence


def unitaries_equal_up_to_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-7) -> bool:
    """True when two unitaries differ only by a global phase."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    product = a @ b.conj().T
    phase = product[0, 0]
    if abs(abs(phase) - 1.0) > atol:
        return False
    return bool(np.allclose(product, phase * np.eye(a.shape[0]), atol=atol))


_NATIVE_SINGLE = {"rz", "sx", "x", "id"}
_PASSTHROUGH = {"cx", "measure", "barrier", "delay"}


def translate_to_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite a circuit onto the {rz, sx, x, cx} basis.

    Parameters must already be bound (the paper also binds angles before the
    mitigation-tuning stage, so this is not a practical restriction).
    """
    if circuit.parameters:
        raise TranspilerError("bind all parameters before basis translation")
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, name=f"{circuit.name}_basis")
    out.metadata = dict(circuit.metadata)

    def emit_single(matrix: np.ndarray, qubit: int) -> None:
        for name, params in single_qubit_sequence(matrix):
            out.append(Gate(name, 1, params), [qubit])

    for inst in circuit.instructions:
        name = inst.name
        qubits = inst.qubits
        if name in _PASSTHROUGH:
            out.append(inst.gate, qubits, inst.clbits)
            continue
        if name in _NATIVE_SINGLE:
            if name == "id":
                continue
            out.append(inst.gate, qubits, inst.clbits)
            continue
        if len(qubits) == 1:
            emit_single(inst.gate.matrix(), qubits[0])
            continue
        # Two-qubit decompositions onto CX.
        if name == "cz":
            a, b = qubits
            emit_single(Gate("h", 1).matrix(), b)
            out.cx(a, b)
            emit_single(Gate("h", 1).matrix(), b)
        elif name == "swap":
            a, b = qubits
            out.cx(a, b)
            out.cx(b, a)
            out.cx(a, b)
        elif name == "rzz":
            a, b = qubits
            (theta,) = inst.gate.params
            out.cx(a, b)
            out.append(Gate("rz", 1, (float(theta),)), [b])
            out.cx(a, b)
        elif name == "rxx":
            a, b = qubits
            (theta,) = inst.gate.params
            emit_single(Gate("h", 1).matrix(), a)
            emit_single(Gate("h", 1).matrix(), b)
            out.cx(a, b)
            out.append(Gate("rz", 1, (float(theta),)), [b])
            out.cx(a, b)
            emit_single(Gate("h", 1).matrix(), a)
            emit_single(Gate("h", 1).matrix(), b)
        elif name == "cry":
            a, b = qubits
            (theta,) = inst.gate.params
            emit_single(Gate("ry", 1, (float(theta) / 2.0,)).matrix(), b)
            out.cx(a, b)
            emit_single(Gate("ry", 1, (-float(theta) / 2.0,)).matrix(), b)
            out.cx(a, b)
        else:
            raise TranspilerError(f"no basis decomposition for gate '{name}'")
    return out
