"""The end-to-end compilation pipeline: layout -> routing -> basis -> schedule.

``transpile`` is the single entry point the rest of the library uses; it takes
a logical circuit with bound parameters and a device model and produces a
:class:`~repro.transpiler.scheduling.ScheduledCircuit` ready for noisy
simulation and for mitigation passes.  The intermediate artefacts (layout,
routed circuit) are returned alongside for inspection by tests and analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..backends.device import DeviceModel
from ..circuits.circuit import QuantumCircuit
from ..exceptions import TranspilerError
from .basis import translate_to_basis
from .coupling import CouplingMap
from .idle_windows import IdleWindow, find_idle_windows
from .layout import Layout, noise_aware_layout
from .routing import route_circuit
from .scheduling import ScheduledCircuit, schedule_circuit


@dataclass
class TranspileResult:
    """All artefacts of a compilation run."""

    scheduled: ScheduledCircuit
    routed: QuantumCircuit
    basis_circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    physical_qubits: List[int]
    idle_windows: List[IdleWindow]

    @property
    def cx_depth(self) -> int:
        """Two-qubit depth of the compiled circuit (Table I's "Depth")."""
        return self.basis_circuit.cx_depth()

    @property
    def num_idle_windows(self) -> int:
        """Number of mitigation-targetable idle windows (Table I's "# Win")."""
        return len(self.idle_windows)


def transpile(
    circuit: QuantumCircuit,
    device: DeviceModel,
    physical_qubits: Optional[Sequence[int]] = None,
    scheduling_policy: str = "alap",
    min_window_ns: Optional[float] = None,
) -> TranspileResult:
    """Compile a logical circuit for a device.

    Parameters
    ----------
    circuit:
        The logical circuit; all parameters must be bound.
    device:
        Target device model.
    physical_qubits:
        Optional explicit choice of physical qubits (noise-aware selection by
        default).
    scheduling_policy:
        ``"alap"`` (the paper's baseline) or ``"asap"``.
    min_window_ns:
        Minimum idle-window duration to report (defaults to two single-qubit
        gate durations).
    """
    if circuit.parameters:
        raise TranspilerError("bind all circuit parameters before transpiling")

    coupling = CouplingMap.from_device(device)
    initial_layout, active = noise_aware_layout(circuit, device, physical_qubits)
    routed, final_layout = route_circuit(circuit, coupling, initial_layout, active)
    basis_circuit = translate_to_basis(routed)
    scheduled = schedule_circuit(
        basis_circuit,
        device,
        physical_qubits=active,
        policy=scheduling_policy,
        name=f"{circuit.name}_scheduled",
    )
    windows = find_idle_windows(scheduled, min_duration_ns=min_window_ns)
    return TranspileResult(
        scheduled=scheduled,
        routed=routed,
        basis_circuit=basis_circuit,
        initial_layout=initial_layout,
        final_layout=final_layout,
        physical_qubits=list(active),
        idle_windows=windows,
    )
