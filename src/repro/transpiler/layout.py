"""Initial layout selection (noise-aware mapping of virtual to physical qubits).

The paper's baseline compilation uses noise-aware mapping [Murali et al.]:
pick the connected set of physical qubits with the best aggregate quality
(coherence, readout and CX error), then assign virtual qubits so that heavily
interacting pairs sit on the best CX edges.  We implement a greedy version
that is deterministic and adequate for the <= 6 qubit circuits evaluated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..backends.device import DeviceModel
from ..circuits.circuit import QuantumCircuit
from ..exceptions import TranspilerError
from .coupling import CouplingMap


class Layout:
    """A bijective mapping between virtual circuit qubits and physical qubits."""

    def __init__(self, virtual_to_physical: Dict[int, int]):
        self.v2p: Dict[int, int] = dict(virtual_to_physical)
        self.p2v: Dict[int, int] = {p: v for v, p in self.v2p.items()}
        if len(self.p2v) != len(self.v2p):
            raise TranspilerError("layout is not bijective")

    def physical(self, virtual: int) -> int:
        return self.v2p[virtual]

    def virtual(self, physical: int) -> int:
        return self.p2v[physical]

    def physical_qubits(self) -> List[int]:
        """Physical qubits in virtual-qubit order."""
        return [self.v2p[v] for v in sorted(self.v2p)]

    def swap_physical(self, phys_a: int, phys_b: int) -> None:
        """Update the layout after a SWAP between two physical qubits."""
        va = self.p2v.get(phys_a)
        vb = self.p2v.get(phys_b)
        if va is not None:
            self.v2p[va] = phys_b
        if vb is not None:
            self.v2p[vb] = phys_a
        self.p2v = {p: v for v, p in self.v2p.items()}

    def copy(self) -> "Layout":
        return Layout(dict(self.v2p))

    def __repr__(self):
        return f"Layout({self.v2p})"


def _interaction_weights(circuit: QuantumCircuit) -> Dict[Tuple[int, int], int]:
    """How many two-qubit gates act on each virtual pair."""
    weights: Dict[Tuple[int, int], int] = {}
    for inst in circuit.instructions:
        if len(inst.qubits) == 2:
            key = tuple(sorted(inst.qubits))
            weights[key] = weights.get(key, 0) + 1
    return weights


def select_qubit_subset(device: DeviceModel, size: int) -> List[int]:
    """Greedy selection of a connected, high-quality set of physical qubits.

    Start from the best qubit and repeatedly add the best-quality neighbour of
    the current set until ``size`` qubits are selected.
    """
    if size > device.num_qubits:
        raise TranspilerError(
            f"circuit needs {size} qubits but {device.name} has only {device.num_qubits}"
        )
    coupling = CouplingMap.from_device(device)
    best_start = max(range(device.num_qubits), key=device.qubit_quality)
    selected = [best_start]
    while len(selected) < size:
        frontier = set()
        for q in selected:
            frontier.update(coupling.neighbors(q))
        frontier -= set(selected)
        if not frontier:
            raise TranspilerError("device connectivity cannot host the requested circuit size")
        selected.append(max(frontier, key=device.qubit_quality))
    return sorted(selected)


def noise_aware_layout(
    circuit: QuantumCircuit,
    device: DeviceModel,
    physical_qubits: Optional[Sequence[int]] = None,
) -> Tuple[Layout, List[int]]:
    """Pick physical qubits and an initial virtual->physical assignment.

    Returns the layout plus the sorted list of physical qubits in use (the
    "active subgraph" over which routing is allowed).
    """
    size = circuit.num_qubits
    if physical_qubits is None:
        physical_qubits = select_qubit_subset(device, size)
    else:
        physical_qubits = sorted(int(q) for q in physical_qubits)
        if len(physical_qubits) != size:
            raise TranspilerError("physical_qubits must match the circuit width")
    coupling = CouplingMap.from_device(device)
    if not coupling.is_connected(physical_qubits):
        raise TranspilerError("the selected physical qubits are not connected")

    # Assign the most-interacting virtual qubit to the physical qubit with the
    # highest degree inside the active subgraph, then grow greedily so that
    # interacting partners land on adjacent physical qubits when possible.
    weights = _interaction_weights(circuit)
    interaction_degree = {v: 0 for v in range(size)}
    for (a, b), w in weights.items():
        interaction_degree[a] += w
        interaction_degree[b] += w

    sub = coupling.graph.subgraph(physical_qubits)
    free_physical = set(physical_qubits)
    assignment: Dict[int, int] = {}

    virtual_order = sorted(range(size), key=lambda v: -interaction_degree[v])
    for v in virtual_order:
        # Prefer a free physical qubit adjacent to already-placed partners.
        partners = [
            assignment[u]
            for (a, b) in weights
            for u in ((b,) if a == v else (a,) if b == v else ())
            if u in assignment
        ]
        candidates = set()
        for p in partners:
            candidates.update(set(sub.neighbors(p)) & free_physical)
        if not candidates:
            candidates = free_physical
        chosen = max(candidates, key=lambda p: (device.qubit_quality(p), -p))
        assignment[v] = chosen
        free_physical.discard(chosen)

    return Layout(assignment), list(physical_qubits)
