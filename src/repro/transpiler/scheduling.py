"""Instruction scheduling: assigning start times to every gate.

The scheduler converts a basis-translated, routed circuit into a
:class:`ScheduledCircuit` — a list of :class:`TimedInstruction` with explicit
start times and durations drawn from the device's calibration.  Two policies
are provided:

* **ALAP** (as late as possible) — the compilation default on IBM's stack and
  the paper's baseline.  Gates are pushed toward the end of the circuit so
  qubits stay in |0> as long as possible before their runtime begins.
* **ASAP** (as soon as possible) — used for comparison and by the
  gate-scheduling mitigation sweep.

Explicit ``delay`` instructions occupy their qubit for the requested duration
during scheduling and are then dropped from the timed instruction list; the
time they reserved shows up as an idle gap, which is exactly how the idle
window analysis and the noisy simulator treat unoccupied time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..backends.device import DeviceModel
from ..circuits.circuit import Instruction, QuantumCircuit
from ..circuits.gates import Gate
from ..exceptions import TranspilerError


@dataclass(frozen=True)
class TimedInstruction:
    """An instruction pinned to a start time (nanoseconds)."""

    instruction: Instruction
    start_ns: float
    duration_ns: float

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns

    @property
    def name(self) -> str:
        return self.instruction.name

    @property
    def qubits(self) -> Tuple[int, ...]:
        return self.instruction.qubits

    def shifted(self, new_start_ns: float) -> "TimedInstruction":
        return replace(self, start_ns=float(new_start_ns))

    def __repr__(self):
        return f"{self.name}{list(self.qubits)}@[{self.start_ns:.1f}, {self.end_ns:.1f}]ns"


@dataclass
class ScheduledCircuit:
    """A fully scheduled circuit bound to physical qubits of a device.

    ``physical_qubits[i]`` is the device qubit that circuit position ``i``
    refers to; all noise lookups go through this mapping.
    """

    num_qubits: int
    num_clbits: int
    device: DeviceModel
    physical_qubits: Tuple[int, ...]
    timed_instructions: List[TimedInstruction] = field(default_factory=list)
    name: str = "scheduled"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if len(self.physical_qubits) != self.num_qubits:
            raise TranspilerError("physical_qubits must have one entry per circuit qubit")

    # -- basic queries ------------------------------------------------------
    @property
    def duration_ns(self) -> float:
        ends = [t.end_ns for t in self.timed_instructions if t.name != "barrier"]
        return max(ends) if ends else 0.0

    def sorted_instructions(self) -> List[TimedInstruction]:
        return sorted(self.timed_instructions, key=lambda t: (t.start_ns, t.name == "measure"))

    def instructions_on(self, position: int) -> List[TimedInstruction]:
        return [t for t in self.sorted_instructions() if position in t.qubits]

    def physical_qubit(self, position: int) -> int:
        return self.physical_qubits[position]

    def count_ops(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for timed in self.timed_instructions:
            counts[timed.name] = counts.get(timed.name, 0) + 1
        return counts

    def qubit_runtime(self, position: int) -> Tuple[float, float]:
        """The paper's "runtime" of a qubit: first gate start to measurement start.

        Falls back to the circuit end when the qubit is never measured.
        """
        ops = [t for t in self.instructions_on(position) if t.name != "barrier"]
        if not ops:
            return (0.0, 0.0)
        start = min(t.start_ns for t in ops)
        measures = [t.start_ns for t in ops if t.name == "measure"]
        end = min(measures) if measures else max(t.end_ns for t in ops)
        return (start, end)

    # -- mutation used by mitigation passes -----------------------------------
    def copy(self) -> "ScheduledCircuit":
        return ScheduledCircuit(
            num_qubits=self.num_qubits,
            num_clbits=self.num_clbits,
            device=self.device,
            physical_qubits=self.physical_qubits,
            timed_instructions=list(self.timed_instructions),
            name=self.name,
            metadata=dict(self.metadata),
        )

    def insert(self, gate: Gate, position: int, start_ns: float, duration_ns: Optional[float] = None) -> None:
        """Insert a gate at an absolute start time (used by DD insertion)."""
        if duration_ns is None:
            duration_ns = self.device.gate_duration(gate.name, [self.physical_qubit(position)])
        timed = TimedInstruction(Instruction(gate, (position,)), float(start_ns), float(duration_ns))
        self.timed_instructions.append(timed)

    def remove(self, timed: TimedInstruction) -> None:
        self.timed_instructions.remove(timed)

    def replace(self, old: TimedInstruction, new: TimedInstruction) -> None:
        index = self.timed_instructions.index(old)
        self.timed_instructions[index] = new

    def validate_no_overlap(self, tolerance_ns: float = 1e-6) -> bool:
        """Check that no two instructions overlap on the same qubit."""
        per_qubit: Dict[int, List[Tuple[float, float]]] = {}
        for timed in self.timed_instructions:
            if timed.name in ("barrier",):
                continue
            for q in timed.qubits:
                per_qubit.setdefault(q, []).append((timed.start_ns, timed.end_ns))
        for intervals in per_qubit.values():
            intervals.sort()
            for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
                if s2 < e1 - tolerance_ns:
                    return False
        return True

    def measured_positions(self) -> List[Tuple[int, int]]:
        """(position, clbit) pairs for every measurement."""
        return [
            (t.qubits[0], t.instruction.clbits[0])
            for t in self.sorted_instructions()
            if t.name == "measure"
        ]

    def __repr__(self):
        return (
            f"ScheduledCircuit({self.name}, qubits={self.num_qubits}, "
            f"duration={self.duration_ns:.0f}ns, ops={len(self.timed_instructions)})"
        )


def _instruction_duration(
    inst: Instruction, device: DeviceModel, physical_qubits: Sequence[int]
) -> float:
    if inst.name == "delay":
        return float(inst.gate.params[0])
    if inst.name == "barrier":
        return 0.0
    try:
        physical = [physical_qubits[q] for q in inst.qubits]
    except IndexError:
        # An explicit physical_qubits list shorter than the circuit width
        # must fail as a typed error, not a bare IndexError.
        raise TranspilerError(
            f"instruction '{inst.name}' on qubits {list(inst.qubits)} is outside "
            f"the {len(physical_qubits)}-entry physical_qubits mapping"
        ) from None
    return device.gate_duration(inst.name, physical)


def schedule_circuit(
    circuit: QuantumCircuit,
    device: DeviceModel,
    physical_qubits: Optional[Sequence[int]] = None,
    policy: str = "alap",
    name: Optional[str] = None,
) -> ScheduledCircuit:
    """Assign start times to every instruction of ``circuit``.

    ``physical_qubits`` maps circuit positions onto device qubits (identity by
    default, which requires the circuit width to not exceed the device size).
    """
    if policy not in ("alap", "asap"):
        raise TranspilerError(f"unknown scheduling policy '{policy}'")
    if physical_qubits is None:
        if circuit.num_qubits > device.num_qubits:
            raise TranspilerError("circuit is wider than the device")
        physical_qubits = tuple(range(circuit.num_qubits))
    else:
        physical_qubits = tuple(int(q) for q in physical_qubits)

    durations = [
        _instruction_duration(inst, device, physical_qubits) for inst in circuit.instructions
    ]

    # Forward (ASAP) pass.
    available = [0.0] * circuit.num_qubits
    asap_start: List[float] = []
    for inst, duration in zip(circuit.instructions, durations):
        qubits = inst.qubits if inst.qubits else tuple(range(circuit.num_qubits))
        start = max(available[q] for q in qubits)
        asap_start.append(start)
        for q in qubits:
            available[q] = start + duration
    total = max(available) if available else 0.0

    if policy == "asap":
        starts = asap_start
    else:
        # Backward (ALAP) pass: latest feasible start keeping the ASAP makespan.
        latest_free = [total] * circuit.num_qubits
        alap_start = [0.0] * len(circuit.instructions)
        for index in range(len(circuit.instructions) - 1, -1, -1):
            inst = circuit.instructions[index]
            duration = durations[index]
            qubits = inst.qubits if inst.qubits else tuple(range(circuit.num_qubits))
            end = min(latest_free[q] for q in qubits)
            start = end - duration
            if start < -1e-9:
                raise TranspilerError("ALAP scheduling produced a negative start time")
            alap_start[index] = max(start, 0.0)
            for q in qubits:
                latest_free[q] = alap_start[index]
        starts = alap_start

    timed: List[TimedInstruction] = []
    for inst, start, duration in zip(circuit.instructions, starts, durations):
        if inst.name in ("delay", "barrier"):
            # Delays only reserve time; barriers only order instructions.
            continue
        timed.append(TimedInstruction(inst, float(start), float(duration)))
    timed.sort(key=lambda t: (t.start_ns, t.name == "measure"))

    return ScheduledCircuit(
        num_qubits=circuit.num_qubits,
        num_clbits=circuit.num_clbits,
        device=device,
        physical_qubits=physical_qubits,
        timed_instructions=timed,
        name=name or f"{circuit.name}_{policy}",
        metadata=dict(circuit.metadata),
    )
