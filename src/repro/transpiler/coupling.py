"""Coupling-map utilities built on :mod:`networkx`."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..exceptions import TranspilerError


class CouplingMap:
    """Undirected connectivity graph of a device's physical qubits."""

    def __init__(self, edges: Iterable[Tuple[int, int]], num_qubits: Optional[int] = None):
        self.graph = nx.Graph()
        edges = [(int(a), int(b)) for a, b in edges]
        if num_qubits is None:
            num_qubits = max((max(a, b) for a, b in edges), default=-1) + 1
        self.num_qubits = int(num_qubits)
        self.graph.add_nodes_from(range(self.num_qubits))
        for a, b in edges:
            if a == b or not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits):
                raise TranspilerError(f"invalid coupling edge ({a}, {b})")
            self.graph.add_edge(a, b)

    @classmethod
    def from_device(cls, device) -> "CouplingMap":
        return cls(device.coupling_edges, num_qubits=device.num_qubits)

    # -- queries -------------------------------------------------------------
    @property
    def edges(self) -> List[Tuple[int, int]]:
        return [(min(a, b), max(a, b)) for a, b in self.graph.edges()]

    def are_adjacent(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def neighbors(self, qubit: int) -> List[int]:
        return sorted(self.graph.neighbors(qubit))

    def distance(self, a: int, b: int) -> int:
        try:
            return nx.shortest_path_length(self.graph, a, b)
        except nx.NetworkXNoPath:
            raise TranspilerError(f"qubits {a} and {b} are not connected") from None

    def shortest_path(self, a: int, b: int) -> List[int]:
        try:
            return nx.shortest_path(self.graph, a, b)
        except nx.NetworkXNoPath:
            raise TranspilerError(f"qubits {a} and {b} are not connected") from None

    def is_connected(self, qubits: Optional[Sequence[int]] = None) -> bool:
        graph = self.graph if qubits is None else self.graph.subgraph(qubits)
        if graph.number_of_nodes() == 0:
            return False
        return nx.is_connected(graph)

    def subgraph(self, qubits: Sequence[int]) -> "CouplingMap":
        """Coupling map induced on a subset of physical qubits, re-indexed 0..k-1.

        The i-th entry of ``qubits`` becomes node ``i`` of the returned map.
        """
        index = {q: i for i, q in enumerate(qubits)}
        edges = [
            (index[a], index[b])
            for a, b in self.graph.edges()
            if a in index and b in index
        ]
        return CouplingMap(edges, num_qubits=len(qubits))

    def connected_subsets(self, size: int) -> List[Tuple[int, ...]]:
        """All connected subsets of physical qubits of the given size.

        Only used on small devices / sizes (the evaluation needs at most 6 of
        27 qubits); enumeration is breadth-limited to keep it tractable.
        """
        if size <= 0 or size > self.num_qubits:
            raise TranspilerError("invalid subset size")
        found = set()
        frontier = {frozenset((q,)) for q in self.graph.nodes()}
        for _ in range(size - 1):
            next_frontier = set()
            for subset in frontier:
                for node in subset:
                    for neighbor in self.graph.neighbors(node):
                        if neighbor not in subset:
                            next_frontier.add(subset | {neighbor})
            frontier = next_frontier
        for subset in frontier:
            found.add(tuple(sorted(subset)))
        return sorted(found)

    def __repr__(self):
        return f"CouplingMap({self.num_qubits} qubits, {self.graph.number_of_edges()} edges)"
