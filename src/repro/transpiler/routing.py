"""SWAP-insertion routing for limited-connectivity devices.

The paper notes that "limited connectivity in near-term devices requires
routing networks for qubit communication in mapped circuits" and that those
routing networks are the main source of the idle windows VAQEM exploits.  We
implement a deterministic greedy router: whenever a two-qubit gate acts on
physically non-adjacent qubits, SWAP one operand along the shortest path in
the active subgraph until they are adjacent, updating the layout as we go.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuits.circuit import Instruction, QuantumCircuit
from ..exceptions import TranspilerError
from .coupling import CouplingMap
from .layout import Layout


def route_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    layout: Layout,
    physical_qubits: Sequence[int],
) -> Tuple[QuantumCircuit, Layout]:
    """Insert SWAPs so every two-qubit gate acts on coupled physical qubits.

    The returned circuit is expressed over *positions*: index ``i`` refers to
    ``physical_qubits[i]``.  The returned layout is the final virtual->physical
    mapping after all routing SWAPs (needed to attribute measurements).
    """
    physical_qubits = list(physical_qubits)
    position = {phys: idx for idx, phys in enumerate(physical_qubits)}
    if set(layout.physical_qubits()) - set(physical_qubits):
        raise TranspilerError("layout uses physical qubits outside the active subgraph")
    active = coupling.subgraph(physical_qubits)
    working = layout.copy()

    routed = QuantumCircuit(len(physical_qubits), circuit.num_clbits, name=f"{circuit.name}_routed")
    routed.metadata = dict(circuit.metadata)

    def pos_of_virtual(v: int) -> int:
        return position[working.physical(v)]

    for inst in circuit.instructions:
        name = inst.name
        if name == "barrier":
            routed.barrier(*[pos_of_virtual(q) for q in inst.qubits])
            continue
        if name == "measure":
            routed.append(inst.gate, [pos_of_virtual(inst.qubits[0])], inst.clbits)
            continue
        if len(inst.qubits) == 1:
            routed.append(inst.gate, [pos_of_virtual(inst.qubits[0])], inst.clbits)
            continue
        if len(inst.qubits) != 2:
            raise TranspilerError(f"cannot route gate '{name}' of arity {len(inst.qubits)}")

        va, vb = inst.qubits
        pa, pb = pos_of_virtual(va), pos_of_virtual(vb)
        if not active.are_adjacent(pa, pb):
            path = active.shortest_path(pa, pb)
            # Swap the first operand along the path until adjacent to the target.
            for step in range(len(path) - 2):
                here, there = path[step], path[step + 1]
                routed.swap(here, there)
                working.swap_physical(physical_qubits[here], physical_qubits[there])
            pa, pb = pos_of_virtual(va), pos_of_virtual(vb)
            if not active.are_adjacent(pa, pb):
                raise TranspilerError("routing failed to make the operands adjacent")
        routed.append(inst.gate, [pa, pb], inst.clbits)

    return routed, working


def count_added_swaps(original: QuantumCircuit, routed: QuantumCircuit) -> int:
    """Number of SWAP gates the router inserted."""
    return routed.count_ops().get("swap", 0) - original.count_ops().get("swap", 0)
