"""Fleet-wide content-addressed result store.

The engine already dedupes *within* one process by content fingerprint; this
store lifts the same idea to the service tier, across tenants: two tenants
submitting the identical schedule get one engine execution and two
bit-identical responses.

The key digests everything a served payload is a function of:

* the program's full content fingerprint — the last entry of the engine's
  shard chain, which (for the density engines) is already salted with the
  noise key: device calibration, noise-model flags, canonicalisation and
  simulation kernel.  Two engines configured differently never share a line;
* the operation (``run`` vs ``expectation``) and its knobs (shots,
  observable fingerprint);
* the engine seed — sampled expectation values are functions of
  ``(engine seed, content)`` per the seeding contract, so the seed is part
  of the content.

Because every stored payload is a pure function of its key (see the
determinism argument in ``docs/service.md``), serving a hit is bit-identical
to re-executing — which the parity tests pin on both kernels.

Engines whose ``_shard_chain`` hook is the identity fallback (keys derived
from ``id()``) are *not* content-addressable: ``id`` reuse after garbage
collection could alias two different programs onto one key.  The service
detects that and disables the store rather than risking cross-tenant result
corruption.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Dict, Optional

_SEP = b"\x1f"


def store_key(*parts: str) -> str:
    """Hex digest of the ordered key parts (BLAKE2b, like the engine's)."""
    hasher = hashlib.blake2b(digest_size=16)
    for part in parts:
        hasher.update(part.encode("utf-8"))
        hasher.update(_SEP)
    return hasher.hexdigest()


class ResultStore:
    """A bounded LRU mapping of content keys to serialized result payloads.

    Values are the JSON-safe response dicts the protocol layer builds —
    storing the serialized form (not engine objects) keeps hits cheap and
    guarantees a hit's bytes match the miss that populated it.
    """

    def __init__(self, max_entries: int = 4096):
        self._max_entries = max(1, int(max_entries))
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: Optional[str]) -> Optional[Dict[str, Any]]:
        """The stored payload, counting the lookup (``None`` key: always miss)."""
        if key is not None:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
        self.misses += 1
        return None

    def put(self, key: Optional[str], payload: Dict[str, Any]) -> None:
        if key is None:
            return
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    def as_dict(self) -> Dict[str, float]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


__all__ = ["ResultStore", "store_key"]
