"""Synchronous client for the engine service.

:class:`ServiceClient` speaks the v1 protocol over plain
:mod:`http.client` — one connection per request (the server answers with
``Connection: close``), no third-party dependency.  Server-side rejections
come back as the same typed exceptions an in-process caller would see
(:mod:`repro.exceptions`), reconstructed from the error payload's ``class``
field with the HTTP status attached as ``error.status``.

Programs may be passed as parsed wire-format dicts, JSON text, or the
in-memory objects (:class:`~repro.ir.QuantumCircuit`,
:class:`~repro.ir.ScheduledCircuit`) — the latter are serialized through the
frontend's own writers, so what goes over the wire is exactly what
:func:`~repro.frontend.ingest_json` round-trips.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..exceptions import ServiceError, ServiceProtocolError
from .protocol import SERVICE_PROTOCOL, raise_for_error


def _as_document(program: Any) -> Dict[str, Any]:
    """Normalize any accepted program form into a wire-format dict."""
    if isinstance(program, dict):
        return program
    if isinstance(program, (str, bytes)):
        try:
            parsed = json.loads(program)
        except ValueError as error:
            raise ServiceProtocolError(f"program text is not valid JSON: {error}") from error
        if not isinstance(parsed, dict):
            raise ServiceProtocolError(
                f"program text must encode a JSON object, got {type(parsed).__name__}"
            )
        return parsed
    if hasattr(program, "timed_instructions"):  # ScheduledCircuit
        from ..frontend import schedule_to_json

        return json.loads(schedule_to_json(program))
    if hasattr(program, "instructions") and hasattr(program, "num_qubits"):  # QuantumCircuit
        from ..frontend import circuit_to_json

        return json.loads(circuit_to_json(program))
    raise ServiceProtocolError(
        f"cannot serialize a {type(program).__name__} as a program document"
    )


def _as_terms(observable: Any) -> List[List[Union[str, float]]]:
    """Normalize a PauliSum or ``[(label, coeff), ...]`` into wire terms."""
    if hasattr(observable, "terms"):
        pairs: Iterable = observable.terms()
    else:
        pairs = observable
    terms = []
    for pair in pairs:
        label, coefficient = pair
        terms.append([str(label), float(coefficient)])
    if not terms:
        raise ServiceProtocolError("observable: expected at least one term")
    return terms


class ServiceClient:
    """A tenant's handle on one engine server."""

    def __init__(self, host: str, port: int, tenant: str, timeout: float = 120.0):
        self.host = host
        self.port = int(port)
        self.tenant = tenant
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: Optional[bytes] = None) -> Tuple[int, Any]:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"} if body is not None else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
        finally:
            connection.close()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError as error:
            raise ServiceError(
                f"service returned HTTP {status} with an unparseable body: {error}"
            ) from error
        if status >= 400:
            raise_for_error(status, payload)
        return status, payload

    # ------------------------------------------------------------------
    def submit(self, programs: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Submit pre-built program entries; returns the per-program results.

        Each entry is a protocol-level object: ``{"op", "program", "shots",
        "observable"}`` with ``op`` defaulting to ``"run"``.  Use :meth:`run`
        / :meth:`expectation` for the common single-program cases.
        """
        envelope = {
            "protocol": SERVICE_PROTOCOL,
            "tenant": self.tenant,
            "programs": programs,
        }
        _, payload = self._request(
            "POST", "/v1/submit", json.dumps(envelope).encode("utf-8")
        )
        results = payload.get("results")
        if not isinstance(results, list) or len(results) != len(programs):
            raise ServiceError(
                f"service answered with {results!r} for {len(programs)} programs"
            )
        return results

    def run(self, program: Any, shots: Optional[int] = None) -> Dict[str, Any]:
        """Execute one program; returns its serialized result payload."""
        entry: Dict[str, Any] = {"op": "run", "program": _as_document(program)}
        if shots is not None:
            entry["shots"] = shots
        return self.submit([entry])[0]

    def expectation(self, program: Any, observable: Any, shots: Optional[int] = None) -> float:
        """Expectation value of ``observable`` after ``program``."""
        entry: Dict[str, Any] = {
            "op": "expectation",
            "program": _as_document(program),
            "observable": _as_terms(observable),
        }
        if shots is not None:
            entry["shots"] = shots
        return float(self.submit([entry])[0]["value"])

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics")[1]

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")[1]

    def close(self) -> None:
        """Connections are per-request; kept for interface symmetry."""


__all__ = ["ServiceClient"]
