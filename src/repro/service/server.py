"""The persistent multi-tenant engine server.

Two layers (full design in ``docs/service.md``):

:class:`EngineService`
    Transport-independent request handling on an asyncio event loop:
    envelope validation, admission control, per-tenant ingestion through the
    frontend's trust boundary, fleet-store dedupe, submission onto the
    engine's :class:`~repro.engine.scheduler.BatchScheduler` with
    ``submitter=tenant`` (so the scheduler's round-robin fairness *is* the
    cross-tenant fairness), and result serialization.

:class:`EngineServer`
    A hand-rolled HTTP/1.1 façade over asyncio streams, running the service
    loop on a dedicated thread.  Hand-rolled deliberately: the CI container
    installs no HTTP framework, and the protocol surface (three endpoints,
    ``Connection: close``) is small enough that owning the framing is
    cheaper than gating a dependency.

Threading model
---------------
All service state (admission buckets, metrics, the result store) is touched
only on the event-loop thread.  Engine futures resolve on scheduler worker
threads; :func:`_bridge` marshals each resolution back onto the loop with
``call_soon_threadsafe``, so no lock guards any service structure.  The
blocking edge of ``submit_batch`` (scheduler backpressure) runs inside the
loop's default executor — the event loop itself never blocks, and the
admission controller's queue-depth gate bounds how many executor threads can
be parked there.

Degradation contract
--------------------
Every failure a tenant can cause — malformed bytes, hostile documents, rate
or queue exhaustion, disconnects mid-request — produces a typed error
response (or a counted aborted connection) for *that tenant only*; the
server never crashes, never hangs, and never lets one tenant's failure
corrupt another's results.  ``tests/test_service_faults.py`` injects each of
these and then re-checks bit-parity against a clean engine.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..engine.base import ExecutionEngine
from ..engine.fingerprint import observable_fingerprint
from ..exceptions import (
    IngestError,
    QueueDepthError,
    RateLimitError,
    ServiceError,
    ServiceProtocolError,
    ServiceShutdownError,
)
from ..frontend import ingest_json
from .admission import AdmissionController, ServiceConfig
from .metrics import ServiceMetrics
from .protocol import (
    SERVICE_PROTOCOL,
    ProgramRequest,
    build_observable,
    error_payload,
    error_status,
    parse_envelope,
    serialize_expectation_result,
    serialize_run_result,
    success_payload,
)
from .store import ResultStore, store_key

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Header-section byte bound; a client streaming junk instead of headers is
#: cut off here rather than buffered without limit.
_MAX_HEADER_BYTES = 32768


class _Disconnect(Exception):
    """Internal: the client went away mid-request (no response possible)."""


def _bridge(loop: asyncio.AbstractEventLoop, engine_future) -> asyncio.Future:
    """An asyncio future resolving with an :class:`EngineFuture`'s outcome.

    The engine resolves its futures on scheduler worker threads;
    ``call_soon_threadsafe`` marshals the outcome onto the service loop so
    response building (and store/metrics mutation) stays single-threaded.
    """
    aio = loop.create_future()

    def _resolve(value, error):
        if aio.cancelled():
            return
        if error is not None:
            aio.set_exception(error)
        else:
            aio.set_result(value)

    def _done(resolved):
        try:
            value = resolved.result(timeout=0)
        except BaseException as error:  # noqa: BLE001 - forwarded, not handled
            outcome = (None, error)
        else:
            outcome = (value, None)
        try:
            loop.call_soon_threadsafe(_resolve, *outcome)
        except RuntimeError:
            pass  # loop already closed during shutdown; nothing to deliver to

    engine_future.add_done_callback(_done)
    return aio


class EngineService:
    """Multi-tenant request handling around one execution engine.

    The service borrows the engine (it does not own or close it) and runs
    entirely on the event loop that first serves a request — in practice the
    :class:`EngineServer`'s loop thread.
    """

    def __init__(self, engine: ExecutionEngine, config: Optional[ServiceConfig] = None):
        self.engine = engine
        self.config = config or ServiceConfig()
        self.admission = AdmissionController(self.config, engine.max_pending_batches)
        self.store = ResultStore(self.config.store_entries)
        self.metrics = ServiceMetrics(self.config.latency_samples)
        self._closing = False
        self._started = self.config.clock()
        #: Content addressing requires a real per-content shard chain; the
        #: base-class fallback keys on ``id()``, which garbage collection can
        #: reuse — aliasing two different programs onto one store line.  With
        #: such an engine the store stays off (every lookup misses).
        self._content_addressable = (
            type(engine)._shard_chain is not ExecutionEngine._shard_chain
        )

    # ------------------------------------------------------------------
    @property
    def closing(self) -> bool:
        return self._closing

    def begin_shutdown(self) -> None:
        """Stop admitting new submissions; in-flight requests drain."""
        self._closing = True

    # ------------------------------------------------------------------
    async def handle(self, method: str, path: str, body: bytes) -> Tuple[int, Dict[str, Any]]:
        """Route one request; always returns ``(status, payload)``."""
        if path == "/v1/submit":
            if method != "POST":
                return 405, error_payload(ServiceProtocolError("submit requires POST"))
            return await self._submit(body)
        if path == "/v1/metrics":
            if method != "GET":
                return 405, error_payload(ServiceProtocolError("metrics requires GET"))
            return 200, self.metrics_payload()
        if path == "/v1/health":
            if method != "GET":
                return 405, error_payload(ServiceProtocolError("health requires GET"))
            status = "closing" if self._closing else "ok"
            return 200, {"protocol": SERVICE_PROTOCOL, "status": status}
        return 404, error_payload(ServiceProtocolError(f"unknown path {path!r}"))

    # ------------------------------------------------------------------
    async def _submit(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        self.metrics.requests += 1
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            self.metrics.protocol_errors += 1
            return 400, error_payload(
                ServiceProtocolError(f"request body is not valid JSON: {error}")
            )
        try:
            tenant, programs = parse_envelope(parsed)
        except ServiceProtocolError as error:
            self.metrics.protocol_errors += 1
            return 400, error_payload(error)

        tenant_metrics = self.metrics.tenant(tenant)
        tenant_metrics.submitted += 1
        policy = self.config.policy_for(tenant)
        if len(programs) > policy.max_programs_per_request:
            tenant_metrics.rejected["invalid"] += 1
            return 400, error_payload(
                ServiceProtocolError(
                    f"programs: {len(programs)} entries exceed the per-request "
                    f"bound ({policy.max_programs_per_request})"
                )
            )
        if self._closing:
            tenant_metrics.rejected["shutdown"] += 1
            return 503, error_payload(
                ServiceShutdownError(
                    "server is shutting down",
                    retry_after=self.config.queue_retry_after,
                )
            )
        try:
            self.admission.admit(tenant)
        except RateLimitError as error:
            tenant_metrics.rejected["rate_limit"] += 1
            return 429, error_payload(error)
        except QueueDepthError as error:
            tenant_metrics.rejected["queue_depth"] += 1
            return 503, error_payload(error)

        started = self.config.clock()
        try:
            status, payload = await self._execute(tenant, policy, programs, tenant_metrics)
        finally:
            self.admission.release(tenant)
        if status == 200:
            tenant_metrics.completed += 1
            tenant_metrics.record_latency(self.config.clock() - started)
        return status, payload

    async def _execute(
        self, tenant: str, policy, programs: List[ProgramRequest], tenant_metrics
    ) -> Tuple[int, Dict[str, Any]]:
        """Ingest, dedupe, submit and serialize one admitted request.

        All-or-nothing per request: the first failing program fails the
        request with its index (partial batches would make bit-parity with a
        direct ``run_batch`` ambiguous).
        """
        engine = self.engine
        prepared = []  # (request, engine payload, observable, shots, store key)
        for index, request in enumerate(programs):
            try:
                program = ingest_json(request.document, limits=policy.limits)
                payload = program.engine_payload(engine)
                observable = (
                    build_observable(request.observable_terms)
                    if request.op == "expectation"
                    else None
                )
                shots = request.shots if request.shots is not None else program.shots
                if shots is not None:
                    policy.limits.check_shots(shots)
            except IngestError as error:
                tenant_metrics.rejected["invalid"] += 1
                return 400, error_payload(error, program_index=index)
            prepared.append(
                (request, payload, observable, shots, self._store_key(request.op, payload, observable, shots))
            )

        tenant_metrics.programs += len(prepared)
        results: List[Optional[Dict[str, Any]]] = [None] * len(prepared)
        misses: List[int] = []
        for index, (request, payload, observable, shots, key) in enumerate(prepared):
            stored = self.store.get(key)
            if stored is not None:
                served = dict(stored)
                served["store"] = "hit"
                results[index] = served
                tenant_metrics.dedupe_hits += 1
            else:
                misses.append(index)
                tenant_metrics.store_misses += 1

        if misses:
            loop = asyncio.get_running_loop()

            def submit_all():
                """Queue every miss on the scheduler (may block on the
                engine's backpressure — which is why this runs in the
                executor, never on the event loop)."""
                futures = {}
                run_indices = [i for i in misses if prepared[i][0].op == "run"]
                if run_indices:
                    batch = engine.submit_batch(
                        [prepared[i][1] for i in run_indices],
                        max_workers=self.config.max_workers,
                        parallelism=self.config.parallelism,
                        submitter=tenant,
                    )
                    futures.update(zip(run_indices, batch))
                # Expectation kwargs are per batch, so group by them.
                groups: Dict[Tuple[str, Optional[int]], List[int]] = {}
                for i in misses:
                    if prepared[i][0].op == "expectation":
                        group = (observable_fingerprint(prepared[i][2]), prepared[i][3])
                        groups.setdefault(group, []).append(i)
                for (_, shots), indices in groups.items():
                    batch = engine.submit_expectation_batch(
                        [prepared[i][1] for i in indices],
                        prepared[indices[0]][2],
                        shots=shots,
                        max_workers=self.config.max_workers,
                        parallelism=self.config.parallelism,
                        submitter=tenant,
                    )
                    futures.update(zip(indices, batch))
                return futures

            try:
                futures = await loop.run_in_executor(None, submit_all)
            except BaseException as error:  # noqa: BLE001 - typed response below
                tenant_metrics.rejected["execution"] += 1
                return error_status(error), error_payload(error, program_index=misses[0])
            bridged = {index: _bridge(loop, future) for index, future in futures.items()}
            outcomes = await asyncio.gather(*bridged.values(), return_exceptions=True)
            values = dict(zip(bridged.keys(), outcomes))
            for index in misses:
                outcome = values[index]
                if isinstance(outcome, BaseException):
                    tenant_metrics.rejected["execution"] += 1
                    return error_status(outcome), error_payload(outcome, program_index=index)
            for index in misses:
                request = prepared[index][0]
                if request.op == "run":
                    serialized = serialize_run_result(values[index])
                else:
                    serialized = serialize_expectation_result(values[index])
                self.store.put(prepared[index][4], serialized)
                served = dict(serialized)
                served["store"] = "miss"
                results[index] = served

        return 200, success_payload(tenant, results)

    def _store_key(self, op: str, payload, observable, shots) -> Optional[str]:
        """The fleet-store key of one program, or ``None`` when uncacheable.

        Sampled expectation values on an *unseeded* engine draw fresh OS
        entropy per call (no content determines them), so they are never
        stored — mirroring the engine's own ``_expectation_cacheable`` rule.
        """
        if not self._content_addressable:
            return None
        if op == "expectation" and shots is not None and self.engine.seed is None:
            return None
        fingerprint = self.engine._shard_chain(op, payload)[-1]
        parts = [fingerprint, op, repr(self.engine.seed)]
        if op == "expectation":
            parts.append(observable_fingerprint(observable))
            parts.append(repr(shots))
        return store_key(*parts)

    # ------------------------------------------------------------------
    def metrics_payload(self) -> Dict[str, Any]:
        return {
            "protocol": SERVICE_PROTOCOL,
            "status": "closing" if self._closing else "ok",
            "uptime_seconds": self.config.clock() - self._started,
            "tenants": self.metrics.snapshot(self.admission.tenant_in_flight),
            "fleet": {
                "requests": self.metrics.requests,
                "in_flight": self.admission.in_flight,
                "disconnects": self.metrics.disconnects,
                "protocol_errors": self.metrics.protocol_errors,
                "store": self.store.as_dict(),
                "engine_stats": self.engine.stats.as_dict(),
            },
        }


class EngineServer:
    """HTTP/1.1 façade over an :class:`EngineService`, on its own thread.

    ``port=0`` (the default) binds an ephemeral port, published as
    :attr:`port` once :meth:`start` returns.  Usable as a context manager::

        with EngineServer(engine) as server:
            client = ServiceClient(server.host, server.port, tenant="alice")
            ...

    :meth:`close` degrades gracefully: new submissions are rejected with a
    typed shutdown error while requests already executing drain and answer;
    only after the drain (or its timeout) does the loop stop.  The engine is
    closed afterwards only when constructed with ``own_engine=True``.
    """

    def __init__(
        self,
        engine: ExecutionEngine,
        config: Optional[ServiceConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        own_engine: bool = False,
        read_timeout: float = 30.0,
        drain_timeout: float = 60.0,
    ):
        self.service = EngineService(engine, config)
        self.host = host
        self.port: Optional[int] = None
        self._requested_port = port
        self._own_engine = own_engine
        self._read_timeout = read_timeout
        self._drain_timeout = drain_timeout
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._connections: set = set()
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._closed = False

    # ------------------------------------------------------------------
    def start(self) -> "EngineServer":
        if self._thread is not None:
            raise ServiceError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="engine-server", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise ServiceError(f"server failed to start: {self._startup_error}")
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        except BaseException as error:  # noqa: BLE001 - published to start()
            self._startup_error = error
        finally:
            self._ready.set()  # in case startup itself failed
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.run_until_complete(loop.shutdown_default_executor())
            except Exception:
                pass
            loop.close()

    async def _serve(self) -> None:
        self._shutdown = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection, self.host, self._requested_port
            )
        except OSError as error:
            self._startup_error = error
            self._ready.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._shutdown.wait()
            server.close()
            await server.wait_closed()
        # Drain in-flight requests: their engine batches resolve (the engine
        # is still open here), their responses go out, then the loop ends.
        pending = {task for task in self._connections if not task.done()}
        if pending:
            _, survivors = await asyncio.wait(pending, timeout=self._drain_timeout)
            for task in survivors:
                task.cancel()
            if survivors:
                await asyncio.gather(*survivors, return_exceptions=True)

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            try:
                method, path, length = await asyncio.wait_for(
                    self._read_head(reader), timeout=self._read_timeout
                )
            except (asyncio.TimeoutError, _Disconnect):
                self.service.metrics.disconnects += 1
                return
            except ServiceProtocolError as error:
                self.service.metrics.protocol_errors += 1
                await self._respond(writer, 400, error_payload(error))
                return
            if length > self.service.config.max_body_bytes:
                self.service.metrics.protocol_errors += 1
                await self._respond(
                    writer,
                    413,
                    error_payload(
                        ServiceProtocolError(
                            f"request body of {length} bytes exceeds the "
                            f"{self.service.config.max_body_bytes}-byte bound"
                        )
                    ),
                )
                return
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=self._read_timeout
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError, ConnectionError):
                # Truncated body / disconnect mid-request: nobody to answer.
                self.service.metrics.disconnects += 1
                return
            try:
                status, payload = await self.service.handle(method, path, body)
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 - last-resort typed 500
                status, payload = 500, error_payload(error)
            await self._respond(writer, status, payload)
        except (ConnectionError, asyncio.CancelledError):
            self.service.metrics.disconnects += 1
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_head(self, reader: asyncio.StreamReader) -> Tuple[str, str, int]:
        """Parse the request line and headers; returns (method, path, length)."""
        request_line = await reader.readline()
        if not request_line.endswith(b"\n"):
            # Empty or unterminated: the peer vanished mid-line.
            raise _Disconnect()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ServiceProtocolError(f"malformed request line {request_line!r}")
        method, target = parts[0].upper(), parts[1]
        path = target.split("?", 1)[0]
        headers: Dict[str, str] = {}
        total = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line.endswith(b"\n"):
                raise _Disconnect()
            total += len(line)
            if total > _MAX_HEADER_BYTES:
                raise ServiceProtocolError("header section too large")
            name, separator, value = line.decode("latin-1").partition(":")
            if not separator:
                raise ServiceProtocolError(f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            raise ServiceProtocolError(f"malformed Content-Length {raw_length!r}") from None
        if length < 0:
            raise ServiceProtocolError(f"malformed Content-Length {raw_length!r}")
        return method, path, length

    async def _respond(self, writer: asyncio.StreamWriter, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        headers = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        retry_after = payload.get("error", {}).get("retry_after")
        if retry_after is not None and math.isfinite(retry_after):
            headers.append(f"Retry-After: {max(0, math.ceil(retry_after))}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    def close(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: reject new work, drain in-flight, stop the loop.

        Idempotent.  ``timeout`` caps the thread join (the loop-side drain is
        separately capped by ``drain_timeout``).
        """
        if self._closed or self._thread is None:
            return
        self._closed = True
        loop = self._loop
        if loop is not None and self._shutdown is not None:
            def _begin():
                self.service.begin_shutdown()
                self._shutdown.set()

            try:
                loop.call_soon_threadsafe(_begin)
            except RuntimeError:
                pass  # loop already stopped
        self._thread.join(timeout)
        if self._own_engine:
            self.service.engine.close()

    def __enter__(self) -> "EngineServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["EngineServer", "EngineService"]
