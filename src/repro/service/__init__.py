"""Engine-as-a-service: the multi-tenant server tier.

Serve one :class:`~repro.engine.ExecutionEngine` to many concurrent tenants
over a small JSON/HTTP protocol, with per-tenant admission control, a
fleet-wide content-addressed result store, and a metrics endpoint.  See
``docs/service.md`` for the protocol reference and the determinism argument
behind cross-tenant dedupe.

Typical use::

    from repro.service import EngineServer, ServiceClient

    with EngineServer(engine) as server:
        client = ServiceClient(server.host, server.port, tenant="alice")
        result = client.run(circuit_document)
"""

from .admission import AdmissionController, ServiceConfig, TenantPolicy, TokenBucket
from .client import ServiceClient
from .metrics import REJECTION_KINDS, ServiceMetrics, TenantMetrics
from .protocol import OPERATIONS, SERVICE_PROTOCOL, parse_envelope, raise_for_error
from .server import EngineServer, EngineService
from .store import ResultStore, store_key

__all__ = [
    "AdmissionController",
    "EngineServer",
    "EngineService",
    "OPERATIONS",
    "REJECTION_KINDS",
    "ResultStore",
    "SERVICE_PROTOCOL",
    "ServiceClient",
    "ServiceConfig",
    "ServiceMetrics",
    "TenantMetrics",
    "TenantPolicy",
    "TokenBucket",
    "parse_envelope",
    "raise_for_error",
    "store_key",
]
