"""The v1 service wire protocol: envelopes, result payloads, error payloads.

Requests and responses are JSON over HTTP (see ``docs/service.md`` for the
full reference; ``tests/fixtures/service/`` pins every shape as golden
fixtures).  This module is transport-free — it validates parsed envelopes
and builds response dicts; the HTTP framing lives in
:mod:`repro.service.server`.

Bit-parity over the wire rests on JSON float round-tripping: ``json.dumps``
emits ``repr(float)`` (shortest round-trip form) and ``json.loads`` parses
it back to the identical IEEE-754 double, so a probability vector or an
expectation value survives serving byte-exactly — the same property the
frontend's wire formats already rely on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..exceptions import (
    AdmissionError,
    IngestError,
    ParseError,
    QueueDepthError,
    RateLimitError,
    ResourceLimitError,
    ServiceError,
    ServiceProtocolError,
    ServiceShutdownError,
    ValidationError,
)

#: Version of the service protocol (independent of the program documents'
#: ``repro-circuit``/``repro-schedule`` format version, which rides inside).
SERVICE_PROTOCOL = 1

#: The operations a submitted program may request.
OPERATIONS = ("run", "expectation")

_ENVELOPE_KEYS = frozenset({"protocol", "tenant", "programs"})
_PROGRAM_KEYS = frozenset({"op", "program", "shots", "observable"})

#: HTTP status per rejection class.  Anything not listed (engine-side
#: execution failures, broken worker pools) maps to 500.
_STATUS_BY_CLASS = {
    RateLimitError: 429,
    QueueDepthError: 503,
    ServiceShutdownError: 503,
    ServiceProtocolError: 400,
}


class ProgramRequest:
    """One validated entry of a submission's ``programs`` list."""

    __slots__ = ("op", "document", "shots", "observable_terms")

    def __init__(self, op: str, document: dict, shots: Optional[int], observable_terms):
        self.op = op
        self.document = document
        self.shots = shots
        #: ``[(label, coeff), ...]`` for ``op == "expectation"``, else ``None``.
        self.observable_terms = observable_terms


def parse_envelope(parsed: Any) -> Tuple[str, List[ProgramRequest]]:
    """Validate a submission envelope, returning ``(tenant, programs)``.

    Everything wrong with the envelope itself raises
    :class:`~repro.exceptions.ServiceProtocolError` with a path-precise
    message (program *documents* are validated later, at ingest, under the
    tenant's resource limits).
    """
    if not isinstance(parsed, dict):
        raise ServiceProtocolError(
            f"request body must be a JSON object, got {type(parsed).__name__}"
        )
    unknown = set(parsed) - _ENVELOPE_KEYS
    if unknown:
        raise ServiceProtocolError(f"unknown envelope fields: {sorted(unknown)}")
    protocol = parsed.get("protocol", SERVICE_PROTOCOL)
    if protocol != SERVICE_PROTOCOL:
        raise ServiceProtocolError(
            f"protocol: expected {SERVICE_PROTOCOL}, got {protocol!r}"
        )
    tenant = parsed.get("tenant")
    if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
        raise ServiceProtocolError(
            "tenant: expected a non-empty string of at most 64 characters"
        )
    raw_programs = parsed.get("programs")
    if not isinstance(raw_programs, list) or not raw_programs:
        raise ServiceProtocolError("programs: expected a non-empty list")
    programs = []
    for index, entry in enumerate(raw_programs):
        programs.append(_parse_program(entry, f"programs[{index}]"))
    return tenant, programs


def _parse_program(entry: Any, path: str) -> ProgramRequest:
    if not isinstance(entry, dict):
        raise ServiceProtocolError(f"{path}: expected an object, got {type(entry).__name__}")
    unknown = set(entry) - _PROGRAM_KEYS
    if unknown:
        raise ServiceProtocolError(f"{path}: unknown fields: {sorted(unknown)}")
    op = entry.get("op", "run")
    if op not in OPERATIONS:
        raise ServiceProtocolError(f"{path}.op: expected one of {OPERATIONS}, got {op!r}")
    document = entry.get("program")
    if not isinstance(document, dict):
        raise ServiceProtocolError(
            f"{path}.program: expected a repro-circuit/repro-schedule object"
        )
    shots = entry.get("shots")
    if shots is not None and (isinstance(shots, bool) or not isinstance(shots, int) or shots < 1):
        raise ServiceProtocolError(f"{path}.shots: expected a positive integer or null")
    observable_terms = None
    if op == "expectation":
        observable_terms = _parse_observable(entry.get("observable"), f"{path}.observable")
    elif "observable" in entry:
        raise ServiceProtocolError(f"{path}.observable: only valid with op 'expectation'")
    return ProgramRequest(op, document, shots, observable_terms)


def _parse_observable(raw: Any, path: str) -> List[Tuple[str, float]]:
    """``[["ZZ", 0.5], ...]`` into validated ``(label, coeff)`` pairs."""
    if not isinstance(raw, list) or not raw:
        raise ServiceProtocolError(f"{path}: expected a non-empty list of [label, coefficient]")
    terms = []
    for index, pair in enumerate(raw):
        if (
            not isinstance(pair, (list, tuple))
            or len(pair) != 2
            or not isinstance(pair[0], str)
            or isinstance(pair[1], bool)
            or not isinstance(pair[1], (int, float))
        ):
            raise ServiceProtocolError(f"{path}[{index}]: expected [label, coefficient]")
        terms.append((pair[0], float(pair[1])))
    return terms


def build_observable(terms: List[Tuple[str, float]]):
    """A :class:`~repro.operators.PauliSum` from wire terms (typed errors)."""
    from ..operators import PauliSum

    try:
        return PauliSum.from_list(terms)
    except Exception as error:
        raise ValidationError(f"observable: {error}") from error


# ----------------------------------------------------------------------------
# Response payloads
# ----------------------------------------------------------------------------

def serialize_run_result(result) -> Dict[str, Any]:
    """The JSON-safe payload of one ``op: run`` result (stored and served)."""
    probabilities = result.probabilities
    return {
        "op": "run",
        "fingerprint": result.fingerprint,
        "engine": result.engine,
        "probabilities": (
            [float(value) for value in probabilities] if probabilities is not None else None
        ),
        "clbit_order": (
            [int(bit) for bit in result.clbit_order] if result.clbit_order is not None else None
        ),
    }


def serialize_expectation_result(value: float) -> Dict[str, Any]:
    return {"op": "expectation", "value": float(value)}


def success_payload(tenant: str, results: List[Dict[str, Any]]) -> Dict[str, Any]:
    return {"protocol": SERVICE_PROTOCOL, "tenant": tenant, "results": results}


def error_status(error: BaseException) -> int:
    """The HTTP status an exception maps to."""
    for cls, status in _STATUS_BY_CLASS.items():
        if isinstance(error, cls):
            return status
    if isinstance(error, IngestError):
        return 400
    return 500


def error_payload(error: BaseException, program_index: Optional[int] = None) -> Dict[str, Any]:
    """The JSON error body: class name, message, and typed extras.

    The ``class`` field is what the client maps back to an exception type;
    the message is safe to echo (it came from the typed taxonomy, never from
    a raw traceback).
    """
    body: Dict[str, Any] = {
        "class": type(error).__name__,
        "message": str(error),
    }
    if isinstance(error, AdmissionError) and error.retry_after is not None:
        body["retry_after"] = float(error.retry_after)
    if isinstance(error, ResourceLimitError):
        if error.limit_name is not None:
            body["limit_name"] = error.limit_name
        if error.limit is not None:
            body["limit"] = error.limit
        if error.actual is not None:
            body["actual"] = error.actual
    if program_index is not None:
        body["program_index"] = program_index
    return {"protocol": SERVICE_PROTOCOL, "error": body}


#: Exception classes a client may reconstruct from the ``class`` field.
#: Message-only construction is intentional: server-side position/limit
#: details ride as payload extras and are reattached as attributes.
CLIENT_ERROR_CLASSES = {
    "ServiceProtocolError": ServiceProtocolError,
    "RateLimitError": RateLimitError,
    "QueueDepthError": QueueDepthError,
    "ServiceShutdownError": ServiceShutdownError,
    "ValidationError": ValidationError,
    "ResourceLimitError": ResourceLimitError,
    "ParseError": ParseError,
}


def raise_for_error(status: int, payload: Any) -> None:
    """Re-raise a server error payload as its typed exception (client side)."""
    detail = payload.get("error", {}) if isinstance(payload, dict) else {}
    name = detail.get("class", "ServiceError")
    message = detail.get("message", f"service returned HTTP {status}")
    cls = CLIENT_ERROR_CLASSES.get(name)
    if cls is None:
        error: ServiceError = ServiceError(f"{name}: {message}")
    elif issubclass(cls, AdmissionError):
        error = cls(message, retry_after=detail.get("retry_after"))
    elif cls is ParseError:
        # The server-side message already embeds the position; building with
        # line=None keeps it from being prefixed twice.
        error = cls(message)
    else:
        error = cls(message)
    error.status = status
    error.error_class = name
    if "program_index" in detail:
        error.program_index = detail["program_index"]
    for extra in ("limit_name", "limit", "actual"):
        if extra in detail:
            setattr(error, extra, detail[extra])
    raise error


__all__ = [
    "CLIENT_ERROR_CLASSES",
    "OPERATIONS",
    "ProgramRequest",
    "SERVICE_PROTOCOL",
    "build_observable",
    "error_payload",
    "error_status",
    "parse_envelope",
    "raise_for_error",
    "serialize_expectation_result",
    "serialize_run_result",
    "success_payload",
]
