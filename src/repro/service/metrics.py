"""Per-tenant and fleet metrics for the engine service.

Everything here is plain counting plus a bounded latency reservoir; mutation
happens exclusively on the service's event-loop thread (completion callbacks
are marshalled there), so no locks are needed and a metrics snapshot is
always internally consistent.

Latency percentiles use the nearest-rank method over the most recent
``max_samples`` request latencies — bounded memory, and exact for the sample
window (no sketch approximation to explain away in tests).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict


#: Rejection classes a tenant can see, in the order the docs list them.
REJECTION_KINDS = ("rate_limit", "queue_depth", "invalid", "shutdown", "execution")


def percentile(samples: list, fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample list."""
    if not samples:
        return 0.0
    rank = max(1, int(round(fraction * len(samples) + 0.5)))
    return samples[min(rank, len(samples)) - 1]


class TenantMetrics:
    """Counters and the latency reservoir of one tenant."""

    __slots__ = (
        "submitted", "completed", "programs", "dedupe_hits", "store_misses",
        "rejected", "_latencies",
    )

    def __init__(self, max_samples: int):
        self.submitted = 0
        self.completed = 0
        self.programs = 0
        self.dedupe_hits = 0
        self.store_misses = 0
        self.rejected: Dict[str, int] = {kind: 0 for kind in REJECTION_KINDS}
        self._latencies: Deque[float] = deque(maxlen=max_samples)

    def record_latency(self, seconds: float) -> None:
        self._latencies.append(seconds)

    def latency_snapshot(self) -> Dict[str, float]:
        samples = sorted(self._latencies)
        count = len(samples)
        return {
            "count": count,
            "p50_ms": percentile(samples, 0.50) * 1e3,
            "p99_ms": percentile(samples, 0.99) * 1e3,
            "mean_ms": (sum(samples) / count * 1e3) if count else 0.0,
        }


class ServiceMetrics:
    """The service's metrics tree: per-tenant plus fleet-level counters."""

    def __init__(self, max_samples: int = 1024):
        self._max_samples = max(1, int(max_samples))
        self._tenants: Dict[str, TenantMetrics] = {}
        #: Fleet-level counters the tenants cannot be blamed for.
        self.requests = 0
        self.disconnects = 0
        self.protocol_errors = 0

    def tenant(self, name: str) -> TenantMetrics:
        metrics = self._tenants.get(name)
        if metrics is None:
            metrics = TenantMetrics(self._max_samples)
            self._tenants[name] = metrics
        return metrics

    def snapshot(self, queue_depth_of) -> Dict[str, Dict]:
        """The per-tenant section of the metrics payload.

        ``queue_depth_of`` maps a tenant name to its current in-flight count
        (owned by the admission controller, not duplicated here).
        """
        payload: Dict[str, Dict] = {}
        for name in sorted(self._tenants):
            metrics = self._tenants[name]
            payload[name] = {
                "queue_depth": queue_depth_of(name),
                "submitted": metrics.submitted,
                "completed": metrics.completed,
                "programs": metrics.programs,
                "dedupe_hits": metrics.dedupe_hits,
                "store_misses": metrics.store_misses,
                "rejected": dict(metrics.rejected),
                "latency": metrics.latency_snapshot(),
            }
        return payload


__all__ = ["REJECTION_KINDS", "ServiceMetrics", "TenantMetrics", "percentile"]
