"""Per-tenant admission control for the engine service.

Three gates, checked in order for every submission (see ``docs/service.md``):

1. **Token-bucket rate limit** — each tenant owns a bucket refilled at
   ``rate_per_second`` up to ``burst`` tokens; a submission costs one token.
   An empty bucket raises :class:`~repro.exceptions.RateLimitError` carrying
   the bucket's exact time-to-next-token as ``retry_after``.
2. **Per-tenant queue depth** — at most ``max_queue_depth`` of a tenant's
   requests may be in flight (admitted but unanswered) at once; beyond that,
   :class:`~repro.exceptions.QueueDepthError`.
3. **Fleet queue depth** — a global bound on in-flight requests across all
   tenants, mapping the engine scheduler's ``max_pending_batches``
   backpressure onto a typed rejection: the service *rejects with
   retry-after* where an in-process caller would block.

Time is injectable (``ServiceConfig.clock``) so the fault-injection tests
exhaust and refill buckets deterministically without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..exceptions import QueueDepthError, RateLimitError
from ..frontend import ResourceLimits


@dataclass(frozen=True)
class TenantPolicy:
    """Admission knobs for one tenant (or the default for all of them).

    ``limits`` is the tenant's :class:`~repro.frontend.ResourceLimits`,
    applied to every program the tenant submits — the same trust-boundary
    validation an in-process :func:`~repro.frontend.ingest_json` call runs,
    configured per tenant instead of per call.
    """

    rate_per_second: float = 50.0
    burst: int = 20
    max_queue_depth: int = 8
    max_programs_per_request: int = 32
    limits: ResourceLimits = field(default_factory=ResourceLimits)


@dataclass
class ServiceConfig:
    """Configuration of one :class:`~repro.service.EngineService`.

    ``default_policy`` applies to tenants without an entry in ``tenants``.
    ``max_inflight_requests`` bounds admitted-but-unanswered requests across
    all tenants (``None``: the engine's ``max_pending_batches``).
    ``parallelism`` / ``max_workers`` are handed to every engine submission
    (``None``: the serial tier).  ``clock`` must be monotonic; tests inject a
    fake one to drive the token buckets deterministically.
    """

    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    tenants: Dict[str, TenantPolicy] = field(default_factory=dict)
    max_inflight_requests: Optional[int] = None
    max_body_bytes: int = 4 << 20
    parallelism: Optional[str] = None
    max_workers: Optional[int] = None
    #: ``retry_after`` hint for queue-depth and shutdown rejections, seconds.
    queue_retry_after: float = 0.1
    #: Entry bound of the fleet-wide content-addressed result store.
    store_entries: int = 4096
    #: Per-tenant latency samples kept for the p50/p99 metrics.
    latency_samples: int = 1024
    clock: Callable[[], float] = time.monotonic

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.tenants.get(tenant, self.default_policy)


class TokenBucket:
    """A standard token bucket with an injectable clock.

    Starts full.  ``try_acquire`` either takes one token or reports the exact
    wait until the next token exists — the ``retry_after`` a 429 carries.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last")

    def __init__(self, rate: float, burst: int, now: float):
        self.rate = float(rate)
        self.burst = max(1, int(burst))
        self._tokens = float(self.burst)
        self._last = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(float(self.burst), self._tokens + elapsed * self.rate)

    def try_acquire(self, now: float) -> Optional[float]:
        """Take one token; ``None`` on success, else seconds until one exists."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return None
        if self.rate <= 0.0:
            return float("inf")
        return (1.0 - self._tokens) / self.rate


class _TenantState:
    __slots__ = ("bucket", "in_flight")

    def __init__(self, bucket: TokenBucket):
        self.bucket = bucket
        self.in_flight = 0


class AdmissionController:
    """Applies the three admission gates; owns the per-tenant buckets.

    Not thread-safe by itself: the service calls it exclusively from its
    event-loop thread, which is what makes the bucket and depth accounting
    race-free without locks.
    """

    def __init__(self, config: ServiceConfig, engine_max_pending: int):
        self._config = config
        self._states: Dict[str, _TenantState] = {}
        self._global_limit = (
            config.max_inflight_requests
            if config.max_inflight_requests is not None
            else engine_max_pending
        )
        self._in_flight = 0

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def tenant_in_flight(self, tenant: str) -> int:
        state = self._states.get(tenant)
        return state.in_flight if state is not None else 0

    def _state(self, tenant: str) -> _TenantState:
        state = self._states.get(tenant)
        if state is None:
            policy = self._config.policy_for(tenant)
            state = _TenantState(
                TokenBucket(policy.rate_per_second, policy.burst, self._config.clock())
            )
            self._states[tenant] = state
        return state

    def admit(self, tenant: str) -> None:
        """Pass one request through all three gates or raise a typed rejection.

        On success the request counts as in flight until :meth:`release`.
        A rejected request consumes its rate token (the attempt is what the
        rate limit meters) but never occupies queue depth.
        """
        policy = self._config.policy_for(tenant)
        state = self._state(tenant)
        retry_after = state.bucket.try_acquire(self._config.clock())
        if retry_after is not None:
            raise RateLimitError(
                f"tenant {tenant!r} exceeded its rate limit "
                f"({policy.rate_per_second}/s, burst {policy.burst})",
                retry_after=retry_after,
            )
        if state.in_flight >= policy.max_queue_depth:
            raise QueueDepthError(
                f"tenant {tenant!r} has {state.in_flight} requests in flight "
                f"(bound {policy.max_queue_depth})",
                retry_after=self._config.queue_retry_after,
            )
        if self._in_flight >= self._global_limit:
            raise QueueDepthError(
                f"service is at its global in-flight bound ({self._global_limit})",
                retry_after=self._config.queue_retry_after,
            )
        state.in_flight += 1
        self._in_flight += 1

    def release(self, tenant: str) -> None:
        state = self._states.get(tenant)
        if state is not None and state.in_flight > 0:
            state.in_flight -= 1
        if self._in_flight > 0:
            self._in_flight -= 1


__all__ = ["AdmissionController", "ServiceConfig", "TenantPolicy", "TokenBucket"]
