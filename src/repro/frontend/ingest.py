"""One-call ingestion of external programs into engine-ready objects.

:func:`ingest_qasm` / :func:`ingest_json` run the full trust-boundary
pipeline — parse, decompose, validate — and return an
:class:`IngestedProgram`: a validated circuit (or schedule) plus the shot
request and per-stage counters.  The execution engines accept these objects
directly (``engine.run(program)``): each engine declares the payload kind it
consumes via its ``program_input`` class attribute ("circuit" or
"scheduled"), and :meth:`IngestedProgram.engine_payload` hands over the
matching object, transpiling a logical circuit on demand when a scheduled
payload is required.

The counters aggregate across calls through :class:`IngestStats`, which is
what the benchmark's ``ingestion`` leg records in ``BENCH_engine.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..circuits.circuit import QuantumCircuit
from ..exceptions import IngestError, ValidationError
from ..transpiler.scheduling import ScheduledCircuit
from .decomposer import Decomposer
from .json_format import (
    CIRCUIT_FORMAT,
    SCHEDULE_FORMAT,
    circuit_from_json,
    schedule_from_json,
)
from .limits import ResourceLimits
from .qasm import parse_qasm


@dataclass
class IngestStats:
    """Aggregated per-stage counters across a batch of ingested programs."""

    programs: int = 0
    parse_failures: int = 0
    source_bytes: int = 0
    tokens: int = 0
    instructions: int = 0
    macro_expansions: int = 0
    decomposed_gates: int = 0
    validated: int = 0

    def record(self, program: "IngestedProgram") -> None:
        self.programs += 1
        self.source_bytes += program.source_bytes
        counters = program.counters
        self.tokens += counters.get("tokens", 0)
        self.instructions += counters.get("instructions", 0)
        self.macro_expansions += counters.get("macro_expansions", 0)
        self.decomposed_gates += counters.get("decomposed_gates", 0)
        self.validated += 1

    def as_dict(self) -> Dict[str, int]:
        return {
            "programs": self.programs,
            "parse_failures": self.parse_failures,
            "source_bytes": self.source_bytes,
            "tokens": self.tokens,
            "instructions": self.instructions,
            "macro_expansions": self.macro_expansions,
            "decomposed_gates": self.decomposed_gates,
            "validated": self.validated,
        }


@dataclass
class IngestedProgram:
    """A validated external program, ready to hand to an execution engine.

    Exactly one of ``circuit`` / ``scheduled`` is the primary payload
    (``scheduled`` wins when both are set).  ``shots`` is the submitter's
    request; engines treat it as the default when the call site does not
    override.
    """

    circuit: Optional[QuantumCircuit] = None
    scheduled: Optional[ScheduledCircuit] = None
    shots: Optional[int] = None
    source_format: str = "qasm"
    source_bytes: int = 0
    counters: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        if self.circuit is None and self.scheduled is None:
            raise ValidationError("an ingested program needs a circuit or a schedule")

    def engine_payload(self, engine):
        """The object ``engine`` consumes, per its ``program_input`` kind.

        Engines that execute logical circuits ("circuit") get the circuit;
        schedule-level engines ("scheduled") get the schedule, transpiling
        the circuit against the engine's device when only a circuit was
        ingested.
        """
        kind = getattr(engine, "program_input", "circuit")
        if kind == "scheduled":
            if self.scheduled is not None:
                return self.scheduled
            device = getattr(engine, "device", None)
            if device is None:
                noise = getattr(engine, "noise_model", None)
                device = getattr(noise, "device", None)
            if device is None:
                raise ValidationError(
                    "cannot schedule an ingested circuit: the engine exposes no device"
                )
            from ..transpiler import transpile

            return transpile(self.circuit, device).scheduled
        if self.circuit is not None:
            return self.circuit
        raise ValidationError(
            "this program carries a device-bound schedule; run it on a "
            "schedule-level engine (e.g. NoisyDensityMatrixEngine)"
        )


def ingest_qasm(
    text: str,
    limits: Optional[ResourceLimits] = None,
    decomposer: Optional[Decomposer] = None,
    shots: Optional[int] = None,
    name: str = "qasm",
) -> IngestedProgram:
    """Ingest OpenQASM 2.0 text: parse, decompose, validate."""
    limits = limits or ResourceLimits()
    if shots is not None:
        limits.check_shots(shots)
    circuit = parse_qasm(text, limits=limits, decomposer=decomposer, name=name)
    info = dict(circuit.metadata.get("ingest", {}))
    return IngestedProgram(
        circuit=circuit,
        shots=shots,
        source_format="qasm",
        source_bytes=len(text.encode("utf-8", errors="replace")),
        counters={
            "tokens": info.get("tokens", 0),
            "instructions": len(circuit.instructions),
            "macro_expansions": info.get("macro_expansions", 0),
            "decomposed_gates": info.get("decomposed_gates", 0),
        },
    )


def ingest_json(
    document,
    limits: Optional[ResourceLimits] = None,
    decomposer: Optional[Decomposer] = None,
    device=None,
) -> IngestedProgram:
    """Ingest a JSON document of either wire format (text or parsed dict).

    Dispatches on the envelope's ``format`` field; circuit documents may use
    decomposable gate names (expanded via ``decomposer``, default rules when
    omitted), schedule documents must be native-basis.
    """
    import json as _json

    limits = limits or ResourceLimits()
    raw = document
    if isinstance(document, (str, bytes)):
        source_bytes = len(document) if isinstance(document, bytes) else len(document.encode("utf-8"))
        limits.check_source(document if isinstance(document, str) else document.decode("utf-8", "replace"))
        try:
            parsed = _json.loads(document)
        except (_json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ValidationError(f"document is not valid JSON: {error}") from error
    else:
        parsed = document
        source_bytes = 0
    if not isinstance(parsed, dict):
        raise ValidationError(
            f"document root must be a JSON object, got {type(parsed).__name__}"
        )
    fmt = parsed.get("format")
    shots = parsed.get("shots")
    if fmt == CIRCUIT_FORMAT:
        circuit = circuit_from_json(parsed, limits=limits, decomposer=decomposer or Decomposer.default())
        return IngestedProgram(
            circuit=circuit,
            shots=shots,
            source_format="json-circuit",
            source_bytes=source_bytes,
            counters={"instructions": len(circuit.instructions)},
        )
    if fmt == SCHEDULE_FORMAT:
        scheduled = schedule_from_json(parsed, device=device, limits=limits)
        return IngestedProgram(
            scheduled=scheduled,
            shots=shots,
            source_format="json-schedule",
            source_bytes=source_bytes,
            counters={"instructions": len(scheduled.timed_instructions)},
        )
    raise ValidationError(
        f"format: expected {CIRCUIT_FORMAT!r} or {SCHEDULE_FORMAT!r}, got {fmt!r}"
    )


__all__ = ["IngestStats", "IngestedProgram", "ingest_qasm", "ingest_json", "IngestError"]
