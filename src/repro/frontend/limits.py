"""Resource caps for untrusted external programs.

An ingested program runs on shared simulator capacity, so the trust boundary
enforces explicit ceilings *before* any exponential-cost object (statevector,
density matrix) is allocated.  Every violation raises
:class:`~repro.exceptions.ResourceLimitError` carrying the limit name, the
configured bound and the observed value — precise enough for a service tier
to echo back to the submitter and for tests to pin each cap individually.

Defaults are sized for the repo's fake 27-qubit heavy-hex devices and the
dense density-matrix kernel (which is comfortable up to ~8 qubits and
possible to ~12): generous for every legitimate workload in this repo,
small enough that a hostile program cannot allocate gigabytes or spin the
macro expander.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import ResourceLimitError, ValidationError


@dataclass(frozen=True)
class ResourceLimits:
    """Caps applied while parsing and validating external programs.

    ``max_macro_depth`` / ``max_expanded_instructions`` bound the parser's
    macro expander (a macro calling a macro calling ...); the remaining caps
    bound the finished circuit/schedule and the requested sampling work.
    """

    max_qubits: int = 16
    max_clbits: int = 32
    max_instructions: int = 20_000
    max_depth: int = 2_000
    max_shots: int = 1_000_000
    max_macro_depth: int = 16
    max_expanded_instructions: int = 100_000
    max_source_bytes: int = 1_048_576  # 1 MiB of program text

    @classmethod
    def unrestricted(cls) -> "ResourceLimits":
        """Effectively-unbounded limits for trusted internal callers."""
        big = 2**62
        return cls(
            max_qubits=big, max_clbits=big, max_instructions=big, max_depth=big,
            max_shots=big, max_macro_depth=10_000,
            max_expanded_instructions=big, max_source_bytes=big,
        )

    # ------------------------------------------------------------------
    def _exceeded(self, name: str, limit: float, actual: float, what: str) -> None:
        raise ResourceLimitError(
            f"{what} ({actual}) exceeds the configured {name} limit ({limit})",
            limit_name=name, limit=limit, actual=actual,
        )

    def check_source(self, text: str) -> None:
        """Cap raw program text size before tokenizing."""
        size = len(text.encode("utf-8", errors="replace"))
        if size > self.max_source_bytes:
            self._exceeded("max_source_bytes", self.max_source_bytes, size, "program source size")

    def check_shots(self, shots: int) -> None:
        if not isinstance(shots, int) or isinstance(shots, bool) or shots <= 0:
            raise ValidationError(f"shots must be a positive integer, got {shots!r}")
        if shots > self.max_shots:
            self._exceeded("max_shots", self.max_shots, shots, "requested shots")

    def validate_circuit(self, circuit) -> None:
        """Validate a built :class:`~repro.circuits.circuit.QuantumCircuit`.

        Checks width, instruction count, depth and parameter finiteness; the
        finiteness check raises plain :class:`ValidationError` (it is a
        structural defect, not a configurable bound).
        """
        if circuit.num_qubits > self.max_qubits:
            self._exceeded("max_qubits", self.max_qubits, circuit.num_qubits, "circuit width")
        if circuit.num_clbits > self.max_clbits:
            self._exceeded("max_clbits", self.max_clbits, circuit.num_clbits, "classical width")
        count = len(circuit.instructions)
        if count > self.max_instructions:
            self._exceeded("max_instructions", self.max_instructions, count, "instruction count")
        depth = circuit.depth()
        if depth > self.max_depth:
            self._exceeded("max_depth", self.max_depth, depth, "circuit depth")
        for index, inst in enumerate(circuit.instructions):
            for param in inst.gate.params:
                if isinstance(param, (int, float)) and not math.isfinite(param):
                    raise ValidationError(
                        f"instruction {index} ('{inst.name}') has non-finite parameter {param!r}"
                    )

    def validate_schedule(self, scheduled) -> None:
        """Validate a :class:`~repro.transpiler.scheduling.ScheduledCircuit`."""
        if scheduled.num_qubits > self.max_qubits:
            self._exceeded("max_qubits", self.max_qubits, scheduled.num_qubits, "schedule width")
        count = len(scheduled.timed_instructions)
        if count > self.max_instructions:
            self._exceeded(
                "max_instructions", self.max_instructions, count, "scheduled instruction count"
            )
        for index, timed in enumerate(scheduled.timed_instructions):
            if not (math.isfinite(timed.start_ns) and math.isfinite(timed.duration_ns)):
                raise ValidationError(
                    f"timed instruction {index} has non-finite timing "
                    f"(start={timed.start_ns!r}, duration={timed.duration_ns!r})"
                )
            for param in timed.instruction.gate.params:
                if isinstance(param, (int, float)) and not math.isfinite(param):
                    raise ValidationError(
                        f"timed instruction {index} "
                        f"('{timed.instruction.name}') has non-finite parameter {param!r}"
                    )
