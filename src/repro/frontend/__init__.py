"""External-program frontend: the trust boundary for untrusted circuits.

Everything under :mod:`repro.frontend` exists to turn text or JSON a user
submits into validated, engine-ready objects — and to reject anything else
with a typed :class:`~repro.exceptions.IngestError` carrying enough position
information to be actionable.  See ``docs/ingestion.md`` for the grammar
subset, the JSON wire formats, the decomposition config format and the
resource-limit defaults.
"""

from .decomposer import DEFAULT_RULES, DecompositionRule, Decomposer
from .ingest import IngestStats, IngestedProgram, ingest_json, ingest_qasm
from .json_format import (
    CIRCUIT_FORMAT,
    FORMAT_VERSION,
    SCHEDULE_FORMAT,
    circuit_from_json,
    circuit_to_json,
    schedule_from_json,
    schedule_to_json,
)
from .limits import ResourceLimits
from .qasm import circuit_to_qasm, compile_param_expression, parse_qasm, parse_qasm_program

__all__ = [
    "Decomposer",
    "DecompositionRule",
    "DEFAULT_RULES",
    "IngestStats",
    "IngestedProgram",
    "ingest_json",
    "ingest_qasm",
    "CIRCUIT_FORMAT",
    "SCHEDULE_FORMAT",
    "FORMAT_VERSION",
    "circuit_from_json",
    "circuit_to_json",
    "schedule_from_json",
    "schedule_to_json",
    "ResourceLimits",
    "circuit_to_qasm",
    "compile_param_expression",
    "parse_qasm",
    "parse_qasm_program",
]
