"""OpenQASM 2.0 frontend: tokenizer, recursive-descent parser and emitter.

This is the text half of the untrusted-program trust boundary
(``docs/ingestion.md``).  The parser is hand-rolled — a position-tracking
tokenizer feeding a recursive-descent parser — so every rejection carries the
1-based line/column of the offending token, and no input can reach ``eval``,
the filesystem (``include`` accepts only the literal ``"qelib1.inc"``) or
unbounded recursion (macro expansion is capped by
:class:`~repro.frontend.limits.ResourceLimits`).

Supported subset (grammar table in ``docs/ingestion.md``):

* ``OPENQASM 2.0;`` header, ``include "qelib1.inc";``
* ``qreg``/``creg`` declarations (multiple registers concatenate in
  declaration order)
* gate applications with constant expression arguments (``pi``, literals,
  ``+ - * / ^``, unary minus, ``sin/cos/tan/exp/ln/sqrt``) and register
  broadcast semantics
* ``gate`` macro definitions (parameterized, nested calls to previously
  defined gates, ``barrier``) — expanded at parse time
* ``measure``/``barrier``; ``delay(ns) q;`` is accepted as a documented
  extension (round-trips :class:`~repro.circuits.gates.Delay`)
* rejected with a typed :class:`~repro.exceptions.ParseError`: ``reset``,
  ``if``, ``opaque``, any other include target, any construct outside the
  grammar

Gate names resolve against the qelib1 vocabulary: names the circuit IR knows
natively map one-to-one (bit-identical round trips through
:func:`circuit_to_qasm`), the remainder (``u1``/``u2``/``u``, ``ccx``,
``crz``, ...) are expanded by a configurable
:class:`~repro.frontend.decomposer.Decomposer`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import (
    GATE_ARITY,
    GATE_NUM_PARAMS,
    Barrier,
    Delay,
    Measure,
    standard_gate,
)
from ..exceptions import ParseError, ResourceLimitError, ValidationError
from .limits import ResourceLimits

# ----------------------------------------------------------------------------
# Gate vocabulary
# ----------------------------------------------------------------------------

#: Gate names the circuit IR implements directly (QASM name == IR name).
NATIVE_GATES: Dict[str, Tuple[int, int]] = {
    name: (GATE_NUM_PARAMS.get(name, 0), arity)
    for name, arity in GATE_ARITY.items()
    if name not in ("barrier", "measure")
}

#: The qelib1 names that need a decomposition rule before they fit the IR,
#: as ``name -> (num_params, num_qubits)``.
DECOMPOSED_GATES: Dict[str, Tuple[int, int]] = {
    "u": (3, 1),
    "u1": (1, 1),
    "u2": (2, 1),
    "cy": (0, 2),
    "ch": (0, 2),
    "crx": (1, 2),
    "crz": (1, 2),
    "cp": (1, 2),
    "cu1": (1, 2),
    "cu3": (3, 2),
    "ccx": (0, 3),
    "cswap": (0, 3),
}

#: Everything ``include "qelib1.inc";`` brings into scope.
QELIB_GATES: Dict[str, Tuple[int, int]] = {**NATIVE_GATES, **DECOMPOSED_GATES}

#: Defined without any include, per the OpenQASM 2.0 specification.
BUILTIN_GATES: Dict[str, Tuple[int, int]] = {"U": (3, 1), "CX": (0, 2)}

#: How the spec builtins map onto qelib1 vocabulary.
_BUILTIN_ALIASES = {"U": "u3", "CX": "cx"}

_FUNCTIONS: Dict[str, Callable[[float], float]] = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "ln": math.log,
    "sqrt": math.sqrt,
}

_KEYWORDS = frozenset(
    {"OPENQASM", "include", "qreg", "creg", "gate", "measure", "barrier",
     "reset", "if", "opaque", "pi"}
)

_SYMBOLS = ("->", "==", ";", ",", "(", ")", "[", "]", "{", "}", "+", "-", "*", "/", "^")


# ----------------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------------

@dataclass(frozen=True)
class Token:
    kind: str  # "id" | "keyword" | "int" | "real" | "string" | "sym" | "eof"
    text: str
    line: int
    column: int


def tokenize(text: str) -> List[Token]:
    """Tokenize QASM source, tracking 1-based line/column per token.

    Raises :class:`ParseError` on any byte outside the grammar's alphabet —
    this is the first line of defence against junk input.
    """
    tokens: List[Token] = []
    line, column = 1, 1
    index, length = 0, len(text)
    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if text.startswith("//", index):
            end = text.find("\n", index)
            if end == -1:
                break
            column += end - index
            index = end
            continue
        start_line, start_column = line, column
        if char == '"':
            end = index + 1
            while end < length and text[end] not in '"\n':
                end += 1
            if end >= length or text[end] != '"':
                raise ParseError("unterminated string literal", start_line, start_column)
            value = text[index + 1 : end]
            tokens.append(Token("string", value, start_line, start_column))
            column += end + 1 - index
            index = end + 1
            continue
        if char.isdigit() or (char == "." and index + 1 < length and text[index + 1].isdigit()):
            end = index
            seen_dot = seen_exp = False
            while end < length:
                c = text[end]
                if c.isdigit():
                    end += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    end += 1
                elif c in "eE" and not seen_exp and end > index:
                    if end + 1 < length and (text[end + 1].isdigit() or text[end + 1] in "+-"):
                        seen_exp = True
                        end += 2 if text[end + 1] in "+-" else 1
                    else:
                        break
                else:
                    break
            literal = text[index:end]
            kind = "real" if (seen_dot or seen_exp) else "int"
            tokens.append(Token(kind, literal, start_line, start_column))
            column += end - index
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            kind = "keyword" if word in _KEYWORDS else "id"
            tokens.append(Token(kind, word, start_line, start_column))
            column += end - index
            index = end
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, index):
                tokens.append(Token("sym", symbol, start_line, start_column))
                column += len(symbol)
                index += len(symbol)
                break
        else:
            raise ParseError(f"unexpected character {char!r}", start_line, start_column)
    tokens.append(Token("eof", "", line, column))
    return tokens


# ----------------------------------------------------------------------------
# Expressions (constant arithmetic over pi, literals and macro parameters)
# ----------------------------------------------------------------------------
#
# Expression ASTs are nested tuples so macro bodies can hold them unevaluated
# until the call site supplies parameter values:
#   ("num", 1.5) | ("var", "theta") | ("neg", ast) |
#   ("bin", op, left, right) | ("call", fname, ast)

def _eval_expression(ast, env: Dict[str, float], line: int, column: int) -> float:
    kind = ast[0]
    if kind == "num":
        return ast[1]
    if kind == "var":
        return env[ast[1]]
    if kind == "neg":
        return -_eval_expression(ast[1], env, line, column)
    if kind == "bin":
        _, op, left, right = ast
        a = _eval_expression(left, env, line, column)
        b = _eval_expression(right, env, line, column)
        try:
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if op == "/":
                return a / b
            return math.pow(a, b)
        except (ZeroDivisionError, OverflowError, ValueError) as error:
            raise ParseError(f"cannot evaluate expression: {error}", line, column) from None
    _, fname, inner = ast
    value = _eval_expression(inner, env, line, column)
    try:
        return _FUNCTIONS[fname](value)
    except (ValueError, OverflowError) as error:
        raise ParseError(f"cannot evaluate {fname}(): {error}", line, column) from None


def compile_param_expression(text: str, variables: Sequence[str]) -> Callable[[Dict[str, float]], float]:
    """Compile an expression string into an evaluator over named variables.

    The expression grammar is exactly the QASM parameter grammar; used by the
    :class:`~repro.frontend.decomposer.Decomposer` so expansion rules are
    plain config strings (``"-(phi+lam)/2"``) rather than Python callables.
    Raises :class:`ParseError` on a malformed expression or an unknown name.
    """
    parser = _Parser(tokenize(text), ResourceLimits())
    ast = parser._expression(set(variables))
    parser._expect_kind("eof")

    def evaluate(env: Dict[str, float]) -> float:
        return _eval_expression(ast, env, 1, 1)

    return evaluate


# ----------------------------------------------------------------------------
# Parsed program pieces
# ----------------------------------------------------------------------------

@dataclass(frozen=True)
class RawOp:
    """One primitive (post-macro-expansion, pre-decomposition) operation."""

    name: str
    params: Tuple[float, ...]
    qubits: Tuple[int, ...]
    clbits: Tuple[int, ...] = ()
    line: int = 0
    column: int = 0


@dataclass
class _Macro:
    name: str
    params: Tuple[str, ...]
    qubits: Tuple[str, ...]
    body: List  # list of ("gate", name, [param asts], [qubit names], line, col) | ("barrier", [names], line, col)
    line: int = 0


@dataclass
class ParseInfo:
    """Deterministic parse counters, surfaced through ``circuit.metadata`` and
    aggregated by the benchmark's ingestion leg."""

    tokens: int = 0
    statements: int = 0
    macro_definitions: int = 0
    macro_expansions: int = 0
    raw_instructions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "tokens": self.tokens,
            "statements": self.statements,
            "macro_definitions": self.macro_definitions,
            "macro_expansions": self.macro_expansions,
            "raw_instructions": self.raw_instructions,
        }


@dataclass
class QasmProgram:
    """The parser's output: registers plus a flat primitive-op stream."""

    num_qubits: int
    num_clbits: int
    ops: List[RawOp] = field(default_factory=list)
    qregs: List[Tuple[str, int]] = field(default_factory=list)
    cregs: List[Tuple[str, int]] = field(default_factory=list)
    info: ParseInfo = field(default_factory=ParseInfo)


# ----------------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: List[Token], limits: ResourceLimits):
        self.tokens = tokens
        self.pos = 0
        self.limits = limits
        self.qregs: Dict[str, Tuple[int, int]] = {}  # name -> (offset, size)
        self.cregs: Dict[str, Tuple[int, int]] = {}
        self.gates: Dict[str, Tuple[int, int]] = dict(BUILTIN_GATES)
        self.macros: Dict[str, _Macro] = {}
        self.ops: List[RawOp] = []
        self.info = ParseInfo(tokens=len(tokens) - 1)

    # -- token plumbing -------------------------------------------------
    def _peek(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self._peek()
        return ParseError(message, token.line, token.column)

    def _expect_kind(self, kind: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            shown = token.text or "end of input"
            raise self._error(f"expected {kind}, got {shown!r}")
        return self._advance()

    def _expect_sym(self, symbol: str) -> Token:
        token = self._peek()
        if token.kind != "sym" or token.text != symbol:
            shown = token.text or "end of input"
            raise self._error(f"expected {symbol!r}, got {shown!r}")
        return self._advance()

    def _at_sym(self, symbol: str) -> bool:
        token = self._peek()
        return token.kind == "sym" and token.text == symbol

    # -- grammar --------------------------------------------------------
    def parse(self) -> QasmProgram:
        self._header()
        while self._peek().kind != "eof":
            self._statement()
            self.info.statements += 1
        if not self.qregs:
            token = self.tokens[-1]
            raise ParseError("program declares no quantum register", token.line, token.column)
        num_qubits = sum(size for _, size in self.qregs.values())
        num_clbits = sum(size for _, size in self.cregs.values())
        program = QasmProgram(
            num_qubits=num_qubits,
            num_clbits=max(num_clbits, num_qubits),
            ops=self.ops,
            qregs=[(name, size) for name, (_, size) in self.qregs.items()],
            cregs=[(name, size) for name, (_, size) in self.cregs.items()],
            info=self.info,
        )
        program.info.raw_instructions = len(self.ops)
        return program

    def _header(self) -> None:
        token = self._peek()
        if not (token.kind == "keyword" and token.text == "OPENQASM"):
            raise self._error("expected 'OPENQASM 2.0;' header")
        self._advance()
        version = self._peek()
        if version.kind != "real" or version.text != "2.0":
            shown = version.text or "end of input"
            raise self._error(f"unsupported OpenQASM version {shown!r} (only 2.0)", version)
        self._advance()
        self._expect_sym(";")

    def _statement(self) -> None:
        token = self._peek()
        if token.kind == "keyword":
            word = token.text
            if word == "include":
                return self._include()
            if word in ("qreg", "creg"):
                return self._register(word)
            if word == "gate":
                return self._gate_definition()
            if word == "measure":
                return self._measure()
            if word == "barrier":
                return self._barrier()
            if word in ("reset", "if", "opaque"):
                raise self._error(f"'{word}' is not supported by this frontend")
            raise self._error(f"unexpected keyword '{word}'")
        if token.kind == "id":
            return self._gate_call()
        shown = token.text or "end of input"
        raise self._error(f"expected a statement, got {shown!r}")

    def _include(self) -> None:
        self._advance()
        target = self._expect_kind("string")
        if target.text != "qelib1.inc":
            # Untrusted input never touches the filesystem: the one include
            # the grammar accepts resolves to the built-in gate table.
            raise self._error(
                f"cannot include {target.text!r}: only \"qelib1.inc\" is available", target
            )
        self.gates.update(QELIB_GATES)
        self._expect_sym(";")

    def _register(self, kind: str) -> None:
        self._advance()
        name_token = self._expect_kind("id")
        name = name_token.text
        if name in self.qregs or name in self.cregs:
            raise self._error(f"register '{name}' is already declared", name_token)
        self._expect_sym("[")
        size_token = self._expect_kind("int")
        size = int(size_token.text)
        if size <= 0:
            raise self._error("register size must be positive", size_token)
        self._expect_sym("]")
        self._expect_sym(";")
        if kind == "qreg":
            offset = sum(s for _, s in self.qregs.values())
            total = offset + size
            if total > self.limits.max_qubits:
                raise ResourceLimitError(
                    f"program declares {total} qubits, the limit is {self.limits.max_qubits}",
                    limit_name="max_qubits", limit=self.limits.max_qubits, actual=total,
                )
            self.qregs[name] = (offset, size)
        else:
            offset = sum(s for _, s in self.cregs.values())
            total = offset + size
            if total > self.limits.max_clbits:
                raise ResourceLimitError(
                    f"program declares {total} classical bits, the limit is {self.limits.max_clbits}",
                    limit_name="max_clbits", limit=self.limits.max_clbits, actual=total,
                )
            self.cregs[name] = (offset, size)

    # -- expressions ----------------------------------------------------
    def _expression(self, variables: set):
        node = self._term(variables)
        while self._at_sym("+") or self._at_sym("-"):
            op = self._advance().text
            node = ("bin", op, node, self._term(variables))
        return node

    def _term(self, variables: set):
        node = self._power(variables)
        while self._at_sym("*") or self._at_sym("/"):
            op = self._advance().text
            node = ("bin", op, node, self._power(variables))
        return node

    def _power(self, variables: set):
        node = self._atom(variables)
        if self._at_sym("^"):
            self._advance()
            return ("bin", "^", node, self._power(variables))
        return node

    def _atom(self, variables: set):
        token = self._peek()
        if token.kind == "sym" and token.text == "-":
            self._advance()
            return ("neg", self._atom(variables))
        if token.kind == "sym" and token.text == "(":
            self._advance()
            node = self._expression(variables)
            self._expect_sym(")")
            return node
        if token.kind in ("int", "real"):
            self._advance()
            return ("num", float(token.text))
        if token.kind == "keyword" and token.text == "pi":
            self._advance()
            return ("num", math.pi)
        if token.kind == "id":
            if token.text in _FUNCTIONS:
                self._advance()
                self._expect_sym("(")
                inner = self._expression(variables)
                self._expect_sym(")")
                return ("call", token.text, inner)
            if token.text in variables:
                self._advance()
                return ("var", token.text)
            raise self._error(f"unknown name '{token.text}' in expression")
        shown = token.text or "end of input"
        raise self._error(f"expected an expression, got {shown!r}")

    # -- arguments ------------------------------------------------------
    def _qubit_argument(self) -> Tuple[str, Optional[int], Token]:
        """``reg`` or ``reg[i]`` — returns (register, index-or-None, token)."""
        name_token = self._expect_kind("id")
        index = None
        if self._at_sym("["):
            self._advance()
            index_token = self._expect_kind("int")
            index = int(index_token.text)
            self._expect_sym("]")
        return name_token.text, index, name_token

    def _resolve_qubits(self, name: str, index: Optional[int], token: Token) -> List[int]:
        if name not in self.qregs:
            raise self._error(f"undeclared quantum register '{name}'", token)
        offset, size = self.qregs[name]
        if index is None:
            return [offset + i for i in range(size)]
        if not 0 <= index < size:
            raise self._error(f"index {index} out of range for qreg {name}[{size}]", token)
        return [offset + index]

    def _resolve_clbits(self, name: str, index: Optional[int], token: Token) -> List[int]:
        if name not in self.cregs:
            raise self._error(f"undeclared classical register '{name}'", token)
        offset, size = self.cregs[name]
        if index is None:
            return [offset + i for i in range(size)]
        if not 0 <= index < size:
            raise self._error(f"index {index} out of range for creg {name}[{size}]", token)
        return [offset + index]

    # -- statements that emit ops ---------------------------------------
    def _measure(self) -> None:
        self._advance()
        q_name, q_index, q_token = self._qubit_argument()
        self._expect_sym("->")
        c_name, c_index, c_token = self._qubit_argument()
        self._expect_sym(";")
        qubits = self._resolve_qubits(q_name, q_index, q_token)
        clbits = self._resolve_clbits(c_name, c_index, c_token)
        if len(qubits) != len(clbits):
            raise self._error(
                f"measure maps {len(qubits)} qubit(s) onto {len(clbits)} classical bit(s)",
                q_token,
            )
        for qubit, clbit in zip(qubits, clbits):
            self._emit(RawOp("measure", (), (qubit,), (clbit,), q_token.line, q_token.column))

    def _barrier(self) -> None:
        token = self._advance()
        qubits: List[int] = []
        while True:
            name, index, arg_token = self._qubit_argument()
            qubits.extend(self._resolve_qubits(name, index, arg_token))
            if self._at_sym(","):
                self._advance()
                continue
            break
        self._expect_sym(";")
        seen = set()
        unique = [q for q in qubits if not (q in seen or seen.add(q))]
        self._emit(RawOp("barrier", (), tuple(unique), (), token.line, token.column))

    def _gate_call(self) -> None:
        name_token = self._expect_kind("id")
        name = name_token.text
        params: List[float] = []
        if self._at_sym("("):
            self._advance()
            if not self._at_sym(")"):
                while True:
                    ast = self._expression(set())
                    params.append(_eval_expression(ast, {}, name_token.line, name_token.column))
                    if self._at_sym(","):
                        self._advance()
                        continue
                    break
            self._expect_sym(")")
        arguments: List[Tuple[str, Optional[int], Token]] = []
        while True:
            arguments.append(self._qubit_argument())
            if self._at_sym(","):
                self._advance()
                continue
            break
        self._expect_sym(";")
        self._apply_gate(name, params, arguments, name_token)

    def _apply_gate(
        self,
        name: str,
        params: List[float],
        arguments: List[Tuple[str, Optional[int], Token]],
        name_token: Token,
    ) -> None:
        resolved = [self._resolve_qubits(reg, index, token) for reg, index, token in arguments]
        # OpenQASM broadcast: whole-register arguments apply element-wise and
        # must agree in size; single-qubit arguments repeat.
        widths = {len(group) for group in resolved if len(group) > 1}
        if len(widths) > 1:
            raise self._error("broadcast registers must have equal sizes", name_token)
        repeat = widths.pop() if widths else 1
        for shot in range(repeat):
            qubits = [group[shot] if len(group) > 1 else group[0] for group in resolved]
            self._expand_call(name, params, qubits, name_token, depth=0)

    def _expand_call(
        self, name: str, params: List[float], qubits: List[int], token: Token, depth: int
    ) -> None:
        if depth > self.limits.max_macro_depth:
            raise ResourceLimitError(
                f"macro expansion exceeds depth {self.limits.max_macro_depth}",
                limit_name="max_macro_depth", limit=self.limits.max_macro_depth, actual=depth,
            )
        if len(set(qubits)) != len(qubits):
            raise self._error(f"gate '{name}' applied to duplicate qubits {qubits}", token)
        macro = self.macros.get(name)
        if macro is not None:
            self._check_call(name, len(macro.params), len(macro.qubits), params, qubits, token)
            env = dict(zip(macro.params, params))
            binding = dict(zip(macro.qubits, qubits))
            self.info.macro_expansions += 1
            for item in macro.body:
                if item[0] == "barrier":
                    _, names, line, column = item
                    self._emit(RawOp("barrier", (), tuple(binding[n] for n in names), (), line, column))
                    continue
                _, inner_name, param_asts, qubit_names, line, column = item
                inner_params = [_eval_expression(ast, env, line, column) for ast in param_asts]
                inner_qubits = [binding[n] for n in qubit_names]
                self._expand_call(inner_name, inner_params, inner_qubits, token, depth + 1)
            return
        if name not in self.gates:
            hint = "" if name.islower() else " (did you mean the lower-case qelib1 name?)"
            raise self._error(f"unknown gate '{name}'{hint}", token)
        num_params, num_qubits = self.gates[name]
        self._check_call(name, num_params, num_qubits, params, qubits, token)
        mapped = _BUILTIN_ALIASES.get(name, name)
        self._emit(RawOp(mapped, tuple(params), tuple(qubits), (), token.line, token.column))

    def _check_call(
        self, name: str, num_params: int, num_qubits: int,
        params: List[float], qubits: List[int], token: Token,
    ) -> None:
        if len(params) != num_params:
            raise self._error(
                f"gate '{name}' expects {num_params} parameter(s), got {len(params)}", token
            )
        if len(qubits) != num_qubits:
            raise self._error(
                f"gate '{name}' expects {num_qubits} qubit argument(s), got {len(qubits)}", token
            )

    def _emit(self, op: RawOp) -> None:
        if len(self.ops) >= self.limits.max_expanded_instructions:
            raise ResourceLimitError(
                f"program expands past {self.limits.max_expanded_instructions} instructions",
                limit_name="max_expanded_instructions",
                limit=self.limits.max_expanded_instructions,
                actual=len(self.ops) + 1,
            )
        self.ops.append(op)

    # -- gate definitions ------------------------------------------------
    def _gate_definition(self) -> None:
        gate_token = self._advance()
        name_token = self._expect_kind("id")
        name = name_token.text
        if name in self.gates or name in self.macros:
            raise self._error(f"gate '{name}' is already defined", name_token)
        params: List[str] = []
        if self._at_sym("("):
            self._advance()
            if not self._at_sym(")"):
                while True:
                    params.append(self._expect_kind("id").text)
                    if self._at_sym(","):
                        self._advance()
                        continue
                    break
            self._expect_sym(")")
        qubit_names: List[str] = []
        while True:
            qubit_names.append(self._expect_kind("id").text)
            if self._at_sym(","):
                self._advance()
                continue
            break
        if len(set(params)) != len(params) or len(set(qubit_names)) != len(qubit_names):
            raise self._error(f"duplicate parameter or qubit name in gate '{name}'", name_token)
        overlap = set(params) & set(qubit_names)
        if overlap:
            raise self._error(
                f"name(s) {sorted(overlap)} used as both parameter and qubit in gate '{name}'",
                name_token,
            )
        self._expect_sym("{")
        body: List = []
        variables = set(params)
        qubit_scope = set(qubit_names)
        while not self._at_sym("}"):
            token = self._peek()
            if token.kind == "eof":
                raise self._error(f"unterminated body of gate '{name}'", gate_token)
            if token.kind == "keyword" and token.text == "barrier":
                self._advance()
                names: List[str] = []
                while True:
                    names.append(self._scoped_qubit(qubit_scope, name))
                    if self._at_sym(","):
                        self._advance()
                        continue
                    break
                self._expect_sym(";")
                body.append(("barrier", names, token.line, token.column))
                continue
            inner_token = self._expect_kind("id")
            inner_name = inner_token.text
            if inner_name not in self.macros and inner_name not in self.gates:
                # Definition-before-use makes macro recursion impossible.
                raise self._error(f"unknown gate '{inner_name}' in body of '{name}'", inner_token)
            param_asts: List = []
            if self._at_sym("("):
                self._advance()
                if not self._at_sym(")"):
                    while True:
                        param_asts.append(self._expression(variables))
                        if self._at_sym(","):
                            self._advance()
                            continue
                        break
                self._expect_sym(")")
            inner_qubits: List[str] = []
            while True:
                inner_qubits.append(self._scoped_qubit(qubit_scope, name))
                if self._at_sym(","):
                    self._advance()
                    continue
                break
            self._expect_sym(";")
            body.append(
                ("gate", inner_name, param_asts, inner_qubits, inner_token.line, inner_token.column)
            )
        self._expect_sym("}")
        self.macros[name] = _Macro(
            name=name, params=tuple(params), qubits=tuple(qubit_names),
            body=body, line=name_token.line,
        )
        self.info.macro_definitions += 1

    def _scoped_qubit(self, scope: set, gate_name: str) -> str:
        token = self._expect_kind("id")
        if token.text not in scope:
            raise self._error(
                f"'{token.text}' is not a qubit parameter of gate '{gate_name}'", token
            )
        return token.text


# ----------------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------------

def parse_qasm_program(text: str, limits: Optional[ResourceLimits] = None) -> QasmProgram:
    """Parse QASM text into the raw (pre-decomposition) program form."""
    if not isinstance(text, str):
        raise ParseError(f"program source must be text, got {type(text).__name__}")
    limits = limits or ResourceLimits()
    limits.check_source(text)
    return _Parser(tokenize(text), limits).parse()


def parse_qasm(
    text: str,
    limits: Optional[ResourceLimits] = None,
    decomposer=None,
    name: str = "qasm",
) -> QuantumCircuit:
    """Parse, decompose and validate QASM text into a :class:`QuantumCircuit`.

    The full untrusted-input pipeline in one call: tokenize/parse (with
    macro-expansion caps), expand non-native gates through ``decomposer``
    (:meth:`Decomposer.default` when omitted), build the IR circuit and run
    the :class:`ResourceLimits` validation pass.  Every failure raises a
    :class:`~repro.exceptions.IngestError` subclass.
    """
    from .decomposer import Decomposer

    limits = limits or ResourceLimits()
    program = parse_qasm_program(text, limits)
    decomposer = decomposer or Decomposer.default()
    circuit = QuantumCircuit(program.num_qubits, program.num_clbits, name=name)
    decomposed = 0
    for op in program.ops:
        decomposed += _append_op(circuit, op, decomposer)
    limits.validate_circuit(circuit)
    circuit.metadata["ingest"] = {
        "source_format": "qasm",
        "decomposed_gates": decomposed,
        **program.info.as_dict(),
    }
    return circuit


def _append_op(circuit: QuantumCircuit, op: RawOp, decomposer) -> int:
    """Append one raw op (expanding through the decomposer); returns the
    number of decomposition expansions performed."""
    from ..exceptions import CircuitError

    try:
        if op.name == "barrier":
            circuit.append(Barrier(len(op.qubits)), op.qubits)
            return 0
        if op.name == "measure":
            circuit.append(Measure(), op.qubits, op.clbits)
            return 0
        if op.name == "delay":
            circuit.append(Delay(op.params[0]), op.qubits)
            return 0
        if op.name in NATIVE_GATES:
            circuit.append(standard_gate(op.name, *op.params), op.qubits)
            return 0
        expansions = 0
        for name, params, qubits in decomposer.expand(op.name, op.params, op.qubits):
            expansions += 1
            circuit.append(standard_gate(name, *params), qubits)
        return expansions
    except CircuitError as error:
        raise ValidationError(
            f"line {op.line}, column {op.column}: invalid instruction "
            f"'{op.name}': {error}"
        ) from error


# ----------------------------------------------------------------------------
# Emitter
# ----------------------------------------------------------------------------

def _format_param(value: float) -> str:
    """Shortest exact decimal form — ``float(repr(x)) == x`` — so an emitted
    program parses back to bit-identical gate parameters."""
    value = float(value)
    if not math.isfinite(value):
        raise ValidationError(f"cannot serialise non-finite gate parameter {value!r}")
    return repr(value)


def circuit_to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise an IR circuit as OpenQASM 2.0 text.

    Every IR gate name is part of the (extended qelib1) vocabulary the parser
    accepts, and parameters are printed in shortest-exact form, so
    ``parse_qasm(circuit_to_qasm(c))`` rebuilds the identical instruction
    stream — same content fingerprint, bit-identical engine results.  Symbolic
    (unbound) parameters cannot be serialised.
    """
    if circuit.parameters:
        unbound = ", ".join(sorted(p.name for p in circuit.parameters))
        raise ValidationError(f"cannot serialise unbound parameters: {unbound}")
    lines = ["OPENQASM 2.0;", 'include "qelib1.inc";', f"qreg q[{circuit.num_qubits}];"]
    if circuit.num_clbits > 0:
        lines.append(f"creg c[{circuit.num_clbits}];")
    for inst in circuit.instructions:
        qubits = ", ".join(f"q[{q}]" for q in inst.qubits)
        if inst.name == "measure":
            lines.append(f"measure q[{inst.qubits[0]}] -> c[{inst.clbits[0]}];")
        elif inst.name == "barrier":
            lines.append(f"barrier {qubits};")
        else:
            params = ""
            if inst.gate.params:
                params = "(" + ", ".join(_format_param(p) for p in inst.gate.params) + ")"
            lines.append(f"{inst.name}{params} {qubits};")
    return "\n".join(lines) + "\n"
