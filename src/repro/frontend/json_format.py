"""Versioned JSON wire format for circuits and schedules.

This is the format the future engine service will accept over the wire, so
it is validated the way a server must validate: strictly, with a precise
path in every rejection (``instructions[3].qubits[1]: ...``) and a version
gate so old clients get a clear "unsupported version" instead of a confusing
field error.  Validation is hand-rolled (the container ships no
``jsonschema``) but schema-shaped: every field has a declared type, unknown
fields are rejected, and all failures raise
:class:`~repro.exceptions.ValidationError`.

Two document kinds share the envelope ``{"format": ..., "version": 1}``:

* ``repro-circuit`` — logical :class:`~repro.circuits.circuit.QuantumCircuit`
  (gate/params/qubits/clbits per instruction).
* ``repro-schedule`` — a device-bound
  :class:`~repro.transpiler.scheduling.ScheduledCircuit` with explicit
  ``start_ns``/``duration_ns`` per instruction.  The document records the
  *device name*; :func:`schedule_from_json` rebuilds against
  ``repro.backends.get_device(name)`` unless the caller passes the device
  object (required for seeded device variants, which are not recoverable
  from the name alone).

Round trips are exact: parameters and times serialise through ``repr`` float
semantics (JSON numbers round-trip bit-identically through Python's parser),
so ``from_json(to_json(x))`` rebuilds the identical instruction stream —
same content fingerprint, same engine bits.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple

from ..circuits.circuit import Instruction, QuantumCircuit
from ..circuits.gates import Barrier, Delay, Measure, standard_gate
from ..exceptions import CircuitError, BackendError, ValidationError
from ..transpiler.scheduling import ScheduledCircuit, TimedInstruction
from .limits import ResourceLimits

CIRCUIT_FORMAT = "repro-circuit"
SCHEDULE_FORMAT = "repro-schedule"
FORMAT_VERSION = 1


# ----------------------------------------------------------------------------
# Validation plumbing
# ----------------------------------------------------------------------------

def _fail(path: str, message: str) -> None:
    raise ValidationError(f"{path}: {message}")


def _expect_type(value, types, path: str, expected: str):
    if isinstance(value, bool) and bool not in (types if isinstance(types, tuple) else (types,)):
        _fail(path, f"expected {expected}, got bool")
    if not isinstance(value, types):
        _fail(path, f"expected {expected}, got {type(value).__name__}")
    return value


def _expect_int(value, path: str, minimum: Optional[int] = None) -> int:
    _expect_type(value, int, path, "an integer")
    if minimum is not None and value < minimum:
        _fail(path, f"expected an integer >= {minimum}, got {value}")
    return value


def _expect_number(value, path: str) -> float:
    _expect_type(value, (int, float), path, "a number")
    value = float(value)
    if not math.isfinite(value):
        _fail(path, f"expected a finite number, got {value!r}")
    return value


def _expect_object(value, path: str, required: Tuple[str, ...], optional: Tuple[str, ...]) -> dict:
    _expect_type(value, dict, path, "an object")
    for key in required:
        if key not in value:
            _fail(path, f"missing required field '{key}'")
    unknown = sorted(set(value) - set(required) - set(optional))
    if unknown:
        _fail(path, f"unknown field(s): {', '.join(unknown)}")
    return value


def _load_document(document, expected_format: str) -> dict:
    """Parse (if text) and check the ``format``/``version`` envelope."""
    if isinstance(document, (str, bytes)):
        try:
            document = json.loads(document)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ValidationError(f"document is not valid JSON: {error}") from error
    if not isinstance(document, dict):
        raise ValidationError(
            f"document root must be a JSON object, got {type(document).__name__}"
        )
    fmt = document.get("format")
    if fmt != expected_format:
        _fail("format", f"expected {expected_format!r}, got {fmt!r}")
    version = document.get("version")
    if version != FORMAT_VERSION:
        _fail(
            "version",
            f"unsupported format version {version!r}; this build supports "
            f"version {FORMAT_VERSION}",
        )
    return document


def _int_list(values, path: str, upper: int, what: str) -> Tuple[int, ...]:
    _expect_type(values, list, path, "a list")
    out = []
    for index, value in enumerate(values):
        item = _expect_int(value, f"{path}[{index}]", minimum=0)
        if item >= upper:
            _fail(f"{path}[{index}]", f"{what} index {item} out of range (width {upper})")
        out.append(item)
    return tuple(out)


# ----------------------------------------------------------------------------
# Instruction (de)serialisation shared by both document kinds
# ----------------------------------------------------------------------------

def _instruction_to_dict(inst: Instruction) -> dict:
    entry: Dict[str, object] = {"gate": inst.name, "qubits": list(inst.qubits)}
    if inst.gate.params:
        params = []
        for param in inst.gate.params:
            value = float(param)
            if not math.isfinite(value):
                raise ValidationError(
                    f"cannot serialise non-finite parameter {value!r} of '{inst.name}'"
                )
            params.append(value)
        entry["params"] = params
    if inst.clbits:
        entry["clbits"] = list(inst.clbits)
    return entry


def _instruction_from_dict(
    entry, path: str, num_qubits: int, num_clbits: int, decomposer=None
) -> List[Instruction]:
    _expect_object(entry, path, required=("gate", "qubits"), optional=("params", "clbits"))
    name = _expect_type(entry["gate"], str, f"{path}.gate", "a string")
    qubits = _int_list(entry["qubits"], f"{path}.qubits", num_qubits, "qubit")
    clbits = _int_list(entry.get("clbits", []), f"{path}.clbits", num_clbits, "clbit")
    params = []
    raw_params = entry.get("params", [])
    _expect_type(raw_params, list, f"{path}.params", "a list")
    for index, value in enumerate(raw_params):
        params.append(_expect_number(value, f"{path}.params[{index}]"))
    if len(set(qubits)) != len(qubits):
        _fail(f"{path}.qubits", f"duplicate qubit indices {list(qubits)}")
    try:
        if name == "barrier":
            if params or clbits:
                _fail(path, "barrier takes no params or clbits")
            return [Instruction(Barrier(len(qubits)), qubits)]
        if name == "measure":
            if len(qubits) != 1 or len(clbits) != 1 or params:
                _fail(path, "measure takes exactly one qubit, one clbit and no params")
            return [Instruction(Measure(), qubits, clbits)]
        if clbits:
            _fail(f"{path}.clbits", f"gate '{name}' takes no classical bits")
        if name == "delay":
            return [Instruction(Delay(params[0] if params else -1), qubits)]
        if decomposer is not None and not decomposer.knows(name):
            _fail(f"{path}.gate", f"unknown gate '{name}'")
        if decomposer is not None and name not in decomposer.native:
            return [
                Instruction(standard_gate(step_name, *step_params), step_qubits)
                for step_name, step_params, step_qubits in decomposer.expand(name, params, qubits)
            ]
        return [Instruction(standard_gate(name, *params), qubits)]
    except CircuitError as error:
        raise ValidationError(f"{path}: invalid instruction '{name}': {error}") from error


# ----------------------------------------------------------------------------
# Circuit documents
# ----------------------------------------------------------------------------

_CIRCUIT_REQUIRED = ("format", "version", "num_qubits", "instructions")
_CIRCUIT_OPTIONAL = ("num_clbits", "name", "metadata", "shots")


def circuit_to_json(circuit: QuantumCircuit, shots: Optional[int] = None, indent: Optional[int] = None) -> str:
    """Serialise a circuit as a version-1 ``repro-circuit`` document."""
    document: Dict[str, object] = {
        "format": CIRCUIT_FORMAT,
        "version": FORMAT_VERSION,
        "name": circuit.name,
        "num_qubits": circuit.num_qubits,
        "num_clbits": circuit.num_clbits,
        "instructions": [_instruction_to_dict(inst) for inst in circuit.instructions],
    }
    if circuit.parameters:
        unbound = ", ".join(sorted(p.name for p in circuit.parameters))
        raise ValidationError(f"cannot serialise unbound parameters: {unbound}")
    if shots is not None:
        document["shots"] = int(shots)
    return json.dumps(document, indent=indent)


def circuit_from_json(
    document,
    limits: Optional[ResourceLimits] = None,
    decomposer=None,
) -> QuantumCircuit:
    """Rebuild a circuit from a ``repro-circuit`` document (text or dict).

    With a ``decomposer``, non-native gate names in the document expand into
    the native basis; without one the document must be native-only.  The
    rebuilt circuit is validated against ``limits``.
    """
    limits = limits or ResourceLimits()
    if isinstance(document, (str, bytes)):
        limits.check_source(document if isinstance(document, str) else document.decode("utf-8", "replace"))
    data = _load_document(document, CIRCUIT_FORMAT)
    _expect_object(data, "document", required=_CIRCUIT_REQUIRED, optional=_CIRCUIT_OPTIONAL)
    num_qubits = _expect_int(data["num_qubits"], "num_qubits", minimum=1)
    num_clbits = _expect_int(data.get("num_clbits", num_qubits), "num_clbits", minimum=0)
    name = _expect_type(data.get("name", "circuit"), str, "name", "a string")
    metadata = _expect_type(data.get("metadata", {}), dict, "metadata", "an object")
    entries = _expect_type(data["instructions"], list, "instructions", "a list")
    if data.get("shots") is not None:
        limits.check_shots(_expect_int(data["shots"], "shots", minimum=1))
    if num_qubits > limits.max_qubits:
        raise ValidationError(
            f"num_qubits: {num_qubits} exceeds the configured max_qubits "
            f"limit ({limits.max_qubits})"
        )
    circuit = QuantumCircuit(num_qubits, num_clbits, name=name)
    circuit.metadata.update(metadata)
    for index, entry in enumerate(entries):
        for inst in _instruction_from_dict(
            entry, f"instructions[{index}]", num_qubits, num_clbits, decomposer
        ):
            circuit.instructions.append(inst)
    limits.validate_circuit(circuit)
    return circuit


# ----------------------------------------------------------------------------
# Schedule documents
# ----------------------------------------------------------------------------

_SCHEDULE_REQUIRED = (
    "format", "version", "num_qubits", "num_clbits", "device",
    "physical_qubits", "instructions",
)
_SCHEDULE_OPTIONAL = ("name", "metadata", "shots")


def schedule_to_json(scheduled: ScheduledCircuit, shots: Optional[int] = None, indent: Optional[int] = None) -> str:
    """Serialise a scheduled circuit as a ``repro-schedule`` document."""
    instructions = []
    for timed in scheduled.timed_instructions:
        entry = _instruction_to_dict(timed.instruction)
        entry["start_ns"] = float(timed.start_ns)
        entry["duration_ns"] = float(timed.duration_ns)
        instructions.append(entry)
    document: Dict[str, object] = {
        "format": SCHEDULE_FORMAT,
        "version": FORMAT_VERSION,
        "name": scheduled.name,
        "num_qubits": scheduled.num_qubits,
        "num_clbits": scheduled.num_clbits,
        "device": scheduled.device.name,
        "physical_qubits": list(scheduled.physical_qubits),
        "instructions": instructions,
        "metadata": _json_safe_metadata(scheduled.metadata),
    }
    if shots is not None:
        document["shots"] = int(shots)
    return json.dumps(document, indent=indent)


def _json_safe_metadata(metadata: Dict[str, object]) -> Dict[str, object]:
    """Keep only the JSON-representable slice of a metadata dict."""
    out = {}
    for key, value in metadata.items():
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            continue
        out[str(key)] = value
    return out


def schedule_from_json(
    document,
    device=None,
    limits: Optional[ResourceLimits] = None,
) -> ScheduledCircuit:
    """Rebuild a scheduled circuit from a ``repro-schedule`` document.

    ``device`` overrides the by-name lookup — pass it whenever the schedule
    was built against a seeded device variant, because only the default
    variant is recoverable from ``repro.backends.get_device(name)``.
    """
    from ..backends import get_device

    limits = limits or ResourceLimits()
    if isinstance(document, (str, bytes)):
        limits.check_source(document if isinstance(document, str) else document.decode("utf-8", "replace"))
    data = _load_document(document, SCHEDULE_FORMAT)
    _expect_object(data, "document", required=_SCHEDULE_REQUIRED, optional=_SCHEDULE_OPTIONAL)
    num_qubits = _expect_int(data["num_qubits"], "num_qubits", minimum=1)
    num_clbits = _expect_int(data["num_clbits"], "num_clbits", minimum=0)
    name = _expect_type(data.get("name", "scheduled"), str, "name", "a string")
    metadata = _expect_type(data.get("metadata", {}), dict, "metadata", "an object")
    device_name = _expect_type(data["device"], str, "device", "a string")
    if data.get("shots") is not None:
        limits.check_shots(_expect_int(data["shots"], "shots", minimum=1))
    if device is None:
        try:
            device = get_device(device_name)
        except BackendError as error:
            raise ValidationError(f"device: {error}") from error
    physical = _int_list(data["physical_qubits"], "physical_qubits", device.num_qubits, "device qubit")
    if len(physical) != num_qubits:
        _fail("physical_qubits", f"expected {num_qubits} entries, got {len(physical)}")
    if len(set(physical)) != len(physical):
        _fail("physical_qubits", f"duplicate device qubits {list(physical)}")
    entries = _expect_type(data["instructions"], list, "instructions", "a list")
    timed: List[TimedInstruction] = []
    for index, entry in enumerate(entries):
        path = f"instructions[{index}]"
        _expect_type(entry, dict, path, "an object")
        fields = dict(entry)
        start_ns = _expect_number(fields.pop("start_ns", None), f"{path}.start_ns")
        duration_ns = _expect_number(fields.pop("duration_ns", None), f"{path}.duration_ns")
        if start_ns < 0 or duration_ns < 0:
            _fail(path, f"negative timing (start={start_ns}, duration={duration_ns})")
        instructions = _instruction_from_dict(fields, path, num_qubits, num_clbits)
        if len(instructions) != 1:
            _fail(path, "schedule instructions must be native gates")
        timed.append(TimedInstruction(instructions[0], start_ns, duration_ns))
    scheduled = ScheduledCircuit(
        num_qubits=num_qubits,
        num_clbits=num_clbits,
        device=device,
        physical_qubits=physical,
        timed_instructions=timed,
        name=name,
        metadata=dict(metadata),
    )
    limits.validate_schedule(scheduled)
    return scheduled
