"""Config-driven gate decomposition into the native circuit basis.

The frontend accepts the full qelib1 vocabulary, but the circuit IR (and
everything downstream — transpiler, engines, kernels) speaks the native set
in :data:`repro.circuits.gates.GATE_ARITY`.  The :class:`Decomposer` bridges
the two with *per-gate expansion rules*: each rule names the gate, its
parameter names, and a body of ``(gate, param-expressions, qubit-positions)``
triples.  Parameter expressions are plain strings in the QASM expression
grammar (``"-(phi+lam)/2"``, ``"pi/2"``), compiled once at construction by
:func:`repro.frontend.qasm.compile_param_expression` — so a rule set is pure
configuration, serialisable and auditable, never executable Python.

Expansion is recursive (a rule body may itself use non-native gates, e.g.
``cswap`` expands through ``ccx``) with a depth cap so a mis-configured rule
cycle raises :class:`~repro.exceptions.DecompositionError` instead of
recursing forever.  Every default rule is verified unitary-equivalent to its
reference matrix in ``tests/test_frontend.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits.gates import GATE_ARITY, GATE_NUM_PARAMS
from ..exceptions import DecompositionError, ParseError

#: A body step: (gate name, parameter expression strings, qubit positions).
BodyStep = Tuple[str, Tuple[str, ...], Tuple[int, ...]]


@dataclass(frozen=True)
class DecompositionRule:
    """One per-gate expansion: how ``name(params) q0..qn`` rewrites."""

    name: str
    num_qubits: int
    params: Tuple[str, ...]
    body: Tuple[BodyStep, ...]


def _rule(name: str, num_qubits: int, params: Sequence[str], body) -> DecompositionRule:
    steps = tuple(
        (gate, tuple(exprs), tuple(positions)) for gate, exprs, positions in body
    )
    return DecompositionRule(name, num_qubits, tuple(params), steps)


#: Expansions for the qelib1 gates outside the native set, plus native
#: two-qubit gates (``swap``, ``cz``) so a caller can *shrink* the native set
#: and still decompose.  Bodies follow qelib1.inc; qubit position 0 is the
#: first argument (control for controlled gates).
DEFAULT_RULES: Tuple[DecompositionRule, ...] = (
    _rule("u", 1, ("theta", "phi", "lam"), [("u3", ("theta", "phi", "lam"), (0,))]),
    _rule("u1", 1, ("lam",), [("p", ("lam",), (0,))]),
    _rule("u2", 1, ("phi", "lam"), [("u3", ("pi/2", "phi", "lam"), (0,))]),
    _rule("cy", 2, (), [
        ("sdg", (), (1,)),
        ("cx", (), (0, 1)),
        ("s", (), (1,)),
    ]),
    _rule("ch", 2, (), [
        ("h", (), (1,)),
        ("sdg", (), (1,)),
        ("cx", (), (0, 1)),
        ("h", (), (1,)),
        ("t", (), (1,)),
        ("cx", (), (0, 1)),
        ("t", (), (1,)),
        ("h", (), (1,)),
        ("s", (), (1,)),
        ("x", (), (1,)),
        ("s", (), (0,)),
    ]),
    _rule("crx", 2, ("lam",), [
        ("p", ("pi/2",), (1,)),
        ("cx", (), (0, 1)),
        ("u3", ("-lam/2", "0", "0"), (1,)),
        ("cx", (), (0, 1)),
        ("u3", ("lam/2", "-pi/2", "0"), (1,)),
    ]),
    _rule("crz", 2, ("lam",), [
        ("rz", ("lam/2",), (1,)),
        ("cx", (), (0, 1)),
        ("rz", ("-lam/2",), (1,)),
        ("cx", (), (0, 1)),
    ]),
    _rule("cp", 2, ("lam",), [
        ("p", ("lam/2",), (0,)),
        ("cx", (), (0, 1)),
        ("p", ("-lam/2",), (1,)),
        ("cx", (), (0, 1)),
        ("p", ("lam/2",), (1,)),
    ]),
    _rule("cu1", 2, ("lam",), [
        ("p", ("lam/2",), (0,)),
        ("cx", (), (0, 1)),
        ("p", ("-lam/2",), (1,)),
        ("cx", (), (0, 1)),
        ("p", ("lam/2",), (1,)),
    ]),
    _rule("cu3", 2, ("theta", "phi", "lam"), [
        ("p", ("(lam+phi)/2",), (0,)),
        ("p", ("(lam-phi)/2",), (1,)),
        ("cx", (), (0, 1)),
        ("u3", ("-theta/2", "0", "-(phi+lam)/2"), (1,)),
        ("cx", (), (0, 1)),
        ("u3", ("theta/2", "phi", "0"), (1,)),
    ]),
    _rule("ccx", 3, (), [
        ("h", (), (2,)),
        ("cx", (), (1, 2)),
        ("tdg", (), (2,)),
        ("cx", (), (0, 2)),
        ("t", (), (2,)),
        ("cx", (), (1, 2)),
        ("tdg", (), (2,)),
        ("cx", (), (0, 2)),
        ("t", (), (1,)),
        ("t", (), (2,)),
        ("h", (), (2,)),
        ("cx", (), (0, 1)),
        ("t", (), (0,)),
        ("tdg", (), (1,)),
        ("cx", (), (0, 1)),
    ]),
    # Routes through ccx — exercises recursive expansion.
    _rule("cswap", 3, (), [
        ("cx", (), (2, 1)),
        ("ccx", (), (0, 1, 2)),
        ("cx", (), (2, 1)),
    ]),
    _rule("swap", 2, (), [
        ("cx", (), (0, 1)),
        ("cx", (), (1, 0)),
        ("cx", (), (0, 1)),
    ]),
    _rule("cz", 2, (), [
        ("h", (), (1,)),
        ("cx", (), (0, 1)),
        ("h", (), (1,)),
    ]),
)

#: Gate names the IR executes directly — the default target basis.
DEFAULT_NATIVE = frozenset(GATE_ARITY) - {"barrier", "measure"}


class Decomposer:
    """Expands non-native gate applications via configured rules.

    Parameters
    ----------
    rules:
        The expansion rules (defaults to :data:`DEFAULT_RULES`).  Duplicate
        rule names raise :class:`DecompositionError` at construction, as does
        a rule whose expressions fail to compile.
    native:
        Gate names to leave untouched (defaults to the IR's native set).
        Expansion recurses until every emitted gate is in this set.
    max_depth:
        Recursion cap; a rule cycle (``a`` expands to ``b`` expands to ``a``)
        exceeds it and raises :class:`DecompositionError`.
    """

    def __init__(
        self,
        rules: Optional[Sequence[DecompositionRule]] = None,
        native: Optional[Sequence[str]] = None,
        max_depth: int = 32,
    ):
        from .qasm import compile_param_expression  # deferred: qasm imports limits only

        rules = DEFAULT_RULES if rules is None else tuple(rules)
        self.native = frozenset(DEFAULT_NATIVE if native is None else native)
        self.max_depth = int(max_depth)
        self._rules: Dict[str, DecompositionRule] = {}
        self._compiled: Dict[str, List] = {}
        for rule in rules:
            if rule.name in self._rules:
                raise DecompositionError(f"duplicate decomposition rule for '{rule.name}'")
            compiled_body = []
            for gate, exprs, positions in rule.body:
                if any(not 0 <= pos < rule.num_qubits for pos in positions):
                    raise DecompositionError(
                        f"rule '{rule.name}' references qubit position outside "
                        f"0..{rule.num_qubits - 1}: {positions}"
                    )
                try:
                    evaluators = [compile_param_expression(e, rule.params) for e in exprs]
                except ParseError as error:
                    raise DecompositionError(
                        f"rule '{rule.name}': bad parameter expression: {error}"
                    ) from error
                compiled_body.append((gate, evaluators, positions))
            self._rules[rule.name] = rule
            self._compiled[rule.name] = compiled_body

    @classmethod
    def default(cls) -> "Decomposer":
        return cls()

    @property
    def rules(self) -> Dict[str, DecompositionRule]:
        return dict(self._rules)

    def knows(self, name: str) -> bool:
        return name in self.native or name in self._rules

    def expand(
        self, name: str, params: Sequence[float], qubits: Sequence[int]
    ) -> List[Tuple[str, Tuple[float, ...], Tuple[int, ...]]]:
        """Rewrite one gate application into native-basis applications.

        Returns ``[(name, params, qubits), ...]`` ready for
        ``standard_gate``; a native input returns itself unchanged.
        """
        out: List[Tuple[str, Tuple[float, ...], Tuple[int, ...]]] = []
        self._expand_into(name, tuple(float(p) for p in params), tuple(qubits), 0, out)
        return out

    def _expand_into(self, name, params, qubits, depth, out) -> None:
        if depth > self.max_depth:
            raise DecompositionError(
                f"decomposition of '{name}' exceeds max depth {self.max_depth} "
                "(rule cycle?)"
            )
        if name in self.native:
            self._check_native(name, params, qubits)
            out.append((name, params, qubits))
            return
        rule = self._rules.get(name)
        if rule is None:
            raise DecompositionError(
                f"no decomposition rule for gate '{name}' "
                f"(native basis: {', '.join(sorted(self.native))})"
            )
        if len(params) != len(rule.params):
            raise DecompositionError(
                f"gate '{name}' expects {len(rule.params)} parameter(s), got {len(params)}"
            )
        if len(qubits) != rule.num_qubits:
            raise DecompositionError(
                f"gate '{name}' expects {rule.num_qubits} qubit(s), got {len(qubits)}"
            )
        env = dict(zip(rule.params, params))
        for gate, evaluators, positions in self._compiled[name]:
            step_params = tuple(evaluate(env) for evaluate in evaluators)
            step_qubits = tuple(qubits[pos] for pos in positions)
            self._expand_into(gate, step_params, step_qubits, depth + 1, out)

    def _check_native(self, name, params, qubits) -> None:
        arity = GATE_ARITY.get(name)
        expected_params = GATE_NUM_PARAMS.get(name, 0)
        if arity is not None and len(qubits) != arity:
            raise DecompositionError(
                f"native gate '{name}' expects {arity} qubit(s), got {len(qubits)}"
            )
        if arity is not None and len(params) != expected_params:
            raise DecompositionError(
                f"native gate '{name}' expects {expected_params} parameter(s), "
                f"got {len(params)}"
            )
