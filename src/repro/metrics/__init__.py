"""Fidelity and aggregation metrics."""

from .fidelity import (
    counts_overlap_fidelity,
    geometric_mean,
    hellinger_distance,
    hellinger_fidelity,
    state_fidelity,
    total_variation_distance,
)

__all__ = [
    "hellinger_distance",
    "hellinger_fidelity",
    "total_variation_distance",
    "state_fidelity",
    "counts_overlap_fidelity",
    "geometric_mean",
]
