"""Distribution and state fidelity metrics.

The paper's micro-benchmarks (Figs. 5, 6, 9) report the *Hellinger fidelity*
between the measured outcome distribution and the ideal one; the VQE
experiments report energies.  Both metric families live here.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np

from ..exceptions import ReproError

Distribution = Union[Mapping[str, float], np.ndarray]


def _as_probability_dict(dist: Distribution) -> Dict[str, float]:
    if isinstance(dist, Mapping):
        total = float(sum(dist.values()))
        if total <= 0:
            raise ReproError("distribution has non-positive total weight")
        return {str(k): float(v) / total for k, v in dist.items() if v > 0}
    array = np.asarray(dist, dtype=float)
    total = array.sum()
    if total <= 0:
        raise ReproError("distribution has non-positive total weight")
    width = int(math.log2(array.size))
    if 2 ** width != array.size:
        raise ReproError("array distributions must have power-of-two length")
    return {
        format(i, f"0{width}b"): float(v) / total for i, v in enumerate(array) if v > 0
    }


def hellinger_distance(dist_a: Distribution, dist_b: Distribution) -> float:
    """Hellinger distance ``sqrt(1 - sum_i sqrt(p_i q_i))`` in [0, 1]."""
    a = _as_probability_dict(dist_a)
    b = _as_probability_dict(dist_b)
    overlap = 0.0
    for key, pa in a.items():
        pb = b.get(key, 0.0)
        if pb > 0:
            overlap += math.sqrt(pa * pb)
    overlap = min(overlap, 1.0)
    return math.sqrt(1.0 - overlap)


def hellinger_fidelity(dist_a: Distribution, dist_b: Distribution) -> float:
    """Hellinger fidelity ``(1 - H^2)^2`` — the metric used in the paper's Fig. 6."""
    h_squared = hellinger_distance(dist_a, dist_b) ** 2
    return (1.0 - h_squared) ** 2


def total_variation_distance(dist_a: Distribution, dist_b: Distribution) -> float:
    """Total variation distance ``0.5 * sum_i |p_i - q_i|``."""
    a = _as_probability_dict(dist_a)
    b = _as_probability_dict(dist_b)
    keys = set(a) | set(b)
    return 0.5 * sum(abs(a.get(k, 0.0) - b.get(k, 0.0)) for k in keys)


def state_fidelity(rho: np.ndarray, sigma_or_state: np.ndarray) -> float:
    """Fidelity between a density matrix and a pure state or density matrix.

    For a pure reference ``|psi>`` this is ``<psi|rho|psi>``; for two density
    matrices the Uhlmann fidelity ``(Tr sqrt(sqrt(rho) sigma sqrt(rho)))^2``.
    """
    rho = np.asarray(rho, dtype=complex)
    other = np.asarray(sigma_or_state, dtype=complex)
    if other.ndim == 1 or (other.ndim == 2 and 1 in other.shape):
        vec = other.reshape(-1)
        return float(np.real(vec.conj() @ rho @ vec))
    from scipy.linalg import sqrtm

    sqrt_rho = sqrtm(rho)
    inner = sqrtm(sqrt_rho @ other @ sqrt_rho)
    return float(np.real(np.trace(inner)) ** 2)


def counts_overlap_fidelity(counts: Mapping[str, int], ideal_probs: Distribution) -> float:
    """Convenience wrapper: Hellinger fidelity of counts vs an ideal distribution."""
    return hellinger_fidelity(counts, ideal_probs)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used for the paper's summary bars in Fig. 12)."""
    values = [float(v) for v in values]
    if not values:
        raise ReproError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ReproError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(values))))
