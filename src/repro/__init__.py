"""repro — a full reproduction of VAQEM (HPCA 2022).

VAQEM tunes features of idle-time error-mitigation techniques (dynamical
decoupling sequence counts and single-qubit gate positions) inside the
variational loop of a VQA, against the VQA's own objective function.  This
package provides every substrate that reproduction needs — circuit IR,
transpiler, device models, noisy schedule-aware simulation, VQE stack — plus
the VAQEM framework itself and a benchmark harness regenerating each table
and figure of the paper's evaluation.

Quickstart::

    from repro import get_application, VAQEMPipeline, VAQEMConfig

    app = get_application("HW_TFIM_4q_c_6r")
    pipeline = VAQEMPipeline(app, VAQEMConfig())
    result = pipeline.run(strategies=("mem", "vaqem_gs_xy"))
    print(result.improvement("vaqem_gs_xy"))
"""

from .exceptions import (
    BackendError,
    CircuitError,
    DecompositionError,
    IngestError,
    MitigationError,
    NoiseModelError,
    OptimizerError,
    ParameterError,
    ParseError,
    ReproError,
    ResourceLimitError,
    RuntimeSessionError,
    SimulationError,
    TranspilerError,
    VAQEMError,
    ValidationError,
    VQEError,
)
from .circuits import (
    Parameter,
    ParameterVector,
    QuantumCircuit,
    efficient_su2,
    hahn_echo_microbenchmark,
    idle_window_microbenchmark,
    qaoa_ansatz,
    uccsd_like_ansatz,
)
from .operators import (
    PauliString,
    PauliSum,
    h2_hamiltonian,
    lih_hamiltonian,
    lithium_ion_hamiltonian,
    maxcut_hamiltonian,
    ring_maxcut_hamiltonian,
    tfim_hamiltonian,
)
from .backends import (
    CalibrationDrift,
    DeviceModel,
    fake_casablanca,
    fake_guadalupe,
    fake_jakarta,
    fake_montreal,
    get_device,
)
from .simulators import DensityMatrix, NoiseModel, NoisySimulator, StatevectorSimulator
from .engine import (
    EngineFuture,
    EngineResult,
    EngineStats,
    ExecutionEngine,
    FakeDeviceEngine,
    NoisyDensityMatrixEngine,
    StatevectorEngine,
    gather,
)
from .transpiler import ScheduledCircuit, TranspileResult, find_idle_windows, transpile
from .mitigation import DDConfig, GSConfig, MeasurementMitigator, insert_dd_sequences, uniform_dd
from .optimizers import COBYLA, SPSA, BatchObjective, NelderMead
from .vqe import (
    VQE,
    AdaptiveShotCollector,
    ExpectationEstimator,
    VQAApplication,
    build_applications,
    get_application,
)
from .vaqem import (
    STANDARD_STRATEGIES,
    IndependentWindowTuner,
    TuningBudget,
    VAQEMConfig,
    VAQEMPipeline,
    VAQEMRunResult,
)
from .frontend import (
    Decomposer,
    DecompositionRule,
    IngestedProgram,
    IngestStats,
    ResourceLimits,
    circuit_from_json,
    circuit_to_json,
    circuit_to_qasm,
    ingest_json,
    ingest_qasm,
    parse_qasm,
    schedule_from_json,
    schedule_to_json,
)
from .metrics import geometric_mean, hellinger_fidelity
from .analysis import ApplicationResult, EvaluationSummary, fraction_of_optimal, improvement_over_baseline
from .runtime import ExecutionTimeModel, QueueModel, RuntimeSession

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError", "CircuitError", "ParameterError", "SimulationError", "NoiseModelError",
    "TranspilerError", "BackendError", "MitigationError", "OptimizerError", "VQEError",
    "VAQEMError", "RuntimeSessionError",
    "IngestError", "ParseError", "ValidationError", "ResourceLimitError", "DecompositionError",
    # circuits
    "QuantumCircuit", "Parameter", "ParameterVector", "efficient_su2", "uccsd_like_ansatz",
    "qaoa_ansatz", "hahn_echo_microbenchmark", "idle_window_microbenchmark",
    # operators
    "PauliString", "PauliSum", "tfim_hamiltonian", "h2_hamiltonian", "lithium_ion_hamiltonian",
    "lih_hamiltonian", "maxcut_hamiltonian", "ring_maxcut_hamiltonian",
    # backends
    "DeviceModel", "CalibrationDrift", "fake_casablanca", "fake_jakarta", "fake_guadalupe",
    "fake_montreal", "get_device",
    # simulators
    "StatevectorSimulator", "NoisySimulator", "NoiseModel", "DensityMatrix",
    # engine
    "ExecutionEngine", "EngineResult", "EngineStats", "StatevectorEngine",
    "NoisyDensityMatrixEngine", "FakeDeviceEngine", "EngineFuture", "gather",
    # transpiler
    "transpile", "TranspileResult", "ScheduledCircuit", "find_idle_windows",
    # mitigation
    "DDConfig", "GSConfig", "insert_dd_sequences", "uniform_dd", "MeasurementMitigator",
    # optimizers
    "SPSA", "NelderMead", "COBYLA", "BatchObjective",
    # vqe
    "VQE", "ExpectationEstimator", "AdaptiveShotCollector", "VQAApplication",
    "build_applications", "get_application",
    # vaqem
    "VAQEMPipeline", "VAQEMRunResult", "VAQEMConfig", "TuningBudget", "IndependentWindowTuner",
    "STANDARD_STRATEGIES",
    # frontend (external-program ingestion, docs/ingestion.md)
    "ingest_qasm", "ingest_json", "parse_qasm", "circuit_to_qasm",
    "circuit_to_json", "circuit_from_json", "schedule_to_json", "schedule_from_json",
    "Decomposer", "DecompositionRule", "ResourceLimits", "IngestedProgram", "IngestStats",
    # metrics / analysis / runtime
    "hellinger_fidelity", "geometric_mean", "fraction_of_optimal", "improvement_over_baseline",
    "ApplicationResult", "EvaluationSummary", "RuntimeSession", "QueueModel", "ExecutionTimeModel",
]
