"""Adaptive allocation of a shot budget across Pauli measurement groups.

Estimating ``<H> = c_I + Σ_i <G_i>`` from samples spends shots on every
qubit-wise-commuting measurement group ``G_i`` of the Hamiltonian.  Splitting
a budget ``S`` uniformly is wasteful: the estimator variance is
``Σ_i σ_i² / s_i`` (``σ_i²`` the single-shot variance of group ``i``,
``s_i`` its shots), which for a fixed ``Σ s_i = S`` is minimised by Neyman
allocation ``s_i ∝ σ_i``.  The per-group variances are not known up front —
they depend on the prepared state — so :class:`AdaptiveShotCollector`
estimates them *while collecting*, in the style of Cirq's
``PauliStringSampleCollector``:

1. a uniform warm-up round measures every group and yields first variance
   estimates (plug-in: ``E[g²] − E[g]²`` over the sampled distribution,
   where ``g(b) = Σ_terms coeff · sign(b)``);
2. every subsequent round re-allocates its budget proportionally to the
   observed ``σ_i`` (largest-remainder rounding, so each round's total is
   exact) and refines the running per-group estimates;
3. collection stops when the budget is exhausted or the estimated standard
   error of ``<H>`` reaches ``target_stderr``.

Every round is submitted through
:meth:`~repro.vqe.expectation.ExpectationEstimator.submit_batch` — one
submission per measurement group, all in flight together — so rounds stream
through the engine's slot scheduler and the ansatz execution is engine-cached
across all groups and rounds (the noisy evolution runs **once**; only the
measurement/sampling stage repeats).  Each (round, group) submission carries
its own seed derived via :func:`repro.engine.fingerprint.derive_seed`, which
keeps rounds statistically independent *and* the whole collection
bit-reproducible: without an explicit per-call seed, a seeded engine would
serve every repeated round the identical cached sample.

Per-group totals are pooled shot-weighted, so the final value equals what a
single measurement of each group with its total shots would estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..engine.fingerprint import derive_seed
from ..exceptions import VQEError
from ..operators.pauli import MeasurementGroup, PauliSum
from ..transpiler.scheduling import ScheduledCircuit
from .expectation import ExpectationEstimator


@dataclass
class GroupEstimate:
    """Running shot-weighted estimate for one measurement group."""

    basis: str
    shots: int = 0
    value: float = 0.0
    variance: float = 0.0  # pooled single-shot variance estimate

    def fold(self, shots: int, value: float, variance: float) -> None:
        total = self.shots + shots
        if total == 0:
            return
        self.value = (self.value * self.shots + value * shots) / total
        self.variance = (self.variance * self.shots + variance * shots) / total
        self.shots = total


@dataclass
class CollectionResult:
    """Outcome of one adaptive collection run."""

    value: float
    stderr: float
    shots_used: int
    rounds: int
    #: One executed measurement circuit per (round, group) submission with a
    #: non-zero allocation — the convergence-cost metric, not wall-clock.
    circuits_executed: int
    groups: List[GroupEstimate] = field(default_factory=list)
    #: Per-round per-group allocations, ``round_allocations[r][g]`` shots.
    round_allocations: List[List[int]] = field(default_factory=list)

    @property
    def shots_per_group(self) -> List[int]:
        return [group.shots for group in self.groups]

    def __repr__(self):
        return (
            f"CollectionResult(value={self.value:.6f}, stderr={self.stderr:.2e}, "
            f"shots={self.shots_used}, rounds={self.rounds})"
        )


def allocate_shots(budget: int, weights: Sequence[float]) -> List[int]:
    """Split ``budget`` shots proportionally to ``weights``, exactly.

    Largest-remainder rounding: the returned allocations sum to ``budget``
    bit-exactly, and any group whose weight is at least the mean weight
    receives at least the uniform share ``budget // len(weights)`` (its quota
    is ≥ ``budget / n`` and rounding down costs less than one shot).
    Non-positive or degenerate weights fall back to a uniform split.
    """
    num_groups = len(weights)
    if num_groups == 0:
        raise VQEError("cannot allocate shots over zero measurement groups")
    if budget <= 0:
        return [0] * num_groups
    cleaned = [max(0.0, float(w)) for w in weights]
    total_weight = sum(cleaned)
    if total_weight <= 0.0:
        cleaned = [1.0] * num_groups
        total_weight = float(num_groups)
    quotas = [budget * w / total_weight for w in cleaned]
    allocations = [int(np.floor(q)) for q in quotas]
    remainder = budget - sum(allocations)
    by_fraction = sorted(
        range(num_groups), key=lambda i: (-(quotas[i] - allocations[i]), i)
    )
    for index in by_fraction[:remainder]:
        allocations[index] += 1
    return allocations


def group_distribution_moments(
    probabilities: np.ndarray, group: MeasurementGroup, num_bits: int
) -> tuple:
    """(mean, single-shot variance) of the group observable under a sampled
    outcome distribution.

    ``g(b) = Σ_terms coeff · sign(b)`` is the value one shot contributes; the
    plug-in variance is ``E[g²] − E[g]²`` over the distribution.  Clamped at
    zero — mitigated quasi-distributions can push the plug-in estimate
    slightly negative.
    """
    mean = 0.0
    second = 0.0
    for index, probability in enumerate(probabilities):
        if probability == 0.0:
            continue
        bitstring = format(index, f"0{num_bits}b")
        g = 0.0
        for pauli, coeff in group.terms:
            g += coeff * pauli.expectation_sign(bitstring)
        mean += probability * g
        second += probability * g * g
    return float(mean), float(max(second - mean * mean, 0.0))


class AdaptiveShotCollector:
    """Variance-adaptive streaming shot collection for one prepared state.

    Parameters
    ----------
    estimator:
        The :class:`~repro.vqe.expectation.ExpectationEstimator` measurements
        route through (its engine, noise model and mitigator apply).
    scheduled:
        The prepared (measured) schedule whose ``<H>`` is being collected.
    hamiltonian:
        The observable; its qubit-wise-commuting groups are the allocation
        targets.
    total_shots:
        The overall shot budget.  Exactly this many shots are allocated
        unless ``target_stderr`` stops collection early.
    round_shots:
        Budget per streaming round.  Defaults to ``max(32 · num_groups,
        total_shots // 8)`` so the warm-up measures every group and the
        allocation adapts several times within the budget.
    target_stderr:
        Optional early-stop threshold on the estimated standard error of the
        total.
    seed:
        Base seed for the per-(round, group) sampling seeds.  Defaults to the
        estimator engine's seed (or 0), keeping collection reproducible.
    priority:
        Slot-scheduler priority for the submitted rounds.
    """

    def __init__(
        self,
        estimator: ExpectationEstimator,
        scheduled: ScheduledCircuit,
        hamiltonian: PauliSum,
        total_shots: int,
        round_shots: Optional[int] = None,
        target_stderr: Optional[float] = None,
        seed: Optional[int] = None,
        priority: int = 0,
    ):
        if total_shots < 1:
            raise VQEError("total_shots must be at least 1")
        self.estimator = estimator
        self.scheduled = scheduled
        self.hamiltonian = hamiltonian
        self.total_shots = int(total_shots)
        self.groups = hamiltonian.group_commuting()
        if not self.groups:
            raise VQEError("the Hamiltonian has no non-identity terms to measure")
        if round_shots is None:
            round_shots = max(32 * len(self.groups), self.total_shots // 8)
        if round_shots < len(self.groups):
            raise VQEError(
                f"round_shots={round_shots} cannot cover {len(self.groups)} measurement groups"
            )
        self.round_shots = int(round_shots)
        self.target_stderr = target_stderr
        if seed is None:
            seed = getattr(estimator.engine, "seed", None)
        self.seed = 0 if seed is None else int(seed)
        self.priority = int(priority)
        #: One single-group observable per measurement group; the estimator
        #: measures each with its own shot count and seed.
        self._observables = []
        for group in self.groups:
            observable = PauliSum({}, num_qubits=hamiltonian.num_qubits)
            for pauli, coeff in group.terms:
                observable.add_term(pauli, coeff)
            self._observables.append(observable)

    # ------------------------------------------------------------------
    def _stderr(self, estimates: Sequence[GroupEstimate]) -> float:
        variance = 0.0
        for estimate in estimates:
            if estimate.shots > 0:
                variance += estimate.variance / estimate.shots
        return float(np.sqrt(variance))

    def collect(self) -> CollectionResult:
        """Run the streaming collection until budget exhaustion or target."""
        estimates = [GroupEstimate(basis=group.basis) for group in self.groups]
        round_allocations: List[List[int]] = []
        shots_used = 0
        circuits_executed = 0
        round_index = 0
        while shots_used < self.total_shots:
            budget = min(self.round_shots, self.total_shots - shots_used)
            if round_index == 0:
                # Warm-up: no variance information yet — uniform split.
                allocations = allocate_shots(budget, [1.0] * len(self.groups))
            else:
                # Neyman allocation s_i ∝ σ_i from the running estimates.
                allocations = allocate_shots(
                    budget, [np.sqrt(e.variance) for e in estimates]
                )
            # One submission per group with a non-zero allocation, all in
            # flight together: the round streams through the slot scheduler,
            # and the schedule body is engine-cached after the first group.
            submitted = []
            for group_index, shots in enumerate(allocations):
                if shots == 0:
                    continue
                seed = derive_seed(
                    self.seed, "shot-collector", str(round_index), str(group_index)
                )
                futures = self.estimator.submit_batch(
                    [self.scheduled],
                    self._observables[group_index],
                    shots=shots,
                    seed=seed,
                    priority=self.priority,
                )
                submitted.append((group_index, shots, futures[0]))
            for group_index, shots, future in submitted:
                result = future.result()
                value, variance = group_distribution_moments(
                    result.distributions[0],
                    self.groups[group_index],
                    self.hamiltonian.num_qubits,
                )
                estimates[group_index].fold(shots, value, variance)
                circuits_executed += 1
            round_allocations.append(allocations)
            shots_used += budget
            round_index += 1
            if self.target_stderr is not None and self._stderr(estimates) <= self.target_stderr:
                break
        total = self.hamiltonian.identity_coefficient() + sum(e.value for e in estimates)
        return CollectionResult(
            value=float(total),
            stderr=self._stderr(estimates),
            shots_used=shots_used,
            rounds=round_index,
            circuits_executed=circuits_executed,
            groups=estimates,
            round_allocations=round_allocations,
        )
