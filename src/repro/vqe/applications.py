"""The paper's seven VQE applications (§VII-A, Table I).

Five transverse-field Ising model problems on hardware-efficient SU2 ansatz
(varying qubit count, entanglement pattern and repetition count), the Li+ ion
on a 6-qubit SU2 ansatz, and H2 on a UCCSD-style ansatz.  Each benchmark
records the device it runs on and whether the paper tuned its angles through
Qiskit Runtime (the two chemistry applications) or in simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..backends.device import DeviceModel
from ..backends.fake import fake_casablanca, fake_guadalupe, fake_jakarta, fake_montreal
from ..circuits.circuit import QuantumCircuit
from ..circuits.library import efficient_su2, uccsd_like_ansatz
from ..exceptions import VQEError
from ..operators.hamiltonians import (
    h2_hamiltonian,
    lithium_ion_hamiltonian,
    tfim_hamiltonian,
)
from ..operators.pauli import PauliSum


@dataclass
class VQAApplication:
    """One evaluated benchmark: ansatz, Hamiltonian and execution assignment."""

    name: str
    ansatz: QuantumCircuit
    hamiltonian: PauliSum
    device_factory: Callable[[], DeviceModel]
    uses_runtime: bool = False
    description: str = ""

    @property
    def num_qubits(self) -> int:
        return self.ansatz.num_qubits

    @property
    def num_parameters(self) -> int:
        return self.ansatz.num_parameters

    def device(self) -> DeviceModel:
        return self.device_factory()

    def exact_ground_energy(self) -> float:
        """The classically simulated optimal value (Fig. 13 reference)."""
        return self.hamiltonian.ground_energy()

    def __repr__(self):
        return f"VQAApplication({self.name}, {self.num_qubits}q, {self.num_parameters} params)"


def _tfim_application(
    name: str,
    num_qubits: int,
    entanglement: str,
    reps: int,
    device_factory: Callable[[], DeviceModel],
) -> VQAApplication:
    return VQAApplication(
        name=name,
        ansatz=efficient_su2(num_qubits, reps=reps, entanglement=entanglement, name=name),
        hamiltonian=tfim_hamiltonian(num_qubits),
        device_factory=device_factory,
        uses_runtime=False,
        description=(
            f"TFIM ground state on a {num_qubits}-qubit SU2 ansatz with "
            f"{entanglement} entanglement and {reps} repetitions"
        ),
    )


def build_applications() -> List[VQAApplication]:
    """The seven benchmarks of Table I, in the paper's column order."""
    return [
        _tfim_application("HW_TFIM_6q_f_2r", 6, "full", 2, fake_casablanca),
        _tfim_application("HW_TFIM_6q_c_2r", 6, "circular", 2, fake_jakarta),
        _tfim_application("HW_TFIM_4q_c_6r", 4, "circular", 6, fake_guadalupe),
        _tfim_application("HW_TFIM_4q_f_6r", 4, "full", 6, fake_jakarta),
        _tfim_application("HW_TFIM_6q_c_4r", 6, "circular", 4, fake_casablanca),
        VQAApplication(
            name="HW_Li+",
            ansatz=efficient_su2(6, reps=3, entanglement="full", name="HW_Li+"),
            hamiltonian=lithium_ion_hamiltonian(),
            device_factory=fake_montreal,
            uses_runtime=True,
            description="Li+ ion surrogate on a 6-qubit SU2 ansatz (3 reps, full entanglement)",
        ),
        VQAApplication(
            name="UCCSD_H2",
            ansatz=uccsd_like_ansatz(),
            hamiltonian=h2_hamiltonian(),
            device_factory=fake_montreal,
            uses_runtime=True,
            description="H2 molecule on a UCCSD-style 4-qubit ansatz (Hartree-Fock reference)",
        ),
    ]


def get_application(name: str) -> VQAApplication:
    """Look up one benchmark by its paper name (case insensitive)."""
    for application in build_applications():
        if application.name.lower() == name.lower():
            return application
    available = [a.name for a in build_applications()]
    raise VQEError(f"unknown application '{name}'; available: {available}")


def application_names() -> List[str]:
    return [a.name for a in build_applications()]
