"""VQE: expectation estimation, the driver and the paper's applications."""

from .applications import VQAApplication, application_names, build_applications, get_application
from .expectation import ExpectationEstimator, ExpectationResult, ideal_expectation
from .shot_collector import (
    AdaptiveShotCollector,
    CollectionResult,
    GroupEstimate,
    allocate_shots,
)
from .vqe import VQE, VQEResult

__all__ = [
    "VQE",
    "VQEResult",
    "ExpectationEstimator",
    "ExpectationResult",
    "ideal_expectation",
    "AdaptiveShotCollector",
    "CollectionResult",
    "GroupEstimate",
    "allocate_shots",
    "VQAApplication",
    "build_applications",
    "get_application",
    "application_names",
]
