"""The VQE driver.

Ties together an ansatz, a Hamiltonian, a classical optimizer and an execution
backend (ideal statevector or noisy scheduled simulation).  The paper's
feasible flow tunes gate-rotation angles against the *ideal* simulator (or
Qiskit Runtime for the chemistry problems) and only then moves to the machine
for mitigation tuning; both execution modes are provided here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..backends.device import DeviceModel
from ..circuits.circuit import QuantumCircuit
from ..engine.density_engine import NoisyDensityMatrixEngine
from ..engine.statevector_engine import StatevectorEngine
from ..exceptions import VQEError
from ..mitigation.mem import MeasurementMitigator
from ..operators.pauli import PauliSum
from ..optimizers.base import OptimizationResult, Optimizer
from ..optimizers.spsa import SPSA
from ..simulators.noise_model import NoiseModel
from ..transpiler.pipeline import TranspileResult, transpile
from .expectation import ExpectationEstimator


@dataclass
class VQEResult:
    """Result of a VQE angle-tuning run."""

    optimal_parameters: np.ndarray
    optimal_value: float
    history: List[float] = field(default_factory=list)
    num_evaluations: int = 0
    execution_mode: str = "ideal"

    def __repr__(self):
        return (
            f"VQEResult(value={self.optimal_value:.6f}, evals={self.num_evaluations}, "
            f"mode={self.execution_mode})"
        )


class VQE:
    """Variational Quantum Eigensolver over a parameterised ansatz."""

    def __init__(
        self,
        ansatz: QuantumCircuit,
        hamiltonian: PauliSum,
        optimizer: Optional[Optimizer] = None,
        seed: int = 7,
        engine: Optional[StatevectorEngine] = None,
    ):
        if ansatz.num_qubits != hamiltonian.num_qubits:
            raise VQEError(
                f"ansatz has {ansatz.num_qubits} qubits but the Hamiltonian needs "
                f"{hamiltonian.num_qubits}"
            )
        self.ansatz = ansatz
        self.hamiltonian = hamiltonian
        self.optimizer = optimizer or SPSA(maxiter=80, seed=seed)
        self.seed = seed
        #: The ideal execution backend; inject a shared engine to pool its
        #: statevector/expectation caches across drivers.
        self.engine = engine or StatevectorEngine(seed=seed)

    # ------------------------------------------------------------------
    # Objective functions
    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        return self.ansatz.num_parameters

    def initial_point(self, scale: float = 0.1) -> np.ndarray:
        """A reproducible small-angle starting point."""
        rng = np.random.default_rng(self.seed)
        return rng.uniform(-scale * np.pi, scale * np.pi, self.num_parameters())

    def bind(self, parameters: Sequence[float]) -> QuantumCircuit:
        """The ansatz with numeric angles bound (no measurements)."""
        return self.ansatz.bind_parameters(list(parameters))

    def ideal_objective(self, parameters: Sequence[float]) -> float:
        """Noise-free ``<H>`` for a parameter vector."""
        return self.engine.expectation(self.bind(parameters), self.hamiltonian)

    def noisy_objective_factory(
        self,
        device: DeviceModel,
        noise_model: Optional[NoiseModel] = None,
        shots: Optional[int] = None,
        use_mem: bool = False,
        physical_qubits: Optional[Sequence[int]] = None,
        engine: Optional[NoisyDensityMatrixEngine] = None,
    ) -> Callable[[Sequence[float]], float]:
        """Build an objective that executes on the noisy scheduled simulator.

        Every call transpiles the bound ansatz, so this is the expensive mode;
        it is what the "machine execution" curves of Fig. 8 use.  All
        executions share one :class:`NoisyDensityMatrixEngine` (injected or
        created here), so replaying a parameter trajectory twice — e.g. with
        and without MEM — only simulates each distinct circuit once.
        """
        if noise_model is None and engine is not None:
            # An injected engine brings its own noise model; building a fresh
            # one here would fail the estimator's shared-model check below.
            noise_model = engine.noise_model
        noise_model = noise_model or NoiseModel.from_device(device)
        engine = engine or NoisyDensityMatrixEngine(noise_model, seed=self.seed)

        def objective(parameters: Sequence[float]) -> float:
            circuit = self.bind(parameters)
            circuit.measure_all()
            result = transpile(circuit, device, physical_qubits=physical_qubits)
            mitigator = None
            if use_mem:
                measured = result.scheduled.measured_positions()
                ordered = [pos for pos, _ in sorted(measured, key=lambda pair: pair[1])]
                mitigator = MeasurementMitigator.from_device(
                    device, [result.scheduled.physical_qubit(pos) for pos in ordered]
                )
            estimator = ExpectationEstimator(
                noise_model, shots=shots, mitigator=mitigator, seed=self.seed, engine=engine
            )
            return estimator.estimate(result.scheduled, self.hamiltonian).value

        return objective

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def run_ideal(self, initial_point: Optional[Sequence[float]] = None) -> VQEResult:
        """Tune angles against the ideal simulator (the paper's default)."""
        point = np.asarray(initial_point, dtype=float) if initial_point is not None else self.initial_point()
        result = self.optimizer.minimize(self.ideal_objective, point)
        return self._to_vqe_result(result, "ideal")

    def run_noisy(
        self,
        device: DeviceModel,
        noise_model: Optional[NoiseModel] = None,
        shots: Optional[int] = None,
        use_mem: bool = False,
        initial_point: Optional[Sequence[float]] = None,
    ) -> VQEResult:
        """Tune angles directly against the noisy machine model."""
        objective = self.noisy_objective_factory(device, noise_model, shots, use_mem)
        point = np.asarray(initial_point, dtype=float) if initial_point is not None else self.initial_point()
        result = self.optimizer.minimize(objective, point)
        return self._to_vqe_result(result, "noisy")

    def evaluate_trajectory_ideal(
        self,
        parameter_history: Sequence[np.ndarray],
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
    ) -> List[float]:
        """Ideal objective along a parameter trajectory (Fig. 8 top panel).

        The trajectory is submitted in chunks through the engine's
        asynchronous
        :meth:`~repro.engine.base.ExecutionEngine.submit_expectation_batch`,
        so binding later points overlaps evolving earlier ones;
        ``parallelism`` / ``max_workers`` select the engine's execution tier.
        Values equal per-point :meth:`ideal_objective` calls bit for bit.
        """
        futures: List = []
        chunk: List[QuantumCircuit] = []
        chunk_size = max(1, int(max_workers)) if max_workers is not None else 4
        for parameters in parameter_history:
            chunk.append(self.bind(parameters))
            if len(chunk) >= chunk_size:
                futures.extend(
                    self.engine.submit_expectation_batch(
                        chunk, self.hamiltonian, max_workers=max_workers,
                        parallelism=parallelism, submitter=self,
                    )
                )
                chunk = []
        if chunk:
            futures.extend(
                self.engine.submit_expectation_batch(
                    chunk, self.hamiltonian, max_workers=max_workers,
                    parallelism=parallelism, submitter=self,
                )
            )
        return [float(future.result()) for future in futures]

    def evaluate_trajectory_noisy(
        self,
        parameter_history: Sequence[np.ndarray],
        device: DeviceModel,
        noise_model: Optional[NoiseModel] = None,
        shots: Optional[int] = None,
        use_mem: bool = True,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
    ) -> List[float]:
        """Noisy objective along a parameter trajectory (Fig. 8 bottom panel).

        The replay is *pipelined* through the engine's asynchronous submit
        API: schedules are submitted in chunks as they come out of the
        transpiler, so transpilation of later points overlaps the noisy
        simulation of earlier ones on a shared
        :class:`NoisyDensityMatrixEngine`.  Repeated parameter vectors still
        cost one simulation and ``parallelism="process"`` spreads each chunk
        across cores; with ``shots=None`` (and, per the seeding contract,
        with a seed and finite shots too) the values are bit-identical to the
        historical blocking batch.
        """
        noise_model = noise_model or NoiseModel.from_device(device)
        engine = NoisyDensityMatrixEngine(noise_model, seed=self.seed)
        estimator: Optional[ExpectationEstimator] = None
        futures: List = []
        chunk: List = []
        # One chunk per worker-load keeps the scheduler busy while the next
        # chunk transpiles; the chunk boundaries cannot change any value.
        chunk_size = max(1, int(max_workers)) if max_workers is not None else 4
        for parameters in parameter_history:
            circuit = self.bind(parameters)
            circuit.measure_all()
            result = transpile(circuit, device)
            if estimator is None:
                mitigator: Optional[MeasurementMitigator] = None
                if use_mem:
                    # Identical for every point: the ansatz (and therefore the
                    # measured layout) does not change along a trajectory.
                    measured = result.scheduled.measured_positions()
                    ordered = [pos for pos, _ in sorted(measured, key=lambda pair: pair[1])]
                    mitigator = MeasurementMitigator.from_device(
                        device, [result.scheduled.physical_qubit(pos) for pos in ordered]
                    )
                estimator = ExpectationEstimator(
                    noise_model, shots=shots, mitigator=mitigator, seed=self.seed, engine=engine
                )
            chunk.append(result.scheduled)
            if len(chunk) >= chunk_size:
                futures.extend(
                    estimator.submit_batch(
                        chunk, self.hamiltonian, max_workers=max_workers, parallelism=parallelism
                    )
                )
                chunk = []
        if chunk:
            futures.extend(
                estimator.submit_batch(
                    chunk, self.hamiltonian, max_workers=max_workers, parallelism=parallelism
                )
            )
        return [float(future.result().value) for future in futures]

    @staticmethod
    def _to_vqe_result(result: OptimizationResult, mode: str) -> VQEResult:
        return VQEResult(
            optimal_parameters=np.asarray(result.optimal_parameters, dtype=float),
            optimal_value=float(result.optimal_value),
            history=list(result.history),
            num_evaluations=result.num_evaluations,
            execution_mode=mode,
        )
