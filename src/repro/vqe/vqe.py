"""The VQE driver.

Ties together an ansatz, a Hamiltonian, a classical optimizer and an execution
backend (ideal statevector or noisy scheduled simulation).  The paper's
feasible flow tunes gate-rotation angles against the *ideal* simulator (or
Qiskit Runtime for the chemistry problems) and only then moves to the machine
for mitigation tuning; both execution modes are provided here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..backends.device import DeviceModel
from ..circuits.circuit import QuantumCircuit
from ..engine.density_engine import NoisyDensityMatrixEngine
from ..engine.statevector_engine import StatevectorEngine
from ..exceptions import VQEError
from ..mitigation.mem import MeasurementMitigator
from ..operators.pauli import PauliSum
from ..optimizers.base import BatchObjective, OptimizationResult, Optimizer
from ..optimizers.spsa import SPSA
from ..simulators.noise_model import NoiseModel
from ..transpiler.pipeline import TranspileResult, transpile
from .expectation import ExpectationEstimator


@dataclass
class VQEResult:
    """Result of a VQE angle-tuning run."""

    optimal_parameters: np.ndarray
    optimal_value: float
    history: List[float] = field(default_factory=list)
    num_evaluations: int = 0
    execution_mode: str = "ideal"

    def __repr__(self):
        return (
            f"VQEResult(value={self.optimal_value:.6f}, evals={self.num_evaluations}, "
            f"mode={self.execution_mode})"
        )


class VQE:
    """Variational Quantum Eigensolver over a parameterised ansatz."""

    def __init__(
        self,
        ansatz: QuantumCircuit,
        hamiltonian: PauliSum,
        optimizer: Optional[Optimizer] = None,
        seed: int = 7,
        engine: Optional[StatevectorEngine] = None,
    ):
        if ansatz.num_qubits != hamiltonian.num_qubits:
            raise VQEError(
                f"ansatz has {ansatz.num_qubits} qubits but the Hamiltonian needs "
                f"{hamiltonian.num_qubits}"
            )
        self.ansatz = ansatz
        self.hamiltonian = hamiltonian
        self.optimizer = optimizer or SPSA(maxiter=80, seed=seed)
        self.seed = seed
        #: The ideal execution backend; inject a shared engine to pool its
        #: statevector/expectation caches across drivers.
        self.engine = engine or StatevectorEngine(seed=seed)

    # ------------------------------------------------------------------
    # Objective functions
    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        return self.ansatz.num_parameters

    def initial_point(self, scale: float = 0.1) -> np.ndarray:
        """A reproducible small-angle starting point."""
        rng = np.random.default_rng(self.seed)
        return rng.uniform(-scale * np.pi, scale * np.pi, self.num_parameters())

    def bind(self, parameters: Sequence[float]) -> QuantumCircuit:
        """The ansatz with numeric angles bound (no measurements)."""
        return self.ansatz.bind_parameters(list(parameters))

    def ideal_objective(self, parameters: Sequence[float]) -> float:
        """Noise-free ``<H>`` for a parameter vector."""
        return self.engine.expectation(self.bind(parameters), self.hamiltonian)

    def noisy_objective_factory(
        self,
        device: DeviceModel,
        noise_model: Optional[NoiseModel] = None,
        shots: Optional[int] = None,
        use_mem: bool = False,
        physical_qubits: Optional[Sequence[int]] = None,
        engine: Optional[NoisyDensityMatrixEngine] = None,
    ) -> Callable[[Sequence[float]], float]:
        """Build an objective that executes on the noisy scheduled simulator.

        Every call transpiles the bound ansatz, so this is the expensive mode;
        it is what the "machine execution" curves of Fig. 8 use.  All
        executions share one :class:`NoisyDensityMatrixEngine` (injected or
        created here), so replaying a parameter trajectory twice — e.g. with
        and without MEM — only simulates each distinct circuit once.
        """
        if noise_model is None and engine is not None:
            # An injected engine brings its own noise model; building a fresh
            # one here would fail the estimator's shared-model check below.
            noise_model = engine.noise_model
        noise_model = noise_model or NoiseModel.from_device(device)
        engine = engine or NoisyDensityMatrixEngine(noise_model, seed=self.seed)

        def objective(parameters: Sequence[float]) -> float:
            circuit = self.bind(parameters)
            circuit.measure_all()
            result = transpile(circuit, device, physical_qubits=physical_qubits)
            mitigator = None
            if use_mem:
                measured = result.scheduled.measured_positions()
                ordered = [pos for pos, _ in sorted(measured, key=lambda pair: pair[1])]
                mitigator = MeasurementMitigator.from_device(
                    device, [result.scheduled.physical_qubit(pos) for pos in ordered]
                )
            estimator = ExpectationEstimator(
                noise_model, shots=shots, mitigator=mitigator, seed=self.seed, engine=engine
            )
            return estimator.estimate(result.scheduled, self.hamiltonian).value

        return objective

    def ideal_batch_objective(self) -> BatchObjective:
        """A :class:`~repro.optimizers.base.BatchObjective` over the ideal engine.

        ``evaluate_batch`` binds every point and submits the whole batch
        through the engine's asynchronous
        :meth:`~repro.engine.base.ExecutionEngine.submit_expectation_batch`,
        so a batch-aware optimizer (SPSA's ``±c_k·Δ`` pairs) pipelines all of
        a step's circuits through the slot scheduler in one submission.
        Exact expectations carry no randomness, so values are bit-identical
        to element-wise :meth:`ideal_objective` calls.
        """
        return _IdealBatchObjective(self)

    def noisy_batch_objective_factory(
        self,
        device: DeviceModel,
        noise_model: Optional[NoiseModel] = None,
        shots: Optional[int] = None,
        use_mem: bool = False,
        physical_qubits: Optional[Sequence[int]] = None,
        engine: Optional[NoisyDensityMatrixEngine] = None,
    ) -> BatchObjective:
        """A :class:`~repro.optimizers.base.BatchObjective` on the noisy backend.

        Like :meth:`noisy_objective_factory` but batch-capable: every point of
        a batch is transpiled and the resulting schedules are submitted as one
        :meth:`~repro.vqe.expectation.ExpectationEstimator.submit_batch` call,
        so simulation of early points overlaps transpilation-free dispatch of
        the rest through the engine's slot scheduler.  Sampling randomness
        follows the *content-derived* engine seeding contract (not the
        estimator's stateful generator), so single-point calls, batches, and
        every execution tier agree bit for bit; with ``shots=None`` the
        values also equal the serial :meth:`noisy_objective_factory` path.
        """
        if noise_model is None and engine is not None:
            noise_model = engine.noise_model
        noise_model = noise_model or NoiseModel.from_device(device)
        engine = engine or NoisyDensityMatrixEngine(noise_model, seed=self.seed)
        return _NoisyBatchObjective(
            self, device, noise_model, engine, shots, use_mem, physical_qubits
        )

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def run_ideal(
        self, initial_point: Optional[Sequence[float]] = None, batched: bool = False
    ) -> VQEResult:
        """Tune angles against the ideal simulator (the paper's default).

        ``batched=True`` hands the optimizer the batch-capable objective
        (:meth:`ideal_batch_objective`); batch-aware optimizers then submit
        each step's evaluations as one engine batch.  Values are identical
        either way — exact expectations carry no randomness.
        """
        point = np.asarray(initial_point, dtype=float) if initial_point is not None else self.initial_point()
        objective = self.ideal_batch_objective() if batched else self.ideal_objective
        result = self.optimizer.minimize(objective, point)
        return self._to_vqe_result(result, "ideal")

    def run_noisy(
        self,
        device: DeviceModel,
        noise_model: Optional[NoiseModel] = None,
        shots: Optional[int] = None,
        use_mem: bool = False,
        initial_point: Optional[Sequence[float]] = None,
        batched: bool = False,
    ) -> VQEResult:
        """Tune angles directly against the noisy machine model.

        ``batched=True`` routes evaluations through
        :meth:`noisy_batch_objective_factory` (engine-batched submissions with
        content-derived sampling seeds) instead of the per-call serial
        objective.
        """
        if batched:
            objective = self.noisy_batch_objective_factory(device, noise_model, shots, use_mem)
        else:
            objective = self.noisy_objective_factory(device, noise_model, shots, use_mem)
        point = np.asarray(initial_point, dtype=float) if initial_point is not None else self.initial_point()
        result = self.optimizer.minimize(objective, point)
        return self._to_vqe_result(result, "noisy")

    def evaluate_trajectory_ideal(
        self,
        parameter_history: Sequence[np.ndarray],
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
    ) -> List[float]:
        """Ideal objective along a parameter trajectory (Fig. 8 top panel).

        The trajectory is submitted in chunks through the engine's
        asynchronous
        :meth:`~repro.engine.base.ExecutionEngine.submit_expectation_batch`,
        so binding later points overlaps evolving earlier ones;
        ``parallelism`` / ``max_workers`` select the engine's execution tier.
        Values equal per-point :meth:`ideal_objective` calls bit for bit.
        """
        futures: List = []
        chunk: List[QuantumCircuit] = []
        chunk_size = max(1, int(max_workers)) if max_workers is not None else 4
        for parameters in parameter_history:
            chunk.append(self.bind(parameters))
            if len(chunk) >= chunk_size:
                futures.extend(
                    self.engine.submit_expectation_batch(
                        chunk, self.hamiltonian, max_workers=max_workers,
                        parallelism=parallelism, submitter=self,
                    )
                )
                chunk = []
        if chunk:
            futures.extend(
                self.engine.submit_expectation_batch(
                    chunk, self.hamiltonian, max_workers=max_workers,
                    parallelism=parallelism, submitter=self,
                )
            )
        return [float(future.result()) for future in futures]

    def evaluate_trajectory_noisy(
        self,
        parameter_history: Sequence[np.ndarray],
        device: DeviceModel,
        noise_model: Optional[NoiseModel] = None,
        shots: Optional[int] = None,
        use_mem: bool = True,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
    ) -> List[float]:
        """Noisy objective along a parameter trajectory (Fig. 8 bottom panel).

        The replay is *pipelined* through the engine's asynchronous submit
        API: schedules are submitted in chunks as they come out of the
        transpiler, so transpilation of later points overlaps the noisy
        simulation of earlier ones on a shared
        :class:`NoisyDensityMatrixEngine`.  Repeated parameter vectors still
        cost one simulation and ``parallelism="process"`` spreads each chunk
        across cores; with ``shots=None`` (and, per the seeding contract,
        with a seed and finite shots too) the values are bit-identical to the
        historical blocking batch.
        """
        noise_model = noise_model or NoiseModel.from_device(device)
        engine = NoisyDensityMatrixEngine(noise_model, seed=self.seed)
        estimator: Optional[ExpectationEstimator] = None
        futures: List = []
        chunk: List = []
        # One chunk per worker-load keeps the scheduler busy while the next
        # chunk transpiles; the chunk boundaries cannot change any value.
        chunk_size = max(1, int(max_workers)) if max_workers is not None else 4
        for parameters in parameter_history:
            circuit = self.bind(parameters)
            circuit.measure_all()
            result = transpile(circuit, device)
            if estimator is None:
                mitigator: Optional[MeasurementMitigator] = None
                if use_mem:
                    # Identical for every point: the ansatz (and therefore the
                    # measured layout) does not change along a trajectory.
                    measured = result.scheduled.measured_positions()
                    ordered = [pos for pos, _ in sorted(measured, key=lambda pair: pair[1])]
                    mitigator = MeasurementMitigator.from_device(
                        device, [result.scheduled.physical_qubit(pos) for pos in ordered]
                    )
                estimator = ExpectationEstimator(
                    noise_model, shots=shots, mitigator=mitigator, seed=self.seed, engine=engine
                )
            chunk.append(result.scheduled)
            if len(chunk) >= chunk_size:
                futures.extend(
                    estimator.submit_batch(
                        chunk, self.hamiltonian, max_workers=max_workers, parallelism=parallelism
                    )
                )
                chunk = []
        if chunk:
            futures.extend(
                estimator.submit_batch(
                    chunk, self.hamiltonian, max_workers=max_workers, parallelism=parallelism
                )
            )
        return [float(future.result().value) for future in futures]

    @staticmethod
    def _to_vqe_result(result: OptimizationResult, mode: str) -> VQEResult:
        return VQEResult(
            optimal_parameters=np.asarray(result.optimal_parameters, dtype=float),
            optimal_value=float(result.optimal_value),
            history=list(result.history),
            num_evaluations=result.num_evaluations,
            execution_mode=mode,
        )


class _IdealBatchObjective:
    """Batch-capable ideal objective (see :meth:`VQE.ideal_batch_objective`)."""

    def __init__(self, vqe: VQE):
        self._vqe = vqe

    def __call__(self, parameters: Sequence[float]) -> float:
        return self.evaluate_batch([np.asarray(parameters, dtype=float)])[0]

    def evaluate_batch(self, points: Sequence[np.ndarray]) -> List[float]:
        circuits = [self._vqe.bind(p) for p in points]
        futures = self._vqe.engine.submit_expectation_batch(
            circuits, self._vqe.hamiltonian, submitter=self
        )
        return [float(future.result()) for future in futures]


class _NoisyBatchObjective:
    """Batch-capable noisy objective (see :meth:`VQE.noisy_batch_objective_factory`).

    The estimator (and, with MEM, the mitigator) is built lazily on the first
    evaluation — the mitigator needs a transpiled schedule to read the
    measured layout, which is identical for every point of a trajectory.
    Sampling randomness is content-derived (`seed=None` estimator, seeded
    engine), so values are independent of batching and execution tier.
    """

    def __init__(
        self,
        vqe: VQE,
        device: DeviceModel,
        noise_model: NoiseModel,
        engine: NoisyDensityMatrixEngine,
        shots: Optional[int],
        use_mem: bool,
        physical_qubits: Optional[Sequence[int]],
    ):
        self._vqe = vqe
        self._device = device
        self._noise_model = noise_model
        self._engine = engine
        self._shots = shots
        self._use_mem = use_mem
        self._physical_qubits = physical_qubits
        self._estimator: Optional[ExpectationEstimator] = None

    def __call__(self, parameters: Sequence[float]) -> float:
        return self.evaluate_batch([np.asarray(parameters, dtype=float)])[0]

    def _transpile(self, parameters: np.ndarray) -> TranspileResult:
        circuit = self._vqe.bind(parameters)
        circuit.measure_all()
        return transpile(circuit, self._device, physical_qubits=self._physical_qubits)

    def _ensure_estimator(self, result: TranspileResult) -> ExpectationEstimator:
        if self._estimator is None:
            mitigator: Optional[MeasurementMitigator] = None
            if self._use_mem:
                measured = result.scheduled.measured_positions()
                ordered = [pos for pos, _ in sorted(measured, key=lambda pair: pair[1])]
                mitigator = MeasurementMitigator.from_device(
                    self._device,
                    [result.scheduled.physical_qubit(pos) for pos in ordered],
                )
            self._estimator = ExpectationEstimator(
                self._noise_model, shots=self._shots, mitigator=mitigator, engine=self._engine
            )
        return self._estimator

    def evaluate_batch(self, points: Sequence[np.ndarray]) -> List[float]:
        schedules = []
        estimator: Optional[ExpectationEstimator] = None
        for parameters in points:
            result = self._transpile(np.asarray(parameters, dtype=float))
            estimator = self._ensure_estimator(result)
            schedules.append(result.scheduled)
        if estimator is None:
            return []
        futures = estimator.submit_batch(schedules, self._vqe.hamiltonian)
        return [float(future.result().value) for future in futures]
