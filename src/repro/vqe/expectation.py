"""Expectation-value estimation of Pauli-sum observables on noisy hardware.

The estimator mirrors how a machine measures a VQE objective:

1. the (scheduled, possibly mitigation-modified) ansatz circuit is executed on
   the noisy backend, producing the pre-measurement density matrix;
2. for every qubit-wise-commuting measurement group of the Hamiltonian, the
   appropriate single-qubit basis rotations are applied and the Z-basis
   outcome distribution is extracted;
3. readout error distorts the distribution, measurement error mitigation
   (optionally) un-distorts it, shot noise (optionally) is added by sampling;
4. the weighted Pauli expectation values are summed.

Execution is routed through a
:class:`~repro.engine.density_engine.NoisyDensityMatrixEngine`, so a single
noisy execution of the ansatz body is shared by all measurement groups *and*
by every estimator call that submits content-identical schedules — plus, via
the engine's prefix-reuse fast path, partially shared by near-identical
schedules such as the window tuner's per-window candidates.
:meth:`ExpectationEstimator.estimate_batch` exposes the batched path
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..engine.base import ExpectationData
from ..engine.density_engine import NoisyDensityMatrixEngine, measure_pauli_sum
from ..engine.futures import EngineFuture
from ..exceptions import VQEError
from ..mitigation.mem import MeasurementMitigator
from ..operators.pauli import PauliSum
from ..simulators.noise_model import NoiseModel
from ..transpiler.scheduling import ScheduledCircuit

#: Sentinel distinguishing "use the estimator's configured shots" from an
#: explicit ``shots=None`` (exact infinite-shot) override.
_DEFAULT_SHOTS = object()


@dataclass
class ExpectationResult:
    """The estimated objective value plus per-group diagnostics."""

    value: float
    group_values: List[float]
    distributions: List[np.ndarray]
    shots_per_group: Optional[int]

    def __repr__(self):
        return f"ExpectationResult(value={self.value:.6f}, groups={len(self.group_values)})"


class ExpectationEstimator:
    """Estimates ``<H>`` for scheduled circuits under a noise model.

    Parameters
    ----------
    noise_model:
        The device noise model executions run under.
    shots:
        Shots per measurement group (``None`` = exact infinite-shot limit).
    mitigator:
        Optional measurement error mitigation applied to each distribution.
    seed:
        Seeds the estimator's sampling generator (sequential :meth:`estimate`
        calls consume it statefully, preserving historical behaviour).
    engine:
        The execution engine to route runs through.  By default a private
        :class:`NoisyDensityMatrixEngine` is created; inject a shared engine
        to pool caches across estimators (as :class:`~repro.vaqem.framework.
        VAQEMPipeline` does).  A shared engine is also the multi-tenant
        story: each estimator submits under its own identity, so the
        engine's slot scheduler overlaps independent estimators' batches and
        serves them fairly (see ``docs/scheduler.md``).
    """

    def __init__(
        self,
        noise_model: NoiseModel,
        shots: Optional[int] = None,
        mitigator: Optional[MeasurementMitigator] = None,
        seed: Optional[int] = None,
        engine: Optional[NoisyDensityMatrixEngine] = None,
    ):
        self.noise_model = noise_model
        self.shots = shots
        self.mitigator = mitigator
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.engine = engine or NoisyDensityMatrixEngine(noise_model, seed=seed)
        if self.engine.noise_model is not noise_model:
            raise VQEError("the injected engine must share the estimator's noise model")

    # ------------------------------------------------------------------
    def estimate(self, scheduled: ScheduledCircuit, hamiltonian: PauliSum) -> ExpectationResult:
        """Estimate the Hamiltonian expectation for one scheduled circuit.

        The noisy execution is engine-cached; shot sampling (when enabled)
        draws from the estimator's own stateful generator, so a seeded
        estimator reproduces the exact historical sequence of values.
        """
        state_for = getattr(self.engine, "measurement_state", self.engine.density_matrix)
        state = state_for(scheduled)
        data = measure_pauli_sum(
            state,
            scheduled,
            hamiltonian,
            self.noise_model,
            shots=self.shots,
            mitigator=self.mitigator,
            rng=self._rng if self.shots is not None else None,
        )
        return self._to_result(data)

    def estimate_batch(
        self,
        schedules: Sequence[ScheduledCircuit],
        hamiltonian: PauliSum,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
        shots=_DEFAULT_SHOTS,
        seed: Optional[int] = None,
    ) -> List[ExpectationResult]:
        """Estimate ``<H>`` for many schedules through the engine's batch path.

        Follows the engine seeding contract: per-item sampling randomness is
        derived from content, so the output is order-stable and identical
        across repeated invocations.  With ``shots=None`` (exact mode) the
        values equal sequential :meth:`estimate` calls bit for bit.

        ``parallelism="serial" | "thread" | "process"`` and ``max_workers``
        select the engine's execution tier (see
        :meth:`~repro.engine.base.ExecutionEngine.run_batch`); results are
        identical across tiers.  ``shots`` / ``seed`` override the
        estimator's configured shot count and the content-derived sampling
        seed *for this batch only* — the adaptive shot collector uses both to
        give every collection round its own budget and independent
        randomness (an engine-cached sampled value is otherwise bit-identical
        on repeat calls).
        """
        data = self.engine.expectation_batch_full(
            schedules,
            hamiltonian,
            shots=self.shots if shots is _DEFAULT_SHOTS else shots,
            mitigator=self.mitigator,
            max_workers=max_workers,
            parallelism=parallelism,
            seed=seed,
        )
        effective = self.shots if shots is _DEFAULT_SHOTS else shots
        return [self._to_result(item, effective) for item in data]

    def submit_batch(
        self,
        schedules: Sequence[ScheduledCircuit],
        hamiltonian: PauliSum,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
        priority: int = 0,
        shots=_DEFAULT_SHOTS,
        seed: Optional[int] = None,
    ) -> List["EngineFuture"]:
        """Asynchronous :meth:`estimate_batch`: one future per schedule.

        The futures resolve to :class:`ExpectationResult` objects and are
        ordered like the input.  Execution goes through the engine's
        persistent slot scheduler (see ``docs/scheduler.md``) with *this
        estimator* as the submitter: several estimators sharing one engine
        are served round-robin and their independent batches overlap up to
        the engine's per-tier slots, while this estimator's own batches stay
        FIFO.  ``priority`` (higher first) nudges the scheduler between
        runnable batches of different submitters.  ``shots`` / ``seed``
        override the configured shot count and sampling seed for this batch,
        as on :meth:`estimate_batch`.  The resolved values are bit-identical
        to a blocking :meth:`estimate_batch` call on any tier; the caller can
        keep building further schedules while these execute — the pipelined
        window tuner and the adaptive shot collector do exactly that.
        """
        effective = self.shots if shots is _DEFAULT_SHOTS else shots
        futures = self.engine.submit_expectation_batch_full(
            schedules,
            hamiltonian,
            shots=effective,
            mitigator=self.mitigator,
            max_workers=max_workers,
            parallelism=parallelism,
            submitter=self,
            priority=priority,
            seed=seed,
        )
        return [
            future.map(lambda data, shots=effective: self._to_result(data, shots))
            for future in futures
        ]

    def _to_result(self, data: ExpectationData, shots=_DEFAULT_SHOTS) -> ExpectationResult:
        return ExpectationResult(
            value=data.value,
            group_values=list(data.group_values),
            distributions=list(data.distributions),
            shots_per_group=self.shots if shots is _DEFAULT_SHOTS else shots,
        )


def ideal_expectation(circuit, hamiltonian: PauliSum) -> float:
    """Noise-free expectation of a logical (unscheduled) circuit."""
    from ..simulators.statevector import StatevectorSimulator

    return StatevectorSimulator().expectation(circuit, hamiltonian)
