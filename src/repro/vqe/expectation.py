"""Expectation-value estimation of Pauli-sum observables on noisy hardware.

The estimator mirrors how a machine measures a VQE objective:

1. the (scheduled, possibly mitigation-modified) ansatz circuit is executed on
   the noisy simulator, producing the pre-measurement density matrix;
2. for every qubit-wise-commuting measurement group of the Hamiltonian, the
   appropriate single-qubit basis rotations are applied and the Z-basis
   outcome distribution is extracted;
3. readout error distorts the distribution, measurement error mitigation
   (optionally) un-distorts it, shot noise (optionally) is added by sampling;
4. the weighted Pauli expectation values are summed.

A single noisy execution of the ansatz body is shared by all measurement
groups, which keeps VAQEM's per-window tuning sweeps affordable while
faithfully modelling the per-basis measurement process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.gates import Gate
from ..exceptions import VQEError
from ..mitigation.mem import MeasurementMitigator
from ..operators.pauli import MeasurementGroup, PauliSum
from ..simulators.density_matrix import DensityMatrix
from ..simulators.noise_model import NoiseModel
from ..simulators.noisy_simulator import NoisySimulator
from ..simulators.readout import apply_readout_error, probabilities_to_counts
from ..transpiler.scheduling import ScheduledCircuit

_H_MATRIX = Gate("h", 1).matrix()
_SDG_MATRIX = Gate("sdg", 1).matrix()


@dataclass
class ExpectationResult:
    """The estimated objective value plus per-group diagnostics."""

    value: float
    group_values: List[float]
    distributions: List[np.ndarray]
    shots_per_group: Optional[int]

    def __repr__(self):
        return f"ExpectationResult(value={self.value:.6f}, groups={len(self.group_values)})"


class ExpectationEstimator:
    """Estimates ``<H>`` for scheduled circuits under a noise model."""

    def __init__(
        self,
        noise_model: NoiseModel,
        shots: Optional[int] = None,
        mitigator: Optional[MeasurementMitigator] = None,
        seed: Optional[int] = None,
    ):
        self.noise_model = noise_model
        self.shots = shots
        self.mitigator = mitigator
        self._rng = np.random.default_rng(seed)
        self._simulator = NoisySimulator(noise_model, seed=seed)

    # ------------------------------------------------------------------
    def estimate(self, scheduled: ScheduledCircuit, hamiltonian: PauliSum) -> ExpectationResult:
        """Estimate the Hamiltonian expectation for one scheduled circuit."""
        measured = scheduled.measured_positions()
        if not measured:
            raise VQEError("the scheduled circuit must measure every Hamiltonian qubit")
        clbit_to_position = {clbit: pos for pos, clbit in measured}
        for logical in range(hamiltonian.num_qubits):
            if logical not in clbit_to_position:
                raise VQEError(f"Hamiltonian qubit {logical} is never measured")

        state = self._simulator.run(scheduled)
        groups = hamiltonian.group_commuting()
        total = hamiltonian.identity_coefficient()
        group_values: List[float] = []
        distributions: List[np.ndarray] = []
        for group in groups:
            value, distribution = self._estimate_group(
                state, scheduled, group, clbit_to_position, hamiltonian.num_qubits
            )
            group_values.append(value)
            distributions.append(distribution)
            total += value
        return ExpectationResult(
            value=float(total),
            group_values=group_values,
            distributions=distributions,
            shots_per_group=self.shots,
        )

    # ------------------------------------------------------------------
    def _estimate_group(
        self,
        state: DensityMatrix,
        scheduled: ScheduledCircuit,
        group: MeasurementGroup,
        clbit_to_position: Dict[int, int],
        num_logical: int,
    ) -> Tuple[float, np.ndarray]:
        rotated = state.copy()
        # Basis change: X -> H, Y -> H . Sdg (so that Z-measurement reads the
        # desired Pauli), applied on the circuit position carrying each logical qubit.
        for logical in range(num_logical):
            factor = group.basis[logical]
            position = clbit_to_position[logical]
            if factor == "X":
                rotated.apply_unitary(_H_MATRIX, (position,))
            elif factor == "Y":
                rotated.apply_unitary(_H_MATRIX @ _SDG_MATRIX, (position,))
        positions = [clbit_to_position[logical] for logical in range(num_logical)]
        probabilities = rotated.marginal_probabilities(positions)
        confusions = [
            self.noise_model.readout_confusion(scheduled.physical_qubit(pos)) for pos in positions
        ]
        probabilities = apply_readout_error(probabilities, confusions)
        if self.shots is not None:
            counts = probabilities_to_counts(probabilities, self.shots, rng=self._rng)
            probabilities = _counts_to_distribution(counts, num_logical)
        if self.mitigator is not None:
            probabilities = self.mitigator.mitigate_probabilities(probabilities)
        value = _distribution_expectation(probabilities, group, num_logical)
        return value, probabilities


def _counts_to_distribution(counts: Dict[str, int], num_bits: int) -> np.ndarray:
    distribution = np.zeros(2 ** num_bits)
    total = sum(counts.values())
    for bitstring, count in counts.items():
        distribution[int(bitstring, 2)] += count / total
    return distribution


def _distribution_expectation(
    probabilities: np.ndarray, group: MeasurementGroup, num_bits: int
) -> float:
    """Weighted sum of Pauli expectations computed from one outcome distribution."""
    value = 0.0
    for pauli, coeff in group.terms:
        expectation = 0.0
        for index, probability in enumerate(probabilities):
            if probability == 0.0:
                continue
            bitstring = format(index, f"0{num_bits}b")
            expectation += probability * pauli.expectation_sign(bitstring)
        value += coeff * expectation
    return value


def ideal_expectation(circuit, hamiltonian: PauliSum) -> float:
    """Noise-free expectation of a logical (unscheduled) circuit."""
    from ..simulators.statevector import StatevectorSimulator

    return StatevectorSimulator().expectation(circuit, hamiltonian)
