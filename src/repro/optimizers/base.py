"""Classical optimizer interfaces.

All optimizers expose the same :meth:`Optimizer.minimize` signature so the
VQE driver can switch between them; the result record keeps the full
objective-value history, which is what the paper's convergence plots (Fig. 8)
are drawn from.

Batch-objective protocol
------------------------
An objective is, at minimum, a callable ``f(parameters) -> float``.  An
objective may *additionally* implement

``evaluate_batch(points: Sequence[np.ndarray]) -> List[float]``

returning one value per point, in input order, with every value equal to the
corresponding single-point call (bit for bit for deterministic or seeded
objectives).  Optimizers that evaluate several points per step — SPSA's
``±c_k·Δ`` pairs are the canonical case — probe for ``evaluate_batch`` and
submit all of a step's points as one batch, which lets an engine-backed
objective pipeline them through
:meth:`~repro.vqe.expectation.ExpectationEstimator.submit_batch` and the
engine's slot scheduler.  Plain callables fall back to element-wise
evaluation transparently: :meth:`TrackingObjective.evaluate_batch` performs
the probe, so optimizers only ever talk to the tracking wrapper.

Because the engine derives sampling randomness from content (see the seeding
contract in :mod:`repro.engine.base`), a batched evaluation returns exactly
the values the element-wise path would have produced — batching changes
wall-clock, never numbers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..exceptions import OptimizerError

Objective = Callable[[np.ndarray], float]


@runtime_checkable
class BatchObjective(Protocol):
    """An objective that can evaluate many points in one submission.

    See the module docstring for the contract: ``evaluate_batch`` must return
    one value per point, ordered like the input and equal to element-wise
    ``__call__`` values.
    """

    def __call__(self, parameters: np.ndarray) -> float: ...

    def evaluate_batch(self, points: Sequence[np.ndarray]) -> List[float]: ...


@dataclass
class OptimizationResult:
    """Outcome of a classical minimisation run."""

    optimal_parameters: np.ndarray
    optimal_value: float
    num_evaluations: int
    history: List[float] = field(default_factory=list)
    parameter_history: List[np.ndarray] = field(default_factory=list)
    converged: bool = True
    message: str = ""
    #: Optimizer-specific diagnostics (e.g. SPSA's accepted-step fraction);
    #: never required for correctness, purely for reporting.
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self):
        return (
            f"OptimizationResult(value={self.optimal_value:.6f}, "
            f"evals={self.num_evaluations}, converged={self.converged})"
        )


class Optimizer(ABC):
    """Base class for classical parameter optimizers."""

    name = "optimizer"

    @abstractmethod
    def minimize(self, objective: Objective, initial_point: Sequence[float]) -> OptimizationResult:
        """Minimise ``objective`` starting from ``initial_point``."""

    @staticmethod
    def _validate_initial_point(initial_point: Sequence[float]) -> np.ndarray:
        point = np.asarray(initial_point, dtype=float).reshape(-1)
        if point.size == 0:
            raise OptimizerError("the initial point must contain at least one parameter")
        return point


class TrackingObjective:
    """Wraps an objective to record every evaluation (value and parameters)."""

    def __init__(self, objective: Objective):
        self._objective = objective
        self.values: List[float] = []
        self.points: List[np.ndarray] = []

    def __call__(self, parameters: np.ndarray) -> float:
        value = float(self._objective(np.asarray(parameters, dtype=float)))
        self.values.append(value)
        self.points.append(np.asarray(parameters, dtype=float).copy())
        return value

    def evaluate_batch(self, points: Sequence[np.ndarray]) -> List[float]:
        """Evaluate many points, batched when the inner objective supports it.

        Probes the wrapped objective for the :class:`BatchObjective` protocol
        and submits the whole batch through it; plain callables are evaluated
        element-wise in input order.  Either way every evaluation is recorded
        exactly as individual :meth:`__call__`\\ s would have recorded it.
        """
        arrays = [np.asarray(p, dtype=float) for p in points]
        batch = getattr(self._objective, "evaluate_batch", None)
        if callable(batch):
            values = [float(v) for v in batch(arrays)]
            if len(values) != len(arrays):
                raise OptimizerError(
                    f"evaluate_batch returned {len(values)} values for {len(arrays)} points"
                )
        else:
            values = [float(self._objective(p)) for p in arrays]
        self.values.extend(values)
        self.points.extend(p.copy() for p in arrays)
        return values

    @property
    def num_evaluations(self) -> int:
        return len(self.values)

    def best(self) -> tuple:
        """(best_parameters, best_value) over every evaluation seen so far.

        Contract: the argmin over *recorded* values is only meaningful for
        deterministic (noise-free) objectives.  Under shot noise the minimum
        recorded value is biased optimistic — the argmin preferentially picks
        the evaluation whose noise happened to be most negative, so the
        reported value systematically undershoots the true objective at that
        point.  Optimizers driving sampled objectives should therefore report
        the *last accepted* point (and, if an honest value is needed,
        re-evaluate the incumbent) instead of calling :meth:`best`; the
        deterministic scipy wrappers keep using it.
        """
        if not self.values:
            raise OptimizerError("no evaluations recorded")
        index = int(np.argmin(self.values))
        return self.points[index], self.values[index]
