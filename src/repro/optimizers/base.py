"""Classical optimizer interfaces.

All optimizers expose the same :meth:`Optimizer.minimize` signature so the
VQE driver can switch between them; the result record keeps the full
objective-value history, which is what the paper's convergence plots (Fig. 8)
are drawn from.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..exceptions import OptimizerError

Objective = Callable[[np.ndarray], float]


@dataclass
class OptimizationResult:
    """Outcome of a classical minimisation run."""

    optimal_parameters: np.ndarray
    optimal_value: float
    num_evaluations: int
    history: List[float] = field(default_factory=list)
    parameter_history: List[np.ndarray] = field(default_factory=list)
    converged: bool = True
    message: str = ""

    def __repr__(self):
        return (
            f"OptimizationResult(value={self.optimal_value:.6f}, "
            f"evals={self.num_evaluations}, converged={self.converged})"
        )


class Optimizer(ABC):
    """Base class for classical parameter optimizers."""

    name = "optimizer"

    @abstractmethod
    def minimize(self, objective: Objective, initial_point: Sequence[float]) -> OptimizationResult:
        """Minimise ``objective`` starting from ``initial_point``."""

    @staticmethod
    def _validate_initial_point(initial_point: Sequence[float]) -> np.ndarray:
        point = np.asarray(initial_point, dtype=float).reshape(-1)
        if point.size == 0:
            raise OptimizerError("the initial point must contain at least one parameter")
        return point


class TrackingObjective:
    """Wraps an objective to record every evaluation (value and parameters)."""

    def __init__(self, objective: Objective):
        self._objective = objective
        self.values: List[float] = []
        self.points: List[np.ndarray] = []

    def __call__(self, parameters: np.ndarray) -> float:
        value = float(self._objective(np.asarray(parameters, dtype=float)))
        self.values.append(value)
        self.points.append(np.asarray(parameters, dtype=float).copy())
        return value

    @property
    def num_evaluations(self) -> int:
        return len(self.values)

    def best(self) -> tuple:
        """(best_parameters, best_value) over every evaluation seen so far."""
        if not self.values:
            raise OptimizerError("no evaluations recorded")
        index = int(np.argmin(self.values))
        return self.points[index], self.values[index]
