"""Scipy-backed optimizers (Nelder-Mead, COBYLA, Powell).

The paper's "ideal flow" (Fig. 11) anticipates Runtime eventually allowing an
*optimal classical tuner* rather than SPSA only; these wrappers let the
reproduction's benchmarks compare SPSA against stronger derivative-free
optimizers when angle tuning runs in simulation.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy import optimize as scipy_optimize

from ..exceptions import OptimizerError
from .base import Objective, OptimizationResult, Optimizer, TrackingObjective


class ScipyOptimizer(Optimizer):
    """Thin wrapper around :func:`scipy.optimize.minimize` with history tracking."""

    name = "scipy"
    _ALLOWED = ("Nelder-Mead", "COBYLA", "Powell", "BFGS", "SLSQP")

    def __init__(self, method: str = "COBYLA", maxiter: int = 200, tol: Optional[float] = None):
        if method not in self._ALLOWED:
            raise OptimizerError(f"unsupported scipy method '{method}'; options: {self._ALLOWED}")
        if maxiter < 1:
            raise OptimizerError("maxiter must be at least 1")
        self.method = method
        self.maxiter = maxiter
        self.tol = tol

    def minimize(self, objective: Objective, initial_point: Sequence[float]) -> OptimizationResult:
        tracked = TrackingObjective(objective)
        point = self._validate_initial_point(initial_point)
        options = {"maxiter": self.maxiter}
        if self.method == "Nelder-Mead":
            options["maxfev"] = 20 * self.maxiter
        result = scipy_optimize.minimize(
            tracked, point, method=self.method, tol=self.tol, options=options
        )
        best_point, best_value = tracked.best()
        return OptimizationResult(
            optimal_parameters=np.asarray(best_point, dtype=float),
            optimal_value=float(best_value),
            num_evaluations=tracked.num_evaluations,
            history=tracked.values,
            parameter_history=tracked.points,
            converged=bool(result.success) if hasattr(result, "success") else True,
            message=str(getattr(result, "message", "")),
        )


class NelderMead(ScipyOptimizer):
    """Nelder-Mead simplex optimizer."""

    name = "nelder-mead"

    def __init__(self, maxiter: int = 200, tol: Optional[float] = None):
        super().__init__("Nelder-Mead", maxiter=maxiter, tol=tol)


class COBYLA(ScipyOptimizer):
    """Constrained optimization by linear approximation."""

    name = "cobyla"

    def __init__(self, maxiter: int = 200, tol: Optional[float] = None):
        super().__init__("COBYLA", maxiter=maxiter, tol=tol)
