"""Simultaneous Perturbation Stochastic Approximation (SPSA).

SPSA is the only tuner Qiskit Runtime supported at the time of the paper
(§VI-A constraint 2), so it is the optimizer used for all angle tuning in the
reproduction.  Each iteration estimates the gradient from just two objective
evaluations with a random simultaneous perturbation of all parameters, which
makes it well suited to noisy objective functions: the per-step cost is O(1)
circuit evaluations regardless of the parameter count, versus O(p) for
parameter-shift gradients.

The gain schedules follow Spall's standard recommendations:
``a_k = a / (k + 1 + A)^alpha`` and ``c_k = c / (k + 1)^gamma``.

Evaluation budget
-----------------
Per Spall's algorithm the step is accepted *unconditionally* unless blocking
is enabled, so an iteration costs exactly ``2 * resamplings`` evaluations —
``1 + 2 * resamplings * maxiter`` for a whole run.  (An earlier version of
this optimizer evaluated the candidate point even with ``blocking=False``,
silently spending a hidden third evaluation per step and defeating the O(1)
property that justifies SPSA on sampled objectives.)  With ``blocking=True``
the candidate must be evaluated to decide acceptance, adding one evaluation
per iteration; if ``allowed_increase`` is left at its default ``None``, the
blocking threshold is calibrated from ``calibration_evaluations`` extra
evaluations of the initial point (2× their sample standard deviation — an
estimate of the objective's shot noise; for a deterministic objective the
spread is zero and blocking degenerates to strict descent).

Batched evaluation
------------------
All of an iteration's ``±c_k·Δ`` points (across every resampling) are
submitted as **one** batch via
:meth:`~repro.optimizers.base.TrackingObjective.evaluate_batch`: an
engine-backed :class:`~repro.optimizers.base.BatchObjective` pipelines them
through the engine's slot scheduler, while plain callables are evaluated
element-wise in the same order.  Per the engine seeding contract the values
— and therefore the whole optimization trajectory — are bit-identical either
way.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..exceptions import OptimizerError
from .base import Objective, OptimizationResult, Optimizer, TrackingObjective


class SPSA(Optimizer):
    """Spall's SPSA optimizer with optional parameter blocking and averaging."""

    name = "spsa"

    def __init__(
        self,
        maxiter: int = 100,
        learning_rate: float = 0.2,
        perturbation: float = 0.15,
        alpha: float = 0.602,
        gamma: float = 0.101,
        stability_constant: Optional[float] = None,
        resamplings: int = 1,
        blocking: bool = False,
        allowed_increase: Optional[float] = None,
        calibration_evaluations: int = 4,
        seed: Optional[int] = None,
        callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
    ):
        if maxiter < 1:
            raise OptimizerError("maxiter must be at least 1")
        if resamplings < 1:
            raise OptimizerError("resamplings must be at least 1")
        if calibration_evaluations < 1:
            raise OptimizerError("calibration_evaluations must be at least 1")
        self.maxiter = maxiter
        self.learning_rate = learning_rate
        self.perturbation = perturbation
        self.alpha = alpha
        self.gamma = gamma
        self.stability_constant = (
            stability_constant if stability_constant is not None else 0.1 * maxiter
        )
        self.resamplings = resamplings
        self.blocking = blocking
        #: Blocking threshold: a candidate raising the objective by more than
        #: this is rejected.  ``None`` (the default) calibrates the threshold
        #: to 2× the sample standard deviation of ``calibration_evaluations``
        #: repeat evaluations of the initial point — an estimate of the
        #: objective's noise floor — instead of a fixed constant.
        self.allowed_increase = allowed_increase
        self.calibration_evaluations = calibration_evaluations
        self.seed = seed
        self.callback = callback

    def _gains(self, iteration: int) -> tuple:
        a_k = self.learning_rate / ((iteration + 1 + self.stability_constant) ** self.alpha)
        c_k = self.perturbation / ((iteration + 1) ** self.gamma)
        return a_k, c_k

    def minimize(self, objective: Objective, initial_point: Sequence[float]) -> OptimizationResult:
        rng = np.random.default_rng(self.seed)
        tracked = TrackingObjective(objective)
        point = self._validate_initial_point(initial_point)
        current_value = tracked(point)
        iteration_values = [current_value]

        allowed_increase = self.allowed_increase
        if self.blocking and allowed_increase is None:
            # Noise calibration: repeat evaluations of the initial point.  On
            # a sampled objective their spread estimates the shot noise; on a
            # deterministic (or cached) objective it is exactly zero and
            # blocking becomes strict descent.
            repeats = tracked.evaluate_batch([point] * self.calibration_evaluations)
            allowed_increase = 2.0 * float(np.std([current_value] + repeats))

        accepted_steps = 0
        first_update_norm: Optional[float] = None
        last_update_norm = 0.0
        for iteration in range(self.maxiter):
            a_k, c_k = self._gains(iteration)
            deltas = [rng.choice([-1.0, 1.0], size=point.size) for _ in range(self.resamplings)]
            probes = []
            for delta in deltas:
                probes.append(point + c_k * delta)
                probes.append(point - c_k * delta)
            values = tracked.evaluate_batch(probes)

            gradient = np.zeros_like(point)
            for index, delta in enumerate(deltas):
                value_plus = values[2 * index]
                value_minus = values[2 * index + 1]
                gradient += (value_plus - value_minus) / (2.0 * c_k) * delta
            gradient /= self.resamplings

            update = a_k * gradient
            last_update_norm = float(np.linalg.norm(update))
            if first_update_norm is None:
                first_update_norm = last_update_norm
            candidate = point - update
            if self.blocking:
                candidate_value = tracked(candidate)
                if candidate_value > current_value + allowed_increase:
                    # Reject the step but keep annealing the gains.
                    iteration_values.append(current_value)
                else:
                    accepted_steps += 1
                    point = candidate
                    current_value = candidate_value
                    iteration_values.append(current_value)
            else:
                # Spall's SPSA: accept unconditionally — no extra evaluation.
                # The iteration value is the mean of the ± probe values, a
                # free unbiased proxy for the objective near the new point.
                accepted_steps += 1
                point = candidate
                current_value = float(np.mean(values))
                iteration_values.append(current_value)
            if self.callback is not None:
                self.callback(iteration, point.copy(), current_value)

        # Report the last *accepted* point, never the argmin of recorded
        # values: under shot noise that argmin is biased optimistic (see
        # TrackingObjective.best).  With blocking the reported value is the
        # candidate evaluation that accepted the point; without blocking it
        # is the final iteration's probe mean.
        if self.blocking:
            converged = accepted_steps > 0
            message = (
                f"SPSA finished {self.maxiter} iterations; accepted "
                f"{accepted_steps}/{self.maxiter} steps "
                f"(allowed_increase={allowed_increase:.3g})"
            )
        else:
            # Final-gain criterion: the annealed update magnitude should have
            # shrunk relative to where it started; a final step as large as
            # the first one means the iterates were still moving at full
            # stride when the budget ran out.
            converged = bool(
                first_update_norm is None
                or first_update_norm == 0.0
                or last_update_norm <= first_update_norm
            )
            message = (
                f"SPSA finished {self.maxiter} iterations; final update norm "
                f"{last_update_norm:.3g} (first {first_update_norm:.3g})"
            )
        return OptimizationResult(
            optimal_parameters=point,
            optimal_value=current_value,
            num_evaluations=tracked.num_evaluations,
            history=iteration_values,
            parameter_history=tracked.points,
            converged=converged,
            message=message,
            metadata={
                "accepted_steps": accepted_steps,
                "accepted_fraction": accepted_steps / self.maxiter,
                "allowed_increase": allowed_increase,
                "first_update_norm": first_update_norm,
                "last_update_norm": last_update_norm,
            },
        )
