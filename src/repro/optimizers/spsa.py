"""Simultaneous Perturbation Stochastic Approximation (SPSA).

SPSA is the only tuner Qiskit Runtime supported at the time of the paper
(§VI-A constraint 2), so it is the optimizer used for all angle tuning in the
reproduction.  Each iteration estimates the gradient from just two objective
evaluations with a random simultaneous perturbation of all parameters, which
makes it well suited to noisy objective functions.

The gain schedules follow Spall's standard recommendations:
``a_k = a / (k + 1 + A)^alpha`` and ``c_k = c / (k + 1)^gamma``.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..exceptions import OptimizerError
from .base import Objective, OptimizationResult, Optimizer, TrackingObjective


class SPSA(Optimizer):
    """Spall's SPSA optimizer with optional parameter blocking and averaging."""

    name = "spsa"

    def __init__(
        self,
        maxiter: int = 100,
        learning_rate: float = 0.2,
        perturbation: float = 0.15,
        alpha: float = 0.602,
        gamma: float = 0.101,
        stability_constant: Optional[float] = None,
        resamplings: int = 1,
        blocking: bool = False,
        allowed_increase: float = 0.5,
        seed: Optional[int] = None,
        callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
    ):
        if maxiter < 1:
            raise OptimizerError("maxiter must be at least 1")
        if resamplings < 1:
            raise OptimizerError("resamplings must be at least 1")
        self.maxiter = maxiter
        self.learning_rate = learning_rate
        self.perturbation = perturbation
        self.alpha = alpha
        self.gamma = gamma
        self.stability_constant = (
            stability_constant if stability_constant is not None else 0.1 * maxiter
        )
        self.resamplings = resamplings
        self.blocking = blocking
        self.allowed_increase = allowed_increase
        self.seed = seed
        self.callback = callback

    def _gains(self, iteration: int) -> tuple:
        a_k = self.learning_rate / ((iteration + 1 + self.stability_constant) ** self.alpha)
        c_k = self.perturbation / ((iteration + 1) ** self.gamma)
        return a_k, c_k

    def minimize(self, objective: Objective, initial_point: Sequence[float]) -> OptimizationResult:
        rng = np.random.default_rng(self.seed)
        tracked = TrackingObjective(objective)
        point = self._validate_initial_point(initial_point)
        current_value = tracked(point)
        iteration_values = [current_value]

        for iteration in range(self.maxiter):
            a_k, c_k = self._gains(iteration)
            gradient = np.zeros_like(point)
            for _ in range(self.resamplings):
                delta = rng.choice([-1.0, 1.0], size=point.size)
                value_plus = tracked(point + c_k * delta)
                value_minus = tracked(point - c_k * delta)
                gradient += (value_plus - value_minus) / (2.0 * c_k) * delta
            gradient /= self.resamplings

            candidate = point - a_k * gradient
            candidate_value = tracked(candidate)
            if self.blocking and candidate_value > current_value + self.allowed_increase:
                # Reject the step but keep annealing the gains.
                iteration_values.append(current_value)
            else:
                point = candidate
                current_value = candidate_value
                iteration_values.append(current_value)
            if self.callback is not None:
                self.callback(iteration, point.copy(), current_value)

        best_point, best_value = tracked.best()
        return OptimizationResult(
            optimal_parameters=best_point,
            optimal_value=best_value,
            num_evaluations=tracked.num_evaluations,
            history=iteration_values,
            parameter_history=tracked.points,
            converged=True,
            message=f"SPSA finished {self.maxiter} iterations",
        )
