"""Classical optimizers for variational parameter tuning."""

from .base import BatchObjective, OptimizationResult, Optimizer, TrackingObjective
from .scipy_optimizers import COBYLA, NelderMead, ScipyOptimizer
from .spsa import SPSA

__all__ = [
    "Optimizer",
    "OptimizationResult",
    "TrackingObjective",
    "BatchObjective",
    "SPSA",
    "ScipyOptimizer",
    "NelderMead",
    "COBYLA",
]
