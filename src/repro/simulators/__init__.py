"""Ideal and noisy simulators, noise channels and noise models."""

from .channels import (
    amplitude_damping_kraus,
    bit_flip_kraus,
    coherent_z_kraus,
    coherent_zz_kraus,
    compose_channels,
    depolarizing_kraus,
    identity_kraus,
    is_valid_channel,
    kraus_from_superop,
    phase_damping_kraus,
    superop_from_kraus,
    thermal_relaxation_kraus,
)
from .density_matrix import DensityMatrix
from .noise_model import ChannelOp, NoiseModel
from .noisy_simulator import NoisySimulator
from .ptm import (
    PauliVectorState,
    PTMEvolver,
    kraus_to_ptm,
    pauli_basis,
    unitary_to_ptm,
)
from .readout import (
    apply_readout_error,
    counts_to_probabilities,
    probabilities_to_counts,
    tensor_confusion_matrix,
)
from .statevector import StatevectorSimulator

__all__ = [
    "StatevectorSimulator",
    "DensityMatrix",
    "NoisySimulator",
    "NoiseModel",
    "ChannelOp",
    "identity_kraus",
    "amplitude_damping_kraus",
    "phase_damping_kraus",
    "thermal_relaxation_kraus",
    "depolarizing_kraus",
    "coherent_z_kraus",
    "coherent_zz_kraus",
    "bit_flip_kraus",
    "compose_channels",
    "superop_from_kraus",
    "kraus_from_superop",
    "is_valid_channel",
    "PauliVectorState",
    "PTMEvolver",
    "pauli_basis",
    "unitary_to_ptm",
    "kraus_to_ptm",
    "apply_readout_error",
    "tensor_confusion_matrix",
    "probabilities_to_counts",
    "counts_to_probabilities",
]
