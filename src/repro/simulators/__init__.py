"""Ideal and noisy simulators, noise channels and noise models."""

from .channels import (
    amplitude_damping_kraus,
    bit_flip_kraus,
    coherent_z_kraus,
    coherent_zz_kraus,
    compose_channels,
    depolarizing_kraus,
    identity_kraus,
    is_valid_channel,
    phase_damping_kraus,
    thermal_relaxation_kraus,
)
from .density_matrix import DensityMatrix
from .noise_model import ChannelOp, NoiseModel
from .noisy_simulator import NoisySimulator
from .readout import (
    apply_readout_error,
    counts_to_probabilities,
    probabilities_to_counts,
    tensor_confusion_matrix,
)
from .statevector import StatevectorSimulator

__all__ = [
    "StatevectorSimulator",
    "DensityMatrix",
    "NoisySimulator",
    "NoiseModel",
    "ChannelOp",
    "identity_kraus",
    "amplitude_damping_kraus",
    "phase_damping_kraus",
    "thermal_relaxation_kraus",
    "depolarizing_kraus",
    "coherent_z_kraus",
    "coherent_zz_kraus",
    "bit_flip_kraus",
    "compose_channels",
    "is_valid_channel",
    "apply_readout_error",
    "tensor_confusion_matrix",
    "probabilities_to_counts",
    "counts_to_probabilities",
]
