"""Density-matrix state representation and channel application.

The noisy simulator tracks the full density matrix of the circuit's qubits
(at most 7 in the paper's experiments, i.e. 128x128), applying unitary gates
and Kraus channels in schedule order.  :class:`DensityMatrix` provides the
linear-algebra primitives; the schedule walking lives in
:mod:`repro.simulators.noisy_simulator`.

Big-endian convention throughout: qubit 0 is the most-significant bit of the
basis index.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SimulationError


class DensityMatrix:
    """A mutable n-qubit density matrix."""

    def __init__(self, num_qubits: int, data: Optional[np.ndarray] = None):
        if num_qubits < 1:
            raise SimulationError("a density matrix needs at least one qubit")
        self.num_qubits = int(num_qubits)
        dim = 2 ** self.num_qubits
        if data is None:
            self.data = np.zeros((dim, dim), dtype=complex)
            self.data[0, 0] = 1.0
        else:
            data = np.asarray(data, dtype=complex)
            if data.shape != (dim, dim):
                raise SimulationError(f"expected a {dim}x{dim} matrix, got {data.shape}")
            self.data = data.copy()

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_statevector(cls, statevector: np.ndarray) -> "DensityMatrix":
        vec = np.asarray(statevector, dtype=complex).reshape(-1)
        num_qubits = int(np.log2(vec.size))
        if 2 ** num_qubits != vec.size:
            raise SimulationError("statevector length is not a power of two")
        out = cls(num_qubits)
        out.data = np.outer(vec, vec.conj())
        return out

    def copy(self) -> "DensityMatrix":
        return DensityMatrix(self.num_qubits, self.data)

    # -- basic properties -----------------------------------------------------
    def trace(self) -> float:
        return float(np.real(np.trace(self.data)))

    def purity(self) -> float:
        """``Tr[rho^2]`` — 1 for pure states, 1/d for the maximally mixed state."""
        return float(np.real(np.trace(self.data @ self.data)))

    def is_physical(self, atol: float = 1e-7) -> bool:
        """Hermitian, unit trace, positive semidefinite (up to tolerance)."""
        if not np.allclose(self.data, self.data.conj().T, atol=atol):
            return False
        if abs(self.trace() - 1.0) > 1e-6:
            return False
        eigvals = np.linalg.eigvalsh(self.data)
        return bool(eigvals.min() > -atol)

    # -- index helpers -----------------------------------------------------------
    def _contract(self, data: np.ndarray, matrix: np.ndarray, axes: Sequence[int]) -> np.ndarray:
        """Contract ``matrix`` (a k-qubit operator) into the given tensor axes.

        ``data`` is the density matrix viewed as a rank-2n tensor (row axes
        0..n-1, column axes n..2n-1); ``axes`` names the tensor axes the
        operator's input indices act on.  The operator's output indices are
        moved back into the same positions, so repeated contractions compose
        like ordinary matrix products.
        """
        n = self.num_qubits
        k = len(axes)
        tensor = data.reshape([2] * (2 * n))
        op = matrix.reshape([2] * (2 * k))
        out = np.tensordot(op, tensor, axes=(list(range(k, 2 * k)), list(axes)))
        # tensordot puts the operator's output indices first; move every axis
        # back to its canonical position.
        remaining = [axis for axis in range(2 * n) if axis not in axes]
        position = {}
        for index, axis in enumerate(axes):
            position[axis] = index
        for index, axis in enumerate(remaining):
            position[axis] = k + index
        out = np.transpose(out, [position[axis] for axis in range(2 * n)])
        return out.reshape(2 ** n, 2 ** n)

    def _check_operator(self, matrix: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=complex)
        k = len(qubits)
        if matrix.shape != (2 ** k, 2 ** k):
            raise SimulationError("operator dimension does not match the number of target qubits")
        if len(set(qubits)) != k or any(not 0 <= q < self.num_qubits for q in qubits):
            raise SimulationError(f"invalid target qubits {tuple(qubits)}")
        return matrix

    # -- evolution ----------------------------------------------------------------
    def apply_unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a unitary acting on ``qubits``: rho -> U rho U^dagger."""
        matrix = self._check_operator(matrix, qubits)
        n = self.num_qubits
        data = self._contract(self.data, matrix, list(qubits))
        self.data = self._contract(data, matrix.conj(), [n + q for q in qubits])

    def apply_kraus(self, kraus: Iterable[np.ndarray], qubits: Sequence[int]) -> None:
        """Apply a Kraus channel acting on ``qubits``."""
        n = self.num_qubits
        new = np.zeros_like(self.data)
        for k in kraus:
            matrix = self._check_operator(k, qubits)
            term = self._contract(self.data, matrix, list(qubits))
            new += self._contract(term, matrix.conj(), [n + q for q in qubits])
        self.data = new

    def apply_superop(self, superop: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a channel given as a superoperator acting on ``qubits``.

        ``superop`` is the ``4^k x 4^k`` matrix ``sum_i K_i (x) conj(K_i)``
        acting jointly on the row and column indices of the density matrix.
        One contraction replaces the ``2 * len(kraus)`` contractions of
        :meth:`apply_kraus`, which is what makes schedule-aware simulation of
        many-channel noise models affordable in hot loops.
        """
        superop = np.asarray(superop, dtype=complex)
        k = len(qubits)
        if superop.shape != (4 ** k, 4 ** k):
            raise SimulationError("superoperator dimension does not match the target qubits")
        if len(set(qubits)) != k or any(not 0 <= q < self.num_qubits for q in qubits):
            raise SimulationError(f"invalid target qubits {tuple(qubits)}")
        n = self.num_qubits
        axes = list(qubits) + [n + q for q in qubits]
        self.data = self._contract(self.data, superop, axes)

    # -- measurement -----------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Computational-basis probabilities (the diagonal, clipped at 0)."""
        probs = np.real(np.diag(self.data)).copy()
        probs[probs < 0] = 0.0
        total = probs.sum()
        if total <= 0:
            raise SimulationError("density matrix has no probability mass")
        return probs / total

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Probabilities of outcomes on a subset of qubits (in the given order)."""
        probs = self.probabilities()
        n = self.num_qubits
        k = len(qubits)
        out = np.zeros(2 ** k)
        for index, p in enumerate(probs):
            if p == 0.0:
                continue
            key = 0
            for q in qubits:
                bit = (index >> (n - 1 - q)) & 1
                key = (key << 1) | bit
            out[key] += p
        return out

    def sample_counts(
        self,
        shots: int,
        qubits: Optional[Sequence[int]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Dict[str, int]:
        """Sample ``shots`` measurement outcomes on ``qubits`` (all by default)."""
        rng = rng or np.random.default_rng()
        qubits = list(qubits) if qubits is not None else list(range(self.num_qubits))
        probs = self.marginal_probabilities(qubits)
        outcomes = rng.multinomial(shots, probs)
        counts: Dict[str, int] = {}
        width = len(qubits)
        for index, count in enumerate(outcomes):
            if count:
                counts[format(index, f"0{width}b")] = int(count)
        return counts

    def expectation(self, observable_matrix: np.ndarray) -> float:
        """``Tr[O rho]`` for a Hermitian operator ``O`` on the full register."""
        observable_matrix = np.asarray(observable_matrix, dtype=complex)
        if observable_matrix.shape != self.data.shape:
            raise SimulationError("observable dimension does not match the density matrix")
        return float(np.real(np.trace(observable_matrix @ self.data)))

    def fidelity_with_pure_state(self, statevector: np.ndarray) -> float:
        """``<psi| rho |psi>`` against a pure reference state."""
        vec = np.asarray(statevector, dtype=complex).reshape(-1)
        if vec.size != self.data.shape[0]:
            raise SimulationError("reference state dimension mismatch")
        return float(np.real(vec.conj() @ self.data @ vec))
