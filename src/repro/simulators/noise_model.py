"""Noise models derived from a :class:`~repro.backends.device.DeviceModel`.

Two flavours reproduce the paper's distinction between "noisy simulation" and
"the real machine" (§VI-B, Fig. 9):

* ``NoiseModel.from_calibration(device)`` — only what published calibration
  data captures: Markovian T1/T2 relaxation during gates and idle periods,
  depolarizing gate errors, and readout confusion.  This corresponds to a
  Qiskit-Aer style backend noise model.
* ``NoiseModel.from_device(device)`` — calibration noise **plus** the coherent
  error processes that real hardware has but calibration data hides: residual
  per-qubit frequency detunings (with slow drift) that accumulate phase during
  idle periods, and always-on ZZ crosstalk with idle neighbours.  These are
  exactly the error components that DD and Hahn-echo gate scheduling can
  refocus, which is why mitigation tuning trends differ between the two
  flavours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..backends.device import DeviceModel
from ..exceptions import NoiseModelError
from . import channels


@dataclass
class ChannelOp:
    """A Kraus channel bound to the qubits it acts on."""

    kraus: List[np.ndarray]
    qubits: Tuple[int, ...]

    def __post_init__(self):
        self._superop: Optional[np.ndarray] = None

    @property
    def superop(self) -> np.ndarray:
        """The channel as a superoperator ``sum_i K_i (x) conj(K_i)``.

        Built lazily and cached on the instance; the noisy simulator applies
        channels through this single matrix (one tensor contraction) instead
        of looping over the Kraus operators, and the noise model's channel
        cache makes the construction cost a one-time expense per distinct
        channel.
        """
        if self._superop is None:
            dim = self.kraus[0].shape[0]
            superop = np.zeros((dim * dim, dim * dim), dtype=complex)
            for k in self.kraus:
                superop += np.kron(k, k.conj())
            superop.flags.writeable = False
            self._superop = superop
        return self._superop


class NoiseModel:
    """Schedule-aware noise description consumed by the noisy simulator."""

    def __init__(
        self,
        device: DeviceModel,
        include_coherent_errors: bool = True,
        include_crosstalk: bool = True,
        include_readout_error: bool = True,
        include_gate_error: bool = True,
        include_relaxation: bool = True,
        time_offset_ns: float = 0.0,
    ):
        self.device = device
        self.include_coherent_errors = include_coherent_errors
        self.include_crosstalk = include_crosstalk
        self.include_readout_error = include_readout_error
        self.include_gate_error = include_gate_error
        self.include_relaxation = include_relaxation
        #: Wall-clock offset added to circuit-local times when evaluating the
        #: slowly drifting detuning (lets repeated circuit executions sample
        #: different points of the drift waveform).
        self.time_offset_ns = float(time_offset_ns)
        # Channel construction is pure in (device calibration, flags, times),
        # and schedule-aware simulation requests the same channels thousands
        # of times (every candidate schedule shares most of its gates and idle
        # gaps with every other candidate), so built channels are memoised.
        # The flags and time offset participate in every key, which keeps the
        # cache correct if they are toggled after construction.
        self._channel_cache: dict = {}

    _CHANNEL_CACHE_MAX = 32768

    def _cached_channels(self, key, builder) -> List[ChannelOp]:
        cached = self._channel_cache.get(key)
        if cached is None:
            if len(self._channel_cache) >= self._CHANNEL_CACHE_MAX:
                self._channel_cache.clear()
            cached = builder()
            self._channel_cache[key] = cached
        return cached

    def invalidate_channel_cache(self) -> None:
        """Drop memoised channels (call after mutating the device calibration).

        Also drops the engine layer's memoised fingerprint of the device, so
        result caches and process-pool workers keyed on the old calibration
        miss instead of serving pre-mutation states.
        """
        self._channel_cache.clear()
        from ..engine.fingerprint import invalidate_device_fingerprint

        invalidate_device_fingerprint(self.device)

    def _flag_key(self) -> Tuple:
        return (
            self.include_coherent_errors,
            self.include_crosstalk,
            self.include_gate_error,
            self.include_relaxation,
            self.time_offset_ns,
        )

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_calibration(cls, device: DeviceModel) -> "NoiseModel":
        """Markovian-only noise model (the paper's 'noisy simulation')."""
        return cls(device, include_coherent_errors=False, include_crosstalk=False)

    @classmethod
    def from_device(cls, device: DeviceModel) -> "NoiseModel":
        """Full device noise model (the paper's 'real machine')."""
        return cls(device, include_coherent_errors=True, include_crosstalk=True)

    @classmethod
    def ideal(cls, device: DeviceModel) -> "NoiseModel":
        """A noise model that applies no noise at all (ideal execution)."""
        return cls(
            device,
            include_coherent_errors=False,
            include_crosstalk=False,
            include_readout_error=False,
            include_gate_error=False,
            include_relaxation=False,
        )

    def is_noiseless(self) -> bool:
        return not (
            self.include_coherent_errors
            or self.include_crosstalk
            or self.include_readout_error
            or self.include_gate_error
            or self.include_relaxation
        )

    # -- idle noise ------------------------------------------------------------
    def idle_channels(
        self,
        qubit: int,
        start_ns: float,
        end_ns: float,
        idle_neighbors: Optional[Sequence[int]] = None,
    ) -> List[ChannelOp]:
        """Noise applied to ``qubit`` while it idles from ``start_ns`` to ``end_ns``.

        ``idle_neighbors`` lists coupled qubits that are also idle during (part
        of) the interval; ZZ crosstalk is accumulated against those.  The ZZ
        angle is split evenly between the two qubits' own idle processing so
        overlapping intervals are not double counted.
        """
        neighbors_key = tuple(idle_neighbors) if idle_neighbors else ()
        key = ("idle", qubit, start_ns, end_ns, neighbors_key, self._flag_key())
        return self._cached_channels(
            key, lambda: self._build_idle_channels(qubit, start_ns, end_ns, idle_neighbors)
        )

    def _build_idle_channels(
        self,
        qubit: int,
        start_ns: float,
        end_ns: float,
        idle_neighbors: Optional[Sequence[int]] = None,
    ) -> List[ChannelOp]:
        duration = end_ns - start_ns
        if duration <= 1e-12:
            return []
        props = self.device.qubits[qubit]
        ops: List[ChannelOp] = []
        if self.include_relaxation:
            ops.append(
                ChannelOp(
                    channels.thermal_relaxation_kraus(duration, props.t1_ns, props.t2_ns),
                    (qubit,),
                )
            )
        if self.include_coherent_errors:
            phase = props.integrated_detuning(
                start_ns + self.time_offset_ns, end_ns + self.time_offset_ns
            )
            if phase:
                ops.append(ChannelOp(channels.coherent_z_kraus(phase), (qubit,)))
        if self.include_crosstalk and idle_neighbors:
            for neighbor in idle_neighbors:
                rate = self.device.zz_rate(qubit, neighbor)
                if rate:
                    # Half the accumulated angle from each side of the pair.
                    angle = 0.5 * rate * duration
                    ops.append(ChannelOp(channels.coherent_zz_kraus(angle), (qubit, neighbor)))
        return ops

    # -- gate noise ---------------------------------------------------------------
    def gate_channels(self, name: str, qubits: Sequence[int]) -> List[ChannelOp]:
        """Noise applied together with a gate (after its ideal unitary)."""
        key = ("gate", name, tuple(qubits), self._flag_key())
        return self._cached_channels(key, lambda: self._build_gate_channels(name, qubits))

    def _build_gate_channels(self, name: str, qubits: Sequence[int]) -> List[ChannelOp]:
        name = name.lower()
        if name in ("barrier", "delay", "measure", "id", "rz", "p"):
            return []
        ops: List[ChannelOp] = []
        duration = self.device.gate_duration(name, qubits)
        if self.include_relaxation and duration > 0:
            for q in qubits:
                props = self.device.qubits[q]
                ops.append(
                    ChannelOp(
                        channels.thermal_relaxation_kraus(duration, props.t1_ns, props.t2_ns),
                        (q,),
                    )
                )
        if self.include_gate_error:
            error = self.device.gate_error(name, qubits)
            if error > 0:
                ops.append(
                    ChannelOp(
                        channels.depolarizing_kraus(error, num_qubits=len(qubits)),
                        tuple(qubits),
                    )
                )
        return ops

    # -- readout ---------------------------------------------------------------------
    def readout_confusion(self, qubit: int) -> np.ndarray:
        """2x2 confusion matrix for the qubit (identity when readout error is off)."""
        if not self.include_readout_error:
            return np.eye(2)
        return self.device.readout_confusion_matrix(qubit)

    def measurement_prelude_channels(self, qubit: int) -> List[ChannelOp]:
        """Relaxation during the readout pulse itself (applied before sampling)."""
        key = ("measure", qubit, self._flag_key())
        return self._cached_channels(key, lambda: self._build_measurement_prelude(qubit))

    def _build_measurement_prelude(self, qubit: int) -> List[ChannelOp]:
        if not self.include_relaxation:
            return []
        props = self.device.qubits[qubit]
        duration = self.device.readout_duration_ns
        return [
            ChannelOp(
                channels.thermal_relaxation_kraus(duration, props.t1_ns, props.t2_ns),
                (qubit,),
            )
        ]

    def __repr__(self):
        flavour = "device" if self.include_coherent_errors else (
            "ideal" if self.is_noiseless() else "calibration"
        )
        return f"NoiseModel({self.device.name}, flavour={flavour})"
