"""Pauli-transfer-matrix (PTM) simulation backend.

In the PTM picture an n-qubit state is the real vector of its components in
the normalised Pauli basis ``b_a = P_a / 2**(n/2)`` (``r_a = Tr[b_a rho]``),
and *every* operation — unitary gates and noise channels alike — is one real
``4**k x 4**k`` matrix acting on the targeted qubit axes:

    r' = R r,      R_ij = Tr[P_i E(P_j)] / 2**k.

That uniformity is the whole point: where the dense backend applies a gate as
two complex contractions and each Kraus channel as another, consecutive
operations on the same qubit footprint here *fuse* into a single composed
matrix (``R = R_m @ ... @ R_1``) applied once, and a batch of states evolves
as one ``(batch, 4**n)`` real array per kernel call.  Fewer, larger,
BLAS-shaped kernels — the throughput lever this reproduction's hot path needs
on CPU, and the layout a CuPy drop-in would want on GPU.

The module provides:

* :func:`pauli_basis` — the (unnormalised) n-qubit Pauli operator basis,
* :func:`unitary_to_ptm` / :func:`kraus_to_ptm` — PTM compilation, with
  content-keyed LRU-cached fronts :func:`unitary_ptm` / :func:`channel_ptm`,
* :class:`PauliVectorState` — one state *or a batch* as a ``(batch, 4**n)``
  real array, with probability/marginal semantics matching
  :class:`~repro.simulators.density_matrix.DensityMatrix` and direct Pauli
  expectation values (no density-matrix round trip),
* :class:`PTMEvolver` — the schedule walker: consumes the *same*
  :meth:`NoisySimulator.schedule_ops` stream as the dense backend and applies
  it as fused PTM kernels through a resumable :class:`PTMCursor`.

Determinism contract (what lets the engine mix cold runs, warm resumes and
batches freely): fused runs never cross an instruction index that is a
multiple of :attr:`PTMEvolver.fusion_stride`, so the sequence of composed
kernels is a pure function of schedule content — independent of where the
engine chooses to pause, checkpoint or resume, as long as resume depths fall
on the stride grid (the engine rounds its checkpoint interval accordingly).
Batched kernels are elementwise along the batch axis, so evolving rows
together is bit-identical to evolving them one at a time.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SimulationError
from .density_matrix import DensityMatrix
from .noise_model import ChannelOp, NoiseModel
from .noisy_simulator import (
    NoisySimulator,
    ScheduleContext,
    SimOp,
    _segment_last_time_updates,
)

_PAULIS_1Q = (
    np.eye(2, dtype=complex),
    np.array([[0, 1], [1, 0]], dtype=complex),
    np.array([[0, -1j], [1j, 0]], dtype=complex),
    np.array([[1, 0], [0, -1]], dtype=complex),
)

#: Normalised single-qubit basis stacked as a (4, 2, 2) tensor; the building
#: block of the state <-> density-matrix conversions.
_BASIS_1Q = np.stack(_PAULIS_1Q) / math.sqrt(2.0)

_LABEL_TO_DIGIT = {"I": 0, "X": 1, "Y": 2, "Z": 3}


@lru_cache(maxsize=None)
def pauli_basis(num_qubits: int) -> np.ndarray:
    """The unnormalised Pauli operator basis as a ``(4**n, 2**n, 2**n)`` stack.

    Index ``a`` is base-4 big-endian over qubits (qubit 0 is the most
    significant digit), matching the computational-basis bit convention of
    :class:`DensityMatrix`.
    """
    if num_qubits < 1:
        raise SimulationError("the Pauli basis needs at least one qubit")
    basis = np.stack(_PAULIS_1Q)
    for _ in range(num_qubits - 1):
        basis = np.stack(
            [np.kron(a, b) for a in basis for b in _PAULIS_1Q]
        )
    basis.setflags(write=False)
    return basis


# ----------------------------------------------------------------------------
# PTM compilation (with a content-keyed LRU)
# ----------------------------------------------------------------------------

def kraus_to_ptm(kraus: Sequence[np.ndarray]) -> np.ndarray:
    """The PTM of the channel with the given Kraus operators.

    ``R_ij = Tr[P_i sum_k K P_j K^dagger] / 2**n`` — real for any
    Hermiticity-preserving map (every channel here), so the imaginary
    residue is dropped.
    """
    kraus = [np.asarray(k, dtype=complex) for k in kraus]
    dim = kraus[0].shape[0]
    num_qubits = int(round(math.log2(dim)))
    if 2 ** num_qubits != dim:
        raise SimulationError("Kraus operator dimension is not a power of two")
    basis = pauli_basis(num_qubits)
    images = np.zeros_like(basis)
    for k in kraus:
        images += np.einsum("ab,jbc,dc->jad", k, basis, k.conj())
    ptm = np.einsum("iab,jba->ij", basis, images).real / dim
    return np.ascontiguousarray(ptm)


def unitary_to_ptm(matrix: np.ndarray) -> np.ndarray:
    """The (orthogonal) PTM of a unitary gate."""
    return kraus_to_ptm([matrix])


_PTM_CACHE_CAPACITY = 4096
_ptm_cache: "OrderedDict[Tuple[str, str], np.ndarray]" = OrderedDict()
_ptm_lock = threading.Lock()


def _content_key(*arrays: np.ndarray) -> str:
    # Imported lazily: repro.engine imports this package at import time.
    from ..engine.fingerprint import array_content_key

    return array_content_key(*arrays)


def _cached_ptm(key: Tuple[str, str], build) -> np.ndarray:
    with _ptm_lock:
        cached = _ptm_cache.get(key)
        if cached is not None:
            _ptm_cache.move_to_end(key)
            return cached
    ptm = build()
    ptm.setflags(write=False)
    with _ptm_lock:
        existing = _ptm_cache.get(key)
        if existing is not None:
            _ptm_cache.move_to_end(key)
            return existing
        _ptm_cache[key] = ptm
        while len(_ptm_cache) > _PTM_CACHE_CAPACITY:
            _ptm_cache.popitem(last=False)
    return ptm


def unitary_ptm(matrix: np.ndarray) -> np.ndarray:
    """LRU-cached :func:`unitary_to_ptm`, keyed on the matrix's exact content."""
    return _cached_ptm(("unitary", _content_key(matrix)), lambda: unitary_to_ptm(matrix))


def channel_ptm(channel: ChannelOp) -> np.ndarray:
    """LRU-cached PTM of a noise channel, keyed on its Kraus operators' content.

    Two channels built independently but with identical operator entries
    (the common case: the noise model memoises channels per qubit/duration,
    and many qubits share calibration values) compile once.
    """
    key = ("kraus", _content_key(*channel.kraus))
    return _cached_ptm(key, lambda: kraus_to_ptm(channel.kraus))


def sim_op_ptm(op: SimOp) -> np.ndarray:
    """The PTM of one :class:`SimOp` from the schedule op stream."""
    if op.kind == "unitary":
        return unitary_ptm(op.payload)
    return channel_ptm(op.payload)


# ----------------------------------------------------------------------------
# Pauli-vector states
# ----------------------------------------------------------------------------

@lru_cache(maxsize=None)
def _iz_indices(num_qubits: int) -> np.ndarray:
    """Base-4 indices whose digits are all I or Z, ordered so that entry ``b``
    has digit Z exactly where computational index ``b`` has bit 1."""
    b = np.arange(2 ** num_qubits)
    indices = np.zeros(2 ** num_qubits, dtype=np.intp)
    for q in range(num_qubits):
        bit = (b >> (num_qubits - 1 - q)) & 1
        indices += bit * 3 * 4 ** (num_qubits - 1 - q)
    indices.setflags(write=False)
    return indices


def _walsh_hadamard(block: np.ndarray) -> np.ndarray:
    """Fast Walsh-Hadamard transform along the last axis of a ``(B, m)`` array.

    Pure +/- butterflies: exact row independence (batched == single-row, bit
    for bit) and a deterministic association order.
    """
    out = block.copy()
    rows, m = out.shape
    h = 1
    while h < m:
        view = out.reshape(rows, m // (2 * h), 2, h)
        x = view[:, :, 0, :].copy()
        y = view[:, :, 1, :].copy()
        view[:, :, 0, :] = x + y
        view[:, :, 1, :] = x - y
        h *= 2
    return out


class PauliVectorState:
    """One n-qubit state — or a batch of them — in the Pauli-vector picture.

    ``data`` is a real ``(batch, 4**n)`` float64 array; every operation is
    elementwise along the batch axis, so the single-state and batched code
    paths are the same code (and bit-identical per row).  The array layout is
    deliberately the one a GPU drop-in (CuPy) would use unchanged.
    """

    __slots__ = ("num_qubits", "data")

    def __init__(
        self,
        num_qubits: int,
        data: Optional[np.ndarray] = None,
        batch: int = 1,
    ):
        if num_qubits < 1:
            raise SimulationError("a Pauli-vector state needs at least one qubit")
        self.num_qubits = int(num_qubits)
        dim = 4 ** self.num_qubits
        if data is None:
            if batch < 1:
                raise SimulationError("batch size must be at least 1")
            # |0...0>: every I/Z component equals 2**(-n/2), all others zero.
            self.data = np.zeros((batch, dim), dtype=float)
            self.data[:, _iz_indices(self.num_qubits)] = 2.0 ** (-self.num_qubits / 2.0)
        else:
            data = np.asarray(data, dtype=float)
            if data.ndim == 1:
                data = data.reshape(1, -1)
            if data.ndim != 2 or data.shape[1] != dim:
                raise SimulationError(
                    f"expected a (batch, {dim}) Pauli vector, got {data.shape}"
                )
            self.data = data.copy()

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_density_matrix(cls, rho: DensityMatrix) -> "PauliVectorState":
        """Exact conversion ``r_a = Tr[b_a rho]`` (imaginary residue dropped)."""
        n = rho.num_qubits
        tensor = rho.data.reshape((2,) * (2 * n))
        remaining = n
        while remaining:
            # Contract (row, col) of the leading qubit with the normalised
            # basis: the new Pauli axis appends at the end, in qubit order.
            tensor = np.tensordot(tensor, _BASIS_1Q, axes=((remaining, 0), (1, 2)))
            remaining -= 1
        vector = np.real(tensor).reshape(1, 4 ** n)
        return cls(n, data=vector)

    @classmethod
    def stack(cls, states: Sequence["PauliVectorState"]) -> "PauliVectorState":
        """Concatenate states row-wise into one batched state (exact copies)."""
        if not states:
            raise SimulationError("cannot stack zero states")
        n = states[0].num_qubits
        if any(s.num_qubits != n for s in states):
            raise SimulationError("cannot stack states of different sizes")
        return cls(n, data=np.concatenate([s.data for s in states], axis=0))

    def copy(self) -> "PauliVectorState":
        return PauliVectorState(self.num_qubits, data=self.data)

    def row(self, index: int) -> "PauliVectorState":
        """A single-state copy of one batch row."""
        return PauliVectorState(self.num_qubits, data=self.data[index : index + 1])

    # -- basic properties ---------------------------------------------------
    @property
    def batch(self) -> int:
        return int(self.data.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def trace(self) -> float:
        """``Tr[rho]`` of a single state (``r_0 * 2**(n/2)``)."""
        self._require_single()
        return float(self.data[0, 0] * 2.0 ** (self.num_qubits / 2.0))

    def purity(self) -> float:
        """``Tr[rho^2]`` — the squared norm of the Pauli vector."""
        self._require_single()
        return float(np.dot(self.data[0], self.data[0]))

    def _require_single(self) -> None:
        if self.data.shape[0] != 1:
            raise SimulationError(
                "this operation needs a single state; use the batch_* variant"
            )

    # -- evolution ----------------------------------------------------------
    def apply_ptm(self, ptm: np.ndarray, positions: Sequence[int]) -> None:
        """Apply a ``4**k x 4**k`` PTM to the given qubit positions, all rows."""
        ptm = np.asarray(ptm, dtype=float)
        k = len(positions)
        if ptm.shape != (4 ** k, 4 ** k):
            raise SimulationError("PTM dimension does not match the target qubits")
        if len(set(positions)) != k or any(
            not 0 <= q < self.num_qubits for q in positions
        ):
            raise SimulationError(f"invalid target qubits {tuple(positions)}")
        n = self.num_qubits
        rows = self.data.shape[0]
        tensor = self.data.reshape((rows,) + (4,) * n)
        op = ptm.reshape((4,) * (2 * k))
        axes = [p + 1 for p in positions]
        out = np.tensordot(op, tensor, axes=(list(range(k, 2 * k)), axes))
        # tensordot puts the operator's output indices first; move every axis
        # back to its canonical position (mirrors DensityMatrix._contract).
        remaining = [axis for axis in range(n + 1) if axis not in axes]
        position = {}
        for index, axis in enumerate(axes):
            position[axis] = index
        for index, axis in enumerate(remaining):
            position[axis] = k + index
        out = np.transpose(out, [position[axis] for axis in range(n + 1)])
        self.data = np.ascontiguousarray(out.reshape(rows, 4 ** n))

    def apply_unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a unitary gate (compiled to a PTM via the content LRU)."""
        self.apply_ptm(unitary_ptm(np.asarray(matrix, dtype=complex)), tuple(qubits))

    def apply_superop(self, superop: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a channel given as a (column-stacking) superoperator.

        Present for interface parity with :class:`DensityMatrix`; the
        superoperator is converted through its Kraus form.
        """
        from .channels import kraus_from_superop

        kraus = kraus_from_superop(np.asarray(superop, dtype=complex))
        self.apply_ptm(kraus_to_ptm(kraus), tuple(qubits))

    # -- measurement --------------------------------------------------------
    def batch_probabilities(self) -> np.ndarray:
        """Computational-basis probabilities of every row, ``(batch, 2**n)``.

        Matches :meth:`DensityMatrix.probabilities` semantics per row:
        negative diagonal residue is clipped at zero and the distribution is
        renormalised.
        """
        n = self.num_qubits
        iz = self.data[:, _iz_indices(n)]
        probs = _walsh_hadamard(iz) * 2.0 ** (-n / 2.0)
        probs[probs < 0] = 0.0
        totals = probs.sum(axis=1)
        if np.any(totals <= 0):
            raise SimulationError("density matrix has no probability mass")
        return probs / totals[:, None]

    def probabilities(self) -> np.ndarray:
        """Computational-basis probabilities of a single state."""
        self._require_single()
        return self.batch_probabilities()[0]

    def batch_marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Per-row marginal outcome probabilities on ``qubits`` (given order)."""
        qubits = list(qubits)
        k = len(qubits)
        n = self.num_qubits
        if len(set(qubits)) != k or any(not 0 <= q < n for q in qubits):
            raise SimulationError(f"invalid target qubits {tuple(qubits)}")
        probs = self.batch_probabilities()
        rows = probs.shape[0]
        tensor = probs.reshape((rows,) + (2,) * n)
        keep = [q + 1 for q in qubits]
        other = tuple(axis for axis in range(1, n + 1) if axis not in keep)
        summed = tensor.sum(axis=other) if other else tensor
        # Summed axes keep ascending qubit order; reorder to the given order.
        ascending = sorted(qubits)
        perm = [0] + [1 + ascending.index(q) for q in qubits]
        return np.ascontiguousarray(summed.transpose(perm).reshape(rows, 2 ** k))

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Marginal outcome probabilities of a single state."""
        self._require_single()
        return self.batch_marginal_probabilities(qubits)[0]

    def expectation(self, observable, positions: Optional[Sequence[int]] = None) -> np.ndarray:
        """Exact ``<O>`` per batch row, straight from the Pauli vector.

        ``observable`` is a :class:`~repro.operators.pauli.PauliSum`; each
        term ``<P> = r_idx(P) * 2**(n/2)`` is a single component lookup — no
        density matrix, no basis rotation.  ``positions`` maps the
        observable's logical qubits to state positions (identity by default).
        Assumes trace-1 rows (trace-preserving evolution keeps them so).
        """
        n = self.num_qubits
        if positions is None:
            positions = tuple(range(observable.num_qubits))
        positions = tuple(positions)
        if len(positions) != observable.num_qubits:
            raise SimulationError("positions must map every observable qubit")
        values = np.full(self.data.shape[0], observable.identity_coefficient())
        scale = 2.0 ** (n / 2.0)
        for pauli, coeff in observable.non_identity_terms():
            index = 0
            for q, letter in enumerate(pauli.label):
                index += _LABEL_TO_DIGIT[letter] * 4 ** (n - 1 - positions[q])
            values = values + coeff * self.data[:, index] * scale
        return values

    # -- conversion ---------------------------------------------------------
    def to_density_matrix(self) -> DensityMatrix:
        """Exact conversion ``rho = sum_a r_a b_a`` of a single state."""
        self._require_single()
        n = self.num_qubits
        tensor = self.data[0].reshape((4,) * n).astype(complex)
        for _ in range(n):
            # Contract the leading Pauli axis with the normalised basis; the
            # (row, col) pair of that qubit appends at the end, in order.
            tensor = np.tensordot(tensor, _BASIS_1Q, axes=([0], [0]))
        perm = [2 * q for q in range(n)] + [2 * q + 1 for q in range(n)]
        matrix = tensor.transpose(perm).reshape(2 ** n, 2 ** n)
        return DensityMatrix(n, data=matrix)


# ----------------------------------------------------------------------------
# Schedule evolution
# ----------------------------------------------------------------------------

class PTMCursor:
    """Mid-schedule PTM evolution state, plus per-leg kernel counters.

    ``matmuls`` / ``fused`` count work done *since this cursor was created or
    copied* — the engine folds them into its stats and snapshot copies start
    from zero, so resumed legs never double-count.  The ``segment_*``
    counters track segment-cache outcomes of segmented advances (see
    :mod:`repro.engine.segments`) under the same contract.
    """

    __slots__ = (
        "state",
        "last_time",
        "next_index",
        "matmuls",
        "fused",
        "segment_hits",
        "segment_misses",
        "segment_instructions",
    )

    def __init__(
        self,
        state: PauliVectorState,
        last_time: Dict[int, float],
        next_index: int = 0,
    ):
        self.state = state
        self.last_time = last_time
        self.next_index = next_index
        self.matmuls = 0
        self.fused = 0
        self.segment_hits = 0
        self.segment_misses = 0
        self.segment_instructions = 0

    def copy(self) -> "PTMCursor":
        return PTMCursor(self.state.copy(), dict(self.last_time), self.next_index)

    @property
    def nbytes(self) -> int:
        return int(self.state.data.nbytes)


class PTMEvolver:
    """Walks schedules as fused PTM kernels; drop-in for :class:`NoisySimulator`
    behind the engine's cursor API (``prepare`` / ``begin`` / ``advance``).

    Fusion rule: consecutive ops of the op stream acting on the *same* qubit
    footprint compose into one pending PTM (``pending = R_op @ pending``),
    flushed when the footprint changes — and unconditionally at instruction
    indices that are multiples of :attr:`fusion_stride`, which pins the
    composed-kernel sequence to schedule content alone (see module docstring).
    """

    #: Fusion runs never cross instruction indices that are multiples of this;
    #: the engine also aligns its checkpoint interval (and therefore every
    #: snapshot/resume depth) to it.
    fusion_stride = 8

    def __init__(self, noise_model: NoiseModel, canonical_order: bool = True):
        self._simulator = NoisySimulator(noise_model, canonical_order=canonical_order)
        self.noise_model = noise_model
        self.canonical_order = self._simulator.canonical_order

    def prepare(self, scheduled) -> ScheduleContext:
        return self._simulator.prepare(scheduled)

    def begin(self, scheduled, context: Optional[ScheduleContext] = None) -> PTMCursor:
        context = context or self.prepare(scheduled)
        return PTMCursor(
            PauliVectorState(scheduled.num_qubits),
            dict(context.initial_last_time),
            0,
        )

    def advance(
        self,
        scheduled,
        cursor: PTMCursor,
        context: Optional[ScheduleContext] = None,
        stop_index: Optional[int] = None,
        segments=None,
    ) -> PTMCursor:
        """Process instructions ``cursor.next_index .. stop_index`` in place.

        ``segments`` — a :class:`repro.engine.segments.SegmentRuntime` with
        one key per fusion-stride block — enables segment-level reuse: each
        *whole* stride block's fused kernels are recorded in / replayed from
        the shared segment cache.  Off-grid resumes or stops fall back to the
        plain walk for the partial block (segment records always cover whole
        blocks), so arbitrary stop indices stay valid.  Replay applies the
        identical composed kernels in the identical order — and re-counts
        ``matmuls``/``fused`` as the cold walk would — so states and work
        counters are bit-identical with ``segments`` on or off.
        """
        context = context or self.prepare(scheduled)
        stop = len(context.ordered) if stop_index is None else min(stop_index, len(context.ordered))
        if segments is None:
            return self._advance_plain(scheduled, cursor, context, stop)
        stride = self.fusion_stride
        total = len(context.ordered)
        while cursor.next_index < stop:
            block_start = (cursor.next_index // stride) * stride
            block_end = min(block_start + stride, total)
            if cursor.next_index != block_start or stop < block_end:
                self._advance_plain(scheduled, cursor, context, min(stop, block_end))
            else:
                self._advance_block(
                    scheduled, cursor, context, block_start, block_end, segments
                )
        return cursor

    def _advance_plain(
        self,
        scheduled,
        cursor: PTMCursor,
        context: ScheduleContext,
        stop: int,
    ) -> PTMCursor:
        state = cursor.state
        stride = self.fusion_stride
        pending: Optional[np.ndarray] = None
        pending_positions: Optional[Tuple[int, ...]] = None
        pending_block = -1
        for op in self._simulator.schedule_ops(
            scheduled, context, cursor.last_time, cursor.next_index, stop
        ):
            ptm = sim_op_ptm(op)
            block = op.index // stride
            if pending is not None and (
                op.positions != pending_positions or block != pending_block
            ):
                state.apply_ptm(pending, pending_positions)
                cursor.matmuls += 1
                pending = None
            if pending is None:
                pending = ptm
                pending_positions = op.positions
                pending_block = block
            else:
                pending = ptm @ pending
                cursor.fused += 1
        if pending is not None:
            state.apply_ptm(pending, pending_positions)
            cursor.matmuls += 1
        cursor.next_index = stop
        return cursor

    def _advance_block(
        self,
        scheduled,
        cursor: PTMCursor,
        context: ScheduleContext,
        start: int,
        stop: int,
        segments,
    ) -> PTMCursor:
        """Segment-cached walk of one whole fusion-stride block.

        The cold path runs the standard fusion loop confined to the block
        (fused runs never cross block boundaries, so confinement changes
        nothing) while recording each flushed ``(kernel, positions, fused)``
        triple; the warm path replays the triples.  Both apply the same
        arrays in the same order.
        """
        cache = segments.cache
        key = segments.keys[start // self.fusion_stride]
        record, claim = cache.acquire(key)
        state = cursor.state
        if record is None:
            ops = []
            try:
                pending: Optional[np.ndarray] = None
                pending_positions: Optional[Tuple[int, ...]] = None
                run_fused = 0
                for op in self._simulator.schedule_ops(
                    scheduled, context, cursor.last_time, start, stop
                ):
                    ptm = sim_op_ptm(op)
                    if pending is not None and op.positions != pending_positions:
                        state.apply_ptm(pending, pending_positions)
                        cursor.matmuls += 1
                        ops.append((pending, pending_positions, run_fused))
                        pending = None
                    if pending is None:
                        pending = ptm
                        pending_positions = op.positions
                        run_fused = 0
                    else:
                        pending = ptm @ pending
                        cursor.fused += 1
                        run_fused += 1
                if pending is not None:
                    state.apply_ptm(pending, pending_positions)
                    cursor.matmuls += 1
                    ops.append((pending, pending_positions, run_fused))
            except BaseException:
                cache.abandon(key, claim)
                raise
            updates: List[Tuple[int, float]] = []
            for index in range(start, stop):
                updates.extend(_segment_last_time_updates(context.ordered[index]))
            cache.fulfil(key, claim, tuple(ops), tuple(updates), stop - start)
            cursor.segment_misses += 1
        else:
            for ptm, positions, run_fused in record.ops:
                state.apply_ptm(ptm, positions)
                cursor.matmuls += 1
                cursor.fused += run_fused
            for position, end_ns in record.last_time:
                cursor.last_time[position] = end_ns
            cursor.segment_hits += 1
            cursor.segment_instructions += record.instructions
        cursor.next_index = stop
        return cursor

    def run(self, scheduled) -> PauliVectorState:
        """Evolve the Pauli vector through the full schedule."""
        context = self.prepare(scheduled)
        cursor = self.begin(scheduled, context)
        self.advance(scheduled, cursor, context)
        return cursor.state


def dense_contraction_count(noise_model: NoiseModel, scheduled, canonical_order: bool = True) -> int:
    """How many tensor contractions the dense backend spends on a schedule.

    Walks the op stream without simulating: a unitary costs two contractions
    (U.., ..U^dagger), a channel superoperator one.  The benchmark's kernel
    comparison uses this as the dense-side invocation count to set against
    the PTM backend's ``ptm_matmuls``.
    """
    simulator = NoisySimulator(noise_model, canonical_order=canonical_order)
    context = simulator.prepare(scheduled)
    last_time = dict(context.initial_last_time)
    count = 0
    for op in simulator.schedule_ops(
        scheduled, context, last_time, 0, len(context.ordered)
    ):
        count += 2 if op.kind == "unitary" else 1
    return count
