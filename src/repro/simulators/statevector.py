"""Ideal statevector simulation.

This is the "Ideal Simulation" backend of the paper's feasible flow: gate
rotation angles are tuned against noise-free expectation values before error
mitigation is tuned on the (noisy) machine.

Qubit 0 is the most-significant bit of the computational-basis index
(big-endian), consistently with :meth:`QuantumCircuit.to_unitary` and the
Pauli-string labelling in :mod:`repro.operators`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..exceptions import SimulationError
from ..operators.pauli import PauliSum
from .readout import probabilities_to_counts


def _apply_single_qubit(state: np.ndarray, matrix: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
    """Apply a 2x2 unitary to ``qubit`` of a big-endian statevector."""
    tensor = state.reshape([2] * num_qubits)
    tensor = np.moveaxis(tensor, qubit, 0)
    shape = tensor.shape
    tensor = matrix @ tensor.reshape(2, -1)
    tensor = tensor.reshape(shape)
    tensor = np.moveaxis(tensor, 0, qubit)
    return tensor.reshape(-1)


def _apply_two_qubit(
    state: np.ndarray, matrix: np.ndarray, qubit_a: int, qubit_b: int, num_qubits: int
) -> np.ndarray:
    """Apply a 4x4 unitary to ``(qubit_a, qubit_b)`` of a big-endian statevector."""
    tensor = state.reshape([2] * num_qubits)
    tensor = np.moveaxis(tensor, (qubit_a, qubit_b), (0, 1))
    shape = tensor.shape
    tensor = matrix @ tensor.reshape(4, -1)
    tensor = tensor.reshape(shape)
    tensor = np.moveaxis(tensor, (0, 1), (qubit_a, qubit_b))
    return tensor.reshape(-1)


def measured_distribution_from_probabilities(
    probs: np.ndarray, circuit: QuantumCircuit
) -> np.ndarray:
    """Map a computational-basis distribution onto the circuit's classical bits.

    Measurements are applied in circuit order, so when several measurements
    target the same classical bit the last one wins (matching per-shot
    overwrite semantics on hardware).
    """
    num_qubits = circuit.num_qubits
    measured = circuit.measured_qubits() or [(q, q) for q in range(num_qubits)]
    num_clbits = max(c for _, c in measured) + 1
    indices = np.arange(probs.size)
    keys = np.zeros(probs.size, dtype=np.int64)
    for qubit, clbit in measured:
        bits = (indices >> (num_qubits - 1 - qubit)) & 1
        mask = np.int64(1) << (num_clbits - 1 - clbit)
        keys = (keys & ~mask) | (bits << (num_clbits - 1 - clbit))
    return np.bincount(keys, weights=probs, minlength=2 ** num_clbits)


class StatevectorSimulator:
    """Exact, noise-free simulator for circuits of up to ~20 qubits."""

    def __init__(self, seed: Optional[int] = None):
        self._rng = np.random.default_rng(seed)

    # -- state evolution ---------------------------------------------------
    def run_statevector(self, circuit: QuantumCircuit) -> np.ndarray:
        """Return the final statevector of ``circuit`` (measurements ignored)."""
        if circuit.parameters:
            raise SimulationError("circuit still contains unbound parameters")
        num_qubits = circuit.num_qubits
        state = np.zeros(2 ** num_qubits, dtype=complex)
        state[0] = 1.0
        for inst in circuit.instructions:
            name = inst.name
            if name in ("barrier", "delay", "id", "measure"):
                continue
            matrix = inst.gate.matrix()
            if len(inst.qubits) == 1:
                state = _apply_single_qubit(state, matrix, inst.qubits[0], num_qubits)
            elif len(inst.qubits) == 2:
                state = _apply_two_qubit(state, matrix, inst.qubits[0], inst.qubits[1], num_qubits)
            else:
                raise SimulationError(f"unsupported gate arity for '{name}'")
        return state

    # -- measurement --------------------------------------------------------
    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """Computational-basis outcome probabilities of the final state."""
        state = self.run_statevector(circuit)
        return np.abs(state) ** 2

    def measured_distribution(self, circuit: QuantumCircuit) -> np.ndarray:
        """Outcome distribution over classical bits.

        Only qubits that are explicitly measured contribute; bit *i* of an
        outcome index corresponds to classical bit *i*.  Circuits without
        measurements are measured on all qubits.
        """
        return measured_distribution_from_probabilities(self.probabilities(circuit), circuit)

    def counts(
        self, circuit: QuantumCircuit, shots: int = 4096, seed: Optional[int] = None
    ) -> Dict[str, int]:
        """Sample measurement counts (bit *i* of the key is classical bit *i*).

        Sampling goes through :func:`repro.simulators.readout.
        probabilities_to_counts`, like the noisy simulator's, so an explicit
        ``seed`` reproduces the same counts regardless of how much of the
        simulator's own generator has been consumed.
        """
        distribution = self.measured_distribution(circuit)
        rng = np.random.default_rng(seed) if seed is not None else self._rng
        return probabilities_to_counts(distribution, shots, rng=rng)

    # -- observables ---------------------------------------------------------
    def expectation(self, circuit: QuantumCircuit, observable: PauliSum) -> float:
        """Exact expectation value ``<psi|H|psi>`` of ``observable``."""
        bare = circuit.remove_final_measurements()
        if bare.num_qubits != observable.num_qubits:
            raise SimulationError(
                f"observable acts on {observable.num_qubits} qubits, circuit has {bare.num_qubits}"
            )
        state = self.run_statevector(bare)
        return observable.expectation_from_statevector(state)
