"""Schedule-aware noisy density-matrix simulation.

This simulator plays the role of the quantum machine in the reproduction: it
walks a :class:`~repro.transpiler.scheduling.ScheduledCircuit` in time order,
applying each gate's unitary followed by its noise channels, and — crucially
for idle-time error mitigation — applying idle noise (relaxation, coherent
detuning phase, ZZ crosstalk with idle neighbours) for every gap a qubit
spends doing nothing.  Because the coherent idle errors are applied at the
times they physically occur, echo pulses and DD sequences inserted into idle
windows refocus them *emergently*, with no special-casing in the simulator.

Execution is factored into a resumable *cursor* API so that the execution
engine (:mod:`repro.engine`) can checkpoint the evolution at instruction
boundaries and resume a later schedule from a shared prefix:

* :meth:`NoisySimulator.prepare` derives the per-schedule lookup tables,
* :meth:`NoisySimulator.begin` produces the initial :class:`EvolutionCursor`,
* :meth:`NoisySimulator.advance` processes instructions up to a stop index.

:meth:`NoisySimulator.run` composes the three and is bit-identical to running
the schedule in one sweep; a cursor resumed from a checkpoint of an identical
prefix is bit-identical too, because processing an instruction only consults
schedule content at or before its start time.

The processing order itself is the *canonical* commutation-aware order of
:mod:`repro.engine.canonical` (``canonical_order=True``, the default): a pure
function of schedule content that lists provably-commuting instructions in a
deterministic normal form.  Schedules that differ only in a benign
permutation of commuting instructions therefore process the identical
instruction sequence — bit-identical results, and shareable prefix
checkpoints for the engine layer.  Pass ``canonical_order=False`` to process
the plain time-sorted order instead (the pre-canonicalisation behaviour; the
two orders are mathematically equivalent but differ at float rounding level
when commuting instructions swap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SimulationError
from ..transpiler.scheduling import ScheduledCircuit, TimedInstruction
from .density_matrix import DensityMatrix
from .noise_model import NoiseModel
from .readout import apply_readout_error, probabilities_to_counts


@dataclass
class SimOp:
    """One state-space operation of a schedule's op stream.

    ``kind`` is ``"unitary"`` (``payload`` is the gate matrix) or
    ``"channel"`` (``payload`` is a :class:`~repro.simulators.noise_model.ChannelOp`).
    ``index`` is the position of the originating instruction in the context's
    canonical order — backends use it to align work (e.g. fusion boundaries)
    to instruction boundaries deterministically.
    """

    kind: str
    payload: object
    positions: Tuple[int, ...]
    index: int


@dataclass
class ScheduleContext:
    """Per-schedule lookup tables shared by every cursor over that schedule."""

    ordered: List[TimedInstruction]
    busy: Dict[int, List[Tuple[float, float]]]
    neighbors: Dict[int, List[int]]
    initial_last_time: Dict[int, float]


class EvolutionCursor:
    """Mid-schedule simulation state: density matrix plus idle bookkeeping.

    ``next_index`` points at the next entry of the context's ``ordered`` list
    to process.  Cursors are cheap to copy (the density matrix dominates), so
    the engine snapshots them at instruction boundaries for prefix reuse.

    ``segment_hits`` / ``segment_misses`` / ``segment_instructions`` count
    segment-cache outcomes accumulated by segmented advances (see
    :mod:`repro.engine.segments`); like the PTM cursor's work counters they
    belong to one execution, so :meth:`copy` starts them at zero.
    """

    __slots__ = (
        "state",
        "last_time",
        "next_index",
        "segment_hits",
        "segment_misses",
        "segment_instructions",
    )

    def __init__(self, state: DensityMatrix, last_time: Dict[int, float], next_index: int = 0):
        self.state = state
        self.last_time = last_time
        self.next_index = next_index
        self.segment_hits = 0
        self.segment_misses = 0
        self.segment_instructions = 0

    def copy(self) -> "EvolutionCursor":
        return EvolutionCursor(self.state.copy(), dict(self.last_time), self.next_index)

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint (used by the engine's snapshot budget)."""
        return int(self.state.data.nbytes)


class NoisySimulator:
    """Density-matrix simulator driven by a scheduled circuit and a noise model."""

    def __init__(
        self,
        noise_model: NoiseModel,
        seed: Optional[int] = None,
        canonical_order: bool = True,
    ):
        self.noise_model = noise_model
        #: Process instructions in the commutation-aware canonical order of
        #: :mod:`repro.engine.canonical` (the default) rather than the plain
        #: time-sorted order; see the module docstring.
        self.canonical_order = bool(canonical_order)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Core evolution
    # ------------------------------------------------------------------
    def prepare(self, scheduled: ScheduledCircuit) -> ScheduleContext:
        """Build the per-schedule lookup tables used while stepping.

        ``context.ordered`` is the simulator's processing order — canonical
        when :attr:`canonical_order` is set — and is what the engine layer's
        schedule hash chains digest, so chain prefixes always identify
        exactly the instruction sequence :meth:`advance` replays.
        """
        if scheduled.num_qubits > 10:
            raise SimulationError("density-matrix simulation is limited to 10 qubits")
        if self.canonical_order:
            # Imported lazily: repro.engine pulls this module in at package
            # import time, and the canonicalisation helpers live with the
            # other content-keying code in the engine layer.
            from ..engine.canonical import canonical_order

            ordered = canonical_order(scheduled)
        else:
            ordered = scheduled.sorted_instructions()
        # Idle tracking starts at each qubit's first activity, since noise on
        # |0> before the runtime begins has no observable effect.
        initial_last_time: Dict[int, float] = {}
        for position in range(scheduled.num_qubits):
            ops = [t for t in ordered if position in t.qubits and t.name != "barrier"]
            initial_last_time[position] = min((t.start_ns for t in ops), default=0.0)
        return ScheduleContext(
            ordered=ordered,
            busy=self._busy_intervals(scheduled),
            neighbors=self._coupled_positions(scheduled),
            initial_last_time=initial_last_time,
        )

    def begin(
        self, scheduled: ScheduledCircuit, context: Optional[ScheduleContext] = None
    ) -> EvolutionCursor:
        """The cursor at time zero (|0...0> density matrix, nothing processed)."""
        context = context or self.prepare(scheduled)
        return EvolutionCursor(
            DensityMatrix(scheduled.num_qubits), dict(context.initial_last_time), 0
        )

    def advance(
        self,
        scheduled: ScheduledCircuit,
        cursor: EvolutionCursor,
        context: Optional[ScheduleContext] = None,
        stop_index: Optional[int] = None,
        segments=None,
    ) -> EvolutionCursor:
        """Process instructions ``cursor.next_index .. stop_index`` in place.

        Measurement instructions contribute their pre-readout relaxation but
        no collapse; sampling happens in :meth:`probabilities` / :meth:`counts`.

        ``segments`` — a :class:`repro.engine.segments.SegmentRuntime` (or any
        object with ``cache`` and per-instruction ``keys``) — enables
        segment-level reuse: each instruction's compiled op list is recorded
        in / replayed from the shared segment cache, skipping the schedule
        walk for instructions any earlier execution already compiled.  The
        applied operator sequence is identical either way, so results are
        bit-identical with ``segments`` on or off.
        """
        context = context or self.prepare(scheduled)
        stop = len(context.ordered) if stop_index is None else min(stop_index, len(context.ordered))
        if segments is not None:
            return self._advance_segmented(scheduled, cursor, context, stop, segments)
        state = cursor.state

        for op in self.schedule_ops(
            scheduled, context, cursor.last_time, cursor.next_index, stop
        ):
            if op.kind == "unitary":
                state.apply_unitary(op.payload, op.positions)
            else:
                state.apply_superop(op.payload.superop, op.positions)
        cursor.next_index = stop
        return cursor

    def _advance_segmented(
        self,
        scheduled: ScheduledCircuit,
        cursor: EvolutionCursor,
        context: ScheduleContext,
        stop: int,
        segments,
    ) -> EvolutionCursor:
        """Segment-cached advance: one segment per instruction (stride 1).

        A miss walks the instruction through :meth:`schedule_ops` exactly as
        the plain path does — applying each op as it streams out — while
        recording ``(kind, payload, positions)`` triples plus the
        instruction's ``last_time`` updates.  A hit replays the recorded
        triples in order and applies the recorded updates, skipping idle-gap
        analysis and channel assembly entirely.
        """
        state = cursor.state
        cache = segments.cache
        keys = segments.keys
        for index in range(cursor.next_index, stop):
            record, claim = cache.acquire(keys[index])
            if record is None:
                ops = []
                try:
                    for op in self.schedule_ops(scheduled, context, cursor.last_time, index, index + 1):
                        if op.kind == "unitary":
                            state.apply_unitary(op.payload, op.positions)
                        else:
                            state.apply_superop(op.payload.superop, op.positions)
                        ops.append((op.kind, op.payload, op.positions))
                except BaseException:
                    cache.abandon(keys[index], claim)
                    raise
                cache.fulfil(
                    keys[index],
                    claim,
                    tuple(ops),
                    _segment_last_time_updates(context.ordered[index]),
                    1,
                )
                cursor.segment_misses += 1
            else:
                for kind, payload, positions in record.ops:
                    if kind == "unitary":
                        state.apply_unitary(payload, positions)
                    else:
                        state.apply_superop(payload.superop, positions)
                for position, end_ns in record.last_time:
                    cursor.last_time[position] = end_ns
                cursor.segment_hits += 1
                cursor.segment_instructions += record.instructions
        cursor.next_index = stop
        return cursor

    def schedule_ops(
        self,
        scheduled: ScheduledCircuit,
        context: ScheduleContext,
        last_time: Dict[int, float],
        start: int,
        stop: int,
    ):
        """Yield the :class:`SimOp` stream of instructions ``start .. stop``.

        This is *the* definition of the schedule's operator sequence: the
        dense path (:meth:`advance`) and the PTM backend
        (:class:`~repro.simulators.ptm.PTMEvolver`) both consume it, so they
        apply the identical operators in the identical order.  ``last_time``
        is mutated in place as instructions stream out (op payloads never
        depend on simulation state, so consumers may buffer ops — e.g. for
        fusion — without changing the stream).
        """
        noise = self.noise_model
        for index in range(start, stop):
            timed = context.ordered[index]
            name = timed.name
            if name == "barrier":
                continue
            for position in timed.qubits:
                yield from self._idle_ops(
                    scheduled,
                    context.busy,
                    context.neighbors,
                    position,
                    last_time[position],
                    timed.start_ns,
                    index,
                )
            if name == "measure":
                for op in noise.measurement_prelude_channels(scheduled.physical_qubit(timed.qubits[0])):
                    yield SimOp(
                        "channel",
                        op,
                        self._map_positions(scheduled, op.qubits, timed.qubits),
                        index,
                    )
                last_time[timed.qubits[0]] = timed.end_ns
                continue
            if name not in ("id", "delay"):
                yield SimOp(
                    "unitary",
                    timed.instruction.gate.matrix(),
                    tuple(timed.qubits),
                    index,
                )
                physical = [scheduled.physical_qubit(q) for q in timed.qubits]
                for op in noise.gate_channels(name, physical):
                    positions = self._physical_to_positions(scheduled, op.qubits)
                    yield SimOp("channel", op, positions, index)
            for position in timed.qubits:
                last_time[position] = timed.end_ns

    def run(self, scheduled: ScheduledCircuit) -> DensityMatrix:
        """Evolve the density matrix through the full schedule."""
        context = self.prepare(scheduled)
        cursor = self.begin(scheduled, context)
        self.advance(scheduled, cursor, context)
        return cursor.state

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _busy_intervals(scheduled: ScheduledCircuit) -> Dict[int, List[Tuple[float, float]]]:
        intervals: Dict[int, List[Tuple[float, float]]] = {
            q: [] for q in range(scheduled.num_qubits)
        }
        for timed in scheduled.timed_instructions:
            if timed.name == "barrier" or timed.duration_ns <= 0:
                continue
            for q in timed.qubits:
                intervals[q].append((timed.start_ns, timed.end_ns))
        for q in intervals:
            intervals[q].sort()
        return intervals

    @staticmethod
    def _coupled_positions(scheduled: ScheduledCircuit) -> Dict[int, List[int]]:
        """Circuit positions coupled to each position on the device."""
        device = scheduled.device
        phys_to_pos = {p: i for i, p in enumerate(scheduled.physical_qubits)}
        coupled: Dict[int, List[int]] = {q: [] for q in range(scheduled.num_qubits)}
        for position, physical in enumerate(scheduled.physical_qubits):
            for neighbor in device.neighbors(physical):
                if neighbor in phys_to_pos:
                    coupled[position].append(phys_to_pos[neighbor])
        return coupled

    @staticmethod
    def _idle_overlap(busy: List[Tuple[float, float]], start: float, end: float) -> float:
        """Length of [start, end] during which a qubit with the given busy list idles.

        ``busy`` is sorted by start time, so intervals from the first one
        starting at or beyond ``end`` contribute exactly zero and the scan
        stops there (an arithmetic no-op, not an approximation).  The
        canonicalisation footprints (:mod:`repro.engine.canonical`) call
        this method so their ZZ judgement can never drift from the
        simulator's.
        """
        if end <= start:
            return 0.0
        occupied = 0.0
        for b_start, b_end in busy:
            if b_start >= end:
                break
            lo = max(start, b_start)
            hi = min(end, b_end)
            if hi > lo:
                occupied += hi - lo
        return (end - start) - occupied

    def _idle_ops(
        self,
        scheduled: ScheduledCircuit,
        busy: Dict[int, List[Tuple[float, float]]],
        neighbors: Dict[int, List[int]],
        position: int,
        start: float,
        end: float,
        index: int,
    ):
        if end - start <= 1e-9:
            return
        physical = scheduled.physical_qubit(position)
        # Neighbours idle during (most of) the interval participate in ZZ.
        idle_neighbors = []
        neighbor_positions = []
        for other in neighbors[position]:
            overlap = self._idle_overlap(busy[other], start, end)
            if overlap >= 0.5 * (end - start):
                idle_neighbors.append(scheduled.physical_qubit(other))
                neighbor_positions.append(other)
        ops = self.noise_model.idle_channels(physical, start, end, idle_neighbors)
        for op in ops:
            if len(op.qubits) == 1:
                yield SimOp("channel", op, (position,), index)
            else:
                # Two-qubit (ZZ) channel: map physical qubits back to positions.
                other_physical = op.qubits[1]
                other_position = neighbor_positions[idle_neighbors.index(other_physical)]
                yield SimOp("channel", op, (position, other_position), index)

    @staticmethod
    def _physical_to_positions(scheduled: ScheduledCircuit, physical: Sequence[int]) -> Tuple[int, ...]:
        mapping = {p: i for i, p in enumerate(scheduled.physical_qubits)}
        return tuple(mapping[p] for p in physical)

    @staticmethod
    def _map_positions(scheduled, op_qubits, fallback_positions) -> Tuple[int, ...]:
        mapping = {p: i for i, p in enumerate(scheduled.physical_qubits)}
        try:
            return tuple(mapping[p] for p in op_qubits)
        except KeyError:
            return tuple(fallback_positions)

    # ------------------------------------------------------------------
    # Measurement interfaces
    # ------------------------------------------------------------------
    def measured_probabilities(self, scheduled: ScheduledCircuit) -> Tuple[np.ndarray, List[int]]:
        """Outcome distribution over classical bits, with readout error applied.

        Returns ``(probabilities, clbit_order)`` where bit *i* of an outcome
        index corresponds to ``clbit_order[i]``.
        """
        measured = scheduled.measured_positions()
        if not measured:
            raise SimulationError("the scheduled circuit contains no measurements")
        state = self.run(scheduled)
        return state_measured_probabilities(state, scheduled, self.noise_model)

    def counts(
        self,
        scheduled: ScheduledCircuit,
        shots: int = 4096,
        exact: bool = False,
        seed: Optional[int] = None,
    ) -> Dict[str, int]:
        """Sampled (or exact expected) measurement counts keyed by bitstring.

        An explicit ``seed`` makes the sampling deterministic regardless of how
        many times the simulator's own generator has been consumed — the same
        contract :meth:`StatevectorSimulator.counts` honours.
        """
        probs, _ = self.measured_probabilities(scheduled)
        rng = np.random.default_rng(seed) if seed is not None else self._rng
        return probabilities_to_counts(probs, shots, rng=rng, exact=exact)

    def density_matrix(self, scheduled: ScheduledCircuit) -> DensityMatrix:
        """Alias of :meth:`run` for API clarity."""
        return self.run(scheduled)


def _segment_last_time_updates(timed: TimedInstruction) -> Tuple[Tuple[int, float], ...]:
    """The ``last_time`` updates processing ``timed`` applies, as replay data.

    Mirrors :meth:`NoisySimulator.schedule_ops` exactly: barriers update
    nothing, a measure advances only its measured position, every other
    instruction advances all of its positions to its end time.
    """
    if timed.name == "barrier":
        return ()
    if timed.name == "measure":
        return ((timed.qubits[0], timed.end_ns),)
    return tuple((position, timed.end_ns) for position in timed.qubits)


def state_measured_probabilities(
    state: DensityMatrix, scheduled: ScheduledCircuit, noise_model: NoiseModel
) -> Tuple[np.ndarray, List[int]]:
    """Readout-error-distorted outcome distribution of a pre-measurement state.

    Shared by :class:`NoisySimulator` and the execution engine (which obtains
    ``state`` from its cache rather than a fresh run).
    """
    measured = scheduled.measured_positions()
    if not measured:
        raise SimulationError("the scheduled circuit contains no measurements")
    measured = sorted(measured, key=lambda pair: pair[1])
    positions = [pos for pos, _ in measured]
    clbits = [cl for _, cl in measured]
    probs = state.marginal_probabilities(positions)
    confusions = [
        noise_model.readout_confusion(scheduled.physical_qubit(pos)) for pos in positions
    ]
    probs = apply_readout_error(probs, confusions)
    return probs, clbits
