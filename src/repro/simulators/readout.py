"""Readout-error application and measurement sampling.

The device's per-qubit confusion matrices distort the true outcome
distribution before sampling; measurement error mitigation (in
:mod:`repro.mitigation.mem`) later tries to undo exactly this distortion from
measured counts, so both sides share the helpers defined here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import SimulationError


def tensor_confusion_matrix(confusions: Sequence[np.ndarray]) -> np.ndarray:
    """Full confusion matrix of a register as the tensor product of per-qubit ones.

    ``confusions[i]`` is the 2x2 matrix of the qubit that forms bit ``i`` of
    the outcome bitstring (bit 0 is the left-most character, matching the
    big-endian convention used everywhere else).
    """
    full = np.array([[1.0]])
    for matrix in confusions:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != (2, 2):
            raise SimulationError("each confusion matrix must be 2x2")
        full = np.kron(full, matrix)
    return full


def apply_readout_error(probabilities: np.ndarray, confusions: Sequence[np.ndarray]) -> np.ndarray:
    """Distort a true outcome distribution by the readout confusion matrices."""
    probabilities = np.asarray(probabilities, dtype=float)
    expected = 2 ** len(confusions)
    if probabilities.size != expected:
        raise SimulationError(
            f"distribution has {probabilities.size} entries, expected {expected}"
        )
    distorted = tensor_confusion_matrix(confusions) @ probabilities
    distorted[distorted < 0] = 0.0
    total = distorted.sum()
    if total <= 0:
        raise SimulationError("readout error produced an empty distribution")
    return distorted / total


def probabilities_to_counts(
    probabilities: np.ndarray,
    shots: int,
    rng: Optional[np.random.Generator] = None,
    exact: bool = False,
) -> Dict[str, int]:
    """Convert an outcome distribution to counts.

    ``exact=True`` returns expected counts (rounded), which removes shot noise
    and is used by the deterministic "infinite shot" execution mode.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    width = int(np.log2(probabilities.size))
    if 2 ** width != probabilities.size:
        raise SimulationError("distribution length is not a power of two")
    counts: Dict[str, int] = {}
    if exact:
        raw = probabilities * shots
        for index, value in enumerate(raw):
            rounded = int(round(value))
            if rounded > 0:
                counts[format(index, f"0{width}b")] = rounded
        return counts
    rng = rng or np.random.default_rng()
    sampled = rng.multinomial(shots, probabilities / probabilities.sum())
    for index, value in enumerate(sampled):
        if value > 0:
            counts[format(index, f"0{width}b")] = int(value)
    return counts


def counts_to_probabilities(counts: Dict[str, int], num_bits: Optional[int] = None) -> np.ndarray:
    """Convert a counts dictionary into a normalised probability vector."""
    if not counts:
        raise SimulationError("empty counts")
    width = num_bits if num_bits is not None else len(next(iter(counts)))
    probs = np.zeros(2 ** width)
    total = 0
    for bitstring, count in counts.items():
        if len(bitstring) != width:
            raise SimulationError("inconsistent bitstring widths in counts")
        probs[int(bitstring, 2)] += count
        total += count
    return probs / total
