"""Quantum noise channels in Kraus representation.

The noisy simulator composes these single- and two-qubit channels:

* :func:`amplitude_damping_kraus` — T1 energy relaxation,
* :func:`phase_damping_kraus` — pure dephasing (the Markovian part of T2),
* :func:`thermal_relaxation_kraus` — both of the above for a given duration,
* :func:`depolarizing_kraus` — stochastic gate error of a given error rate,
* :func:`coherent_z_kraus` — a *coherent* Z rotation (unitary Kraus channel)
  used for quasi-static detunings; this is the component that echo pulses and
  DD sequences can refocus.

Every function returns a list of Kraus operators ``K_i`` with
``sum_i K_i^dagger K_i = I`` (validated by :func:`is_valid_channel`).
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..exceptions import NoiseModelError

_I2 = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)


def identity_kraus(num_qubits: int = 1) -> List[np.ndarray]:
    """The trivial channel."""
    return [np.eye(2 ** num_qubits, dtype=complex)]


def amplitude_damping_kraus(gamma: float) -> List[np.ndarray]:
    """Amplitude damping with decay probability ``gamma`` (|1> -> |0>)."""
    if not 0.0 <= gamma <= 1.0:
        raise NoiseModelError("amplitude damping probability must lie in [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return [k0, k1]


def phase_damping_kraus(lam: float) -> List[np.ndarray]:
    """Pure dephasing with phase-flip-equivalent probability parameter ``lam``."""
    if not 0.0 <= lam <= 1.0:
        raise NoiseModelError("phase damping probability must lie in [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return [k0, k1]


def thermal_relaxation_kraus(duration_ns: float, t1_ns: float, t2_ns: float) -> List[np.ndarray]:
    """Combined T1/T2 relaxation over ``duration_ns``.

    Implemented as amplitude damping with ``gamma = 1 - exp(-t/T1)`` composed
    with pure dephasing derived from the pure-dephasing time
    ``1/Tphi = 1/T2 - 1/(2 T1)``.
    """
    if duration_ns < 0:
        raise NoiseModelError("duration must be non-negative")
    if duration_ns == 0:
        return identity_kraus()
    gamma = 1.0 - math.exp(-duration_ns / t1_ns)
    phi_rate = 1.0 / t2_ns - 1.0 / (2.0 * t1_ns)
    lam = 0.0 if phi_rate <= 0 else 1.0 - math.exp(-2.0 * duration_ns * phi_rate)
    lam = min(max(lam, 0.0), 1.0)
    return compose_channels(amplitude_damping_kraus(gamma), phase_damping_kraus(lam))


def depolarizing_kraus(error_rate: float, num_qubits: int = 1) -> List[np.ndarray]:
    """Depolarizing channel whose *average gate infidelity* is ``error_rate``.

    A depolarizing channel ``E(rho) = (1-p) rho + p I/d`` has average gate
    infidelity ``e = p (d - 1) / d``, so the depolarizing probability is
    ``p = e d / (d - 1)`` (capped to the physical range).
    """
    if not 0.0 <= error_rate < 1.0:
        raise NoiseModelError("error rate must lie in [0, 1)")
    dim = 2 ** num_qubits
    prob = min(1.0, error_rate * dim / (dim - 1))
    paulis_1q = [_I2, _X, _Y, _Z]
    if num_qubits == 1:
        paulis = paulis_1q
    elif num_qubits == 2:
        paulis = [np.kron(a, b) for a in paulis_1q for b in paulis_1q]
    else:
        raise NoiseModelError("depolarizing channel supports 1 or 2 qubits")
    num_paulis = len(paulis)
    kraus = [math.sqrt(1.0 - prob * (num_paulis - 1) / num_paulis) * paulis[0]]
    weight = math.sqrt(prob / num_paulis)
    kraus.extend(weight * p for p in paulis[1:])
    return kraus


def coherent_z_kraus(angle_rad: float) -> List[np.ndarray]:
    """A coherent (unitary) Z rotation by ``angle_rad`` — echo-refocusable error."""
    half = angle_rad / 2.0
    return [np.array([[np.exp(-1j * half), 0], [0, np.exp(1j * half)]], dtype=complex)]


def coherent_zz_kraus(angle_rad: float) -> List[np.ndarray]:
    """A coherent two-qubit ZZ rotation (always-on crosstalk accumulation)."""
    half = angle_rad / 2.0
    phases = [np.exp(-1j * half), np.exp(1j * half), np.exp(1j * half), np.exp(-1j * half)]
    return [np.diag(phases).astype(complex)]


def bit_flip_kraus(probability: float) -> List[np.ndarray]:
    """Classical bit-flip channel (used by readout error modelling tests)."""
    if not 0.0 <= probability <= 1.0:
        raise NoiseModelError("bit flip probability must lie in [0, 1]")
    return [math.sqrt(1 - probability) * _I2, math.sqrt(probability) * _X]


def superop_from_kraus(kraus: Sequence[np.ndarray]) -> np.ndarray:
    """Column-stacking superoperator ``S = sum_i K_i (x) conj(K_i)``.

    Acts on row-major-vectorised density matrices:
    ``vec(E(rho)) = S @ vec(rho)``.  Matches ``ChannelOp.superop``.
    """
    if not kraus:
        raise NoiseModelError("cannot build a superoperator from an empty Kraus set")
    return sum(np.kron(k, k.conj()) for k in kraus)


def kraus_from_superop(superop: np.ndarray, atol: float = 1e-12) -> List[np.ndarray]:
    """Minimal Kraus set of a completely positive map given as a superoperator.

    Reshuffles the superoperator into the Choi matrix, eigendecomposes it and
    keeps one operator per eigenvalue above ``atol`` — at most ``d**2``
    operators for a ``d``-dimensional system, regardless of how the map was
    assembled.
    """
    dim_sq = superop.shape[0]
    dim = int(round(math.sqrt(dim_sq)))
    if dim * dim != dim_sq or superop.shape != (dim_sq, dim_sq):
        raise NoiseModelError("superoperator must be d^2 x d^2")
    # Row-major vec convention: S[(i,j),(k,l)] -> Choi C[(i,k),(j,l)], so that
    # C = sum_i vec(K_i) vec(K_i)^dagger with row-major vec.
    choi = (
        superop.reshape(dim, dim, dim, dim)
        .transpose(0, 2, 1, 3)
        .reshape(dim_sq, dim_sq)
    )
    eigenvalues, eigenvectors = np.linalg.eigh((choi + choi.conj().T) / 2.0)
    kraus = [
        math.sqrt(float(value)) * eigenvectors[:, index].reshape(dim, dim)
        for index, value in enumerate(eigenvalues)
        if value > atol
    ]
    if not kraus:  # numerically zero map; keep a well-formed (non-TP) stub
        kraus = [np.zeros((dim, dim), dtype=complex)]
    return kraus


def compose_channels(first: Sequence[np.ndarray], second: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Kraus operators of ``second`` applied after ``first``.

    Composes in superoperator space and extracts a minimal Kraus set from the
    Choi matrix, so repeated composition stays bounded at ``d**2`` operators
    instead of growing multiplicatively (``k1 * k2`` operators per call).
    """
    composed = superop_from_kraus(second) @ superop_from_kraus(first)
    return kraus_from_superop(composed)


def is_valid_channel(kraus: Sequence[np.ndarray], atol: float = 1e-9) -> bool:
    """Check trace preservation: ``sum_i K_i^dagger K_i == I``."""
    if not kraus:
        return False
    dim = kraus[0].shape[0]
    total = np.zeros((dim, dim), dtype=complex)
    for k in kraus:
        if k.shape != (dim, dim):
            return False
        total += k.conj().T @ k
    return bool(np.allclose(total, np.eye(dim), atol=atol))


def channel_fidelity_on_state(kraus: Sequence[np.ndarray], state: np.ndarray) -> float:
    """Fidelity ``<psi| E(|psi><psi|) |psi>`` of a channel acting on a pure state."""
    state = np.asarray(state, dtype=complex).reshape(-1, 1)
    rho = sum(k @ state @ state.conj().T @ k.conj().T for k in kraus)
    return float(np.real(state.conj().T @ rho @ state).item())
