"""Queueing-time model for cloud access to quantum machines (paper §VIII-D).

The paper reports that queue waits dwarf actual tuning time, and that the
single Runtime-enabled machine (which is held for up to 5 hours per problem)
queues especially badly.  We model per-device queue waits with a log-normal
distribution whose scale grows with the device's popularity (Runtime-enabled
machines are the most contended), seeded for reproducibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..exceptions import ReproError


@dataclass
class QueueProfile:
    """Queue statistics of one device."""

    median_wait_minutes: float
    sigma: float = 0.55
    jobs_ahead_mean: float = 12.0


#: Default profiles: Runtime machines are the most contended, small open
#: devices queue less.
DEFAULT_PROFILES: Dict[str, QueueProfile] = {
    "fake_montreal": QueueProfile(median_wait_minutes=360.0, sigma=0.5, jobs_ahead_mean=25.0),
    "fake_guadalupe": QueueProfile(median_wait_minutes=150.0, sigma=0.6, jobs_ahead_mean=14.0),
    "fake_jakarta": QueueProfile(median_wait_minutes=120.0, sigma=0.6, jobs_ahead_mean=10.0),
    "fake_casablanca": QueueProfile(median_wait_minutes=140.0, sigma=0.6, jobs_ahead_mean=12.0),
}


class QueueModel:
    """Samples reproducible queue waits per device."""

    def __init__(self, profiles: Optional[Dict[str, QueueProfile]] = None, seed: int = 5):
        self.profiles = dict(profiles or DEFAULT_PROFILES)
        self.seed = int(seed)

    def profile(self, device_name: str) -> QueueProfile:
        key = device_name.lower().replace("ibmq_", "fake_")
        if key not in self.profiles:
            raise ReproError(f"no queue profile for device '{device_name}'")
        return self.profiles[key]

    def sample_wait_minutes(self, device_name: str, job_index: int = 0) -> float:
        """One queue wait draw (log-normal around the device's median)."""
        profile = self.profile(device_name)
        rng = np.random.default_rng((self.seed, hash(device_name) & 0xFFFF, job_index))
        mu = math.log(profile.median_wait_minutes)
        return float(rng.lognormal(mean=mu, sigma=profile.sigma))

    def expected_wait_minutes(self, device_name: str) -> float:
        """Mean of the log-normal wait distribution."""
        profile = self.profile(device_name)
        mu = math.log(profile.median_wait_minutes)
        return float(math.exp(mu + profile.sigma ** 2 / 2.0))

    def average_wait_minutes(self, device_name: str, num_jobs: int) -> float:
        """Average wait over ``num_jobs`` submissions (deterministic in the seed)."""
        if num_jobs < 1:
            raise ReproError("num_jobs must be positive")
        waits = [self.sample_wait_minutes(device_name, i) for i in range(num_jobs)]
        return float(np.mean(waits))
