"""Cloud-execution modelling: Runtime sessions, queueing and timing."""

from .queue_model import DEFAULT_PROFILES, QueueModel, QueueProfile
from .session import CircuitTimingModel, RuntimeConstraints, RuntimeSession
from .timing import ExecutionTimeModel, TimeBreakdown

__all__ = [
    "RuntimeSession",
    "RuntimeConstraints",
    "CircuitTimingModel",
    "QueueModel",
    "QueueProfile",
    "DEFAULT_PROFILES",
    "ExecutionTimeModel",
    "TimeBreakdown",
]
