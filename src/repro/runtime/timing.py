"""Execution-time accounting for the Fig. 15 breakdown.

The paper decomposes the end-to-end wall-clock time of each application into
four components: angle tuning in simulation, angle tuning through Qiskit
Runtime, error-mitigation tuning (the independent window sweeps, run as
regular cloud jobs), and queueing.  :class:`ExecutionTimeModel` computes each
component in minutes from the application's measured characteristics (number
of objective evaluations, circuit duration, window count and sweep budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..exceptions import ReproError
from .queue_model import QueueModel
from .session import CircuitTimingModel


@dataclass
class TimeBreakdown:
    """Per-application execution-time components, in minutes."""

    application: str
    angle_tuning_simulation_min: float = 0.0
    angle_tuning_runtime_min: float = 0.0
    em_tuning_min: float = 0.0
    queueing_min: float = 0.0

    @property
    def total_min(self) -> float:
        return (
            self.angle_tuning_simulation_min
            + self.angle_tuning_runtime_min
            + self.em_tuning_min
            + self.queueing_min
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "Tuning Angles - Sim": self.angle_tuning_simulation_min,
            "Tuning Angles - QR": self.angle_tuning_runtime_min,
            "Tuning EM": self.em_tuning_min,
            "Avg Queuing": self.queueing_min,
        }


class ExecutionTimeModel:
    """Analytic wall-clock model of the paper's feasible flow."""

    def __init__(
        self,
        queue_model: Optional[QueueModel] = None,
        simulation_seconds_per_evaluation: float = 0.35,
        timing: Optional[CircuitTimingModel] = None,
    ):
        self.queue_model = queue_model or QueueModel()
        self.simulation_seconds_per_evaluation = simulation_seconds_per_evaluation
        self.timing = timing or CircuitTimingModel()

    def angle_tuning_simulation_minutes(self, num_evaluations: int) -> float:
        return num_evaluations * self.simulation_seconds_per_evaluation / 60.0

    def angle_tuning_runtime_minutes(self, num_evaluations: int) -> float:
        return num_evaluations * self.timing.seconds_per_evaluation() / 60.0

    def em_tuning_minutes(self, num_window_evaluations: int) -> float:
        """EM tuning runs the same kind of measured jobs as Runtime evaluations."""
        return num_window_evaluations * self.timing.seconds_per_evaluation() / 60.0

    def queueing_minutes(self, device_name: str, num_job_submissions: int) -> float:
        if num_job_submissions < 1:
            raise ReproError("at least one job submission is required")
        return self.queue_model.average_wait_minutes(device_name, num_job_submissions)

    def breakdown(
        self,
        application: str,
        device_name: str,
        uses_runtime: bool,
        angle_tuning_evaluations: int,
        em_tuning_evaluations: int,
        num_job_submissions: int = 3,
    ) -> TimeBreakdown:
        """Full Fig. 15-style breakdown for one application."""
        out = TimeBreakdown(application=application)
        if uses_runtime:
            out.angle_tuning_runtime_min = self.angle_tuning_runtime_minutes(angle_tuning_evaluations)
        else:
            out.angle_tuning_simulation_min = self.angle_tuning_simulation_minutes(
                angle_tuning_evaluations
            )
        out.em_tuning_min = self.em_tuning_minutes(em_tuning_evaluations)
        out.queueing_min = self.queueing_minutes(device_name, num_job_submissions)
        return out
