"""A Qiskit-Runtime-like session model (paper §VI-A).

The paper was among the first users of Qiskit Runtime and documents its
07/2021 constraints:

1. only the traditional gate-angle parameters can be tuned variationally,
2. only SPSA-family classical tuners are allowed,
3. a problem may hold the machine for at most 5 hours,
4. only one Runtime-enabled machine was available.

:class:`RuntimeSession` enforces those constraints around an objective
callable, and accounts for the wall-clock time each evaluation would take on
hardware so that the Fig. 15 execution-time breakdown can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..exceptions import RuntimeSessionError
from ..optimizers.base import OptimizationResult, Optimizer
from ..optimizers.spsa import SPSA


@dataclass
class RuntimeConstraints:
    """The 07/2021 Qiskit Runtime limitations the paper worked around."""

    max_session_hours: float = 5.0
    allowed_optimizers: Sequence[str] = ("spsa",)
    tunable_parameters: str = "gate_angles_only"
    max_circuits_per_job: int = 300

    def check_optimizer(self, optimizer: Optimizer) -> None:
        if optimizer.name not in self.allowed_optimizers:
            raise RuntimeSessionError(
                f"Qiskit Runtime (07/2021) only supports {list(self.allowed_optimizers)} "
                f"optimizers, got '{optimizer.name}'"
            )


@dataclass
class CircuitTimingModel:
    """How long one objective evaluation takes on the machine.

    One evaluation = ``num_measurement_groups`` circuits x ``shots`` repetitions
    of (circuit duration + reset), plus a fixed per-job classical overhead.
    """

    circuit_duration_us: float = 20.0
    reset_time_us: float = 250.0
    shots: int = 4096
    num_measurement_groups: int = 2
    per_job_overhead_s: float = 4.0

    def seconds_per_evaluation(self) -> float:
        per_shot_us = self.circuit_duration_us + self.reset_time_us
        quantum_s = self.num_measurement_groups * self.shots * per_shot_us * 1e-6
        return quantum_s + self.per_job_overhead_s


class RuntimeSession:
    """Wraps an objective with Runtime's time cap and optimizer restrictions."""

    def __init__(
        self,
        objective: Callable[[np.ndarray], float],
        timing: Optional[CircuitTimingModel] = None,
        constraints: Optional[RuntimeConstraints] = None,
        machine_name: str = "fake_montreal",
    ):
        self.objective = objective
        self.timing = timing or CircuitTimingModel()
        self.constraints = constraints or RuntimeConstraints()
        self.machine_name = machine_name
        self.elapsed_seconds = 0.0
        self.num_evaluations = 0
        self.history: List[float] = []

    # ------------------------------------------------------------------
    @property
    def elapsed_hours(self) -> float:
        return self.elapsed_seconds / 3600.0

    def remaining_hours(self) -> float:
        return self.constraints.max_session_hours - self.elapsed_hours

    def _charge_evaluation(self) -> None:
        self.elapsed_seconds += self.timing.seconds_per_evaluation()
        if self.elapsed_hours > self.constraints.max_session_hours:
            raise RuntimeSessionError(
                f"Runtime session exceeded its {self.constraints.max_session_hours:.1f} h cap "
                f"after {self.num_evaluations} evaluations"
            )

    def evaluate(self, parameters: np.ndarray) -> float:
        """One charged objective evaluation."""
        self.num_evaluations += 1
        self._charge_evaluation()
        value = float(self.objective(np.asarray(parameters, dtype=float)))
        self.history.append(value)
        return value

    # ------------------------------------------------------------------
    def run_program(self, optimizer: Optimizer, initial_point: Sequence[float]) -> OptimizationResult:
        """Run a VQE tuning program inside the session (SPSA only)."""
        self.constraints.check_optimizer(optimizer)
        return optimizer.minimize(self.evaluate, initial_point)

    def max_evaluations_within_cap(self) -> int:
        """How many evaluations fit inside the 5-hour cap."""
        per_eval = self.timing.seconds_per_evaluation()
        return int(self.constraints.max_session_hours * 3600.0 // per_eval)

    def __repr__(self):
        return (
            f"RuntimeSession({self.machine_name}, {self.num_evaluations} evals, "
            f"{self.elapsed_hours:.2f}/{self.constraints.max_session_hours:.1f} h)"
        )
