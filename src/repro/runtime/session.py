"""A Qiskit-Runtime-like session model (paper §VI-A).

The paper was among the first users of Qiskit Runtime and documents its
07/2021 constraints:

1. only the traditional gate-angle parameters can be tuned variationally,
2. only SPSA-family classical tuners are allowed,
3. a problem may hold the machine for at most 5 hours,
4. only one Runtime-enabled machine was available.

:class:`RuntimeSession` enforces those constraints around an objective
callable, and accounts for the wall-clock time each evaluation would take on
hardware so that the Fig. 15 execution-time breakdown can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..exceptions import RuntimeSessionError
from ..optimizers.base import OptimizationResult, Optimizer
from ..optimizers.spsa import SPSA


@dataclass
class RuntimeConstraints:
    """The 07/2021 Qiskit Runtime limitations the paper worked around."""

    max_session_hours: float = 5.0
    allowed_optimizers: Sequence[str] = ("spsa",)
    tunable_parameters: str = "gate_angles_only"
    max_circuits_per_job: int = 300

    def check_optimizer(self, optimizer: Optimizer) -> None:
        if optimizer.name not in self.allowed_optimizers:
            raise RuntimeSessionError(
                f"Qiskit Runtime (07/2021) only supports {list(self.allowed_optimizers)} "
                f"optimizers, got '{optimizer.name}'"
            )


@dataclass
class CircuitTimingModel:
    """How long one objective evaluation takes on the machine.

    One evaluation = ``num_measurement_groups`` circuits x ``shots`` repetitions
    of (circuit duration + reset), plus a fixed per-job classical overhead.
    """

    circuit_duration_us: float = 20.0
    reset_time_us: float = 250.0
    shots: int = 4096
    num_measurement_groups: int = 2
    per_job_overhead_s: float = 4.0

    def seconds_for_circuits(self, num_circuits: int) -> float:
        """Quantum time for executing ``num_circuits`` at ``shots`` repetitions
        plus one job's classical overhead."""
        per_shot_us = self.circuit_duration_us + self.reset_time_us
        return num_circuits * self.shots * per_shot_us * 1e-6 + self.per_job_overhead_s

    def seconds_per_evaluation(self) -> float:
        return self.seconds_for_circuits(self.num_measurement_groups)


class RuntimeSession:
    """Wraps an objective with Runtime's time cap and optimizer restrictions.

    A session can also hold an :class:`~repro.engine.base.ExecutionEngine`;
    :meth:`submit` then plays the role of Runtime's job submission — circuits
    are executed in jobs of at most ``max_circuits_per_job``, each job is
    charged its per-job overhead plus the modelled quantum time, and the
    engine's caching/batching applies exactly as it would on the objective
    path.
    """

    def __init__(
        self,
        objective: Optional[Callable[[np.ndarray], float]] = None,
        timing: Optional[CircuitTimingModel] = None,
        constraints: Optional[RuntimeConstraints] = None,
        machine_name: str = "fake_montreal",
        engine=None,
    ):
        self.objective = objective
        self.timing = timing or CircuitTimingModel()
        self.constraints = constraints or RuntimeConstraints()
        self.machine_name = machine_name
        self.engine = engine
        self.elapsed_seconds = 0.0
        self.num_evaluations = 0
        self.num_jobs = 0
        self.num_circuits = 0
        self.history: List[float] = []

    # ------------------------------------------------------------------
    @property
    def elapsed_hours(self) -> float:
        return self.elapsed_seconds / 3600.0

    def remaining_hours(self) -> float:
        return self.constraints.max_session_hours - self.elapsed_hours

    def _charge_evaluation(self) -> None:
        self.elapsed_seconds += self.timing.seconds_per_evaluation()
        if self.elapsed_hours > self.constraints.max_session_hours:
            raise RuntimeSessionError(
                f"Runtime session exceeded its {self.constraints.max_session_hours:.1f} h cap "
                f"after {self.num_evaluations} evaluations"
            )

    def evaluate(self, parameters: np.ndarray) -> float:
        """One charged objective evaluation."""
        if self.objective is None:
            raise RuntimeSessionError("this session was opened without an objective")
        self.num_evaluations += 1
        self._charge_evaluation()
        value = float(self.objective(np.asarray(parameters, dtype=float)))
        self.history.append(value)
        return value

    # ------------------------------------------------------------------
    # Engine-backed job submission
    # ------------------------------------------------------------------
    def _charge_job(self, num_circuits: int) -> None:
        self.elapsed_seconds += self.timing.seconds_for_circuits(num_circuits)
        self.num_jobs += 1
        self.num_circuits += num_circuits
        if self.elapsed_hours > self.constraints.max_session_hours:
            raise RuntimeSessionError(
                f"Runtime session exceeded its {self.constraints.max_session_hours:.1f} h cap "
                f"after {self.num_jobs} jobs ({self.num_circuits} circuits)"
            )

    def submit(
        self,
        circuits: Sequence,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
    ) -> List:
        """Execute ``circuits`` through the session's engine, in charged jobs.

        The batch is split into jobs of at most
        ``constraints.max_circuits_per_job`` circuits (Runtime's 07/2021 job
        limit); each job charges its own overhead and is queued on the
        engine's batch scheduler as soon as it is charged — so later jobs are
        accounted (and the 5-hour cap enforced) while earlier ones still
        execute, like a real session's job queue.  The session submits under
        its own identity, so several sessions sharing one engine are
        scheduled fairly and their independent jobs overlap up to the
        engine's per-tier slots (``docs/scheduler.md``).  Results come back
        in submission order, one :class:`~repro.engine.base.EngineResult` per
        circuit, following the engine's seeding contract.  ``parallelism``
        selects the engine tier each job fans out on (the historical
        ``max_workers``-implies-threads behaviour has been removed; pass the
        tier explicitly).
        """
        if self.engine is None:
            raise RuntimeSessionError("this session was opened without an execution engine")
        circuits = list(circuits)
        futures: List = []
        job_size = max(1, int(self.constraints.max_circuits_per_job))
        try:
            for start in range(0, len(circuits), job_size):
                job = circuits[start : start + job_size]
                self._charge_job(len(job))
                futures.extend(
                    self.engine.submit_batch(
                        job, max_workers=max_workers, parallelism=parallelism, submitter=self
                    )
                )
        except Exception:
            # A mid-loop failure (typically the 5-hour cap) must not leave
            # already-queued jobs running unobserved: cancel what has not
            # started and drain the rest before re-raising.
            for future in futures:
                future.cancel()
            for future in futures:
                if not future.cancelled():
                    try:
                        future.result()
                    except Exception:  # noqa: BLE001 - the cap error wins
                        pass
            raise
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    def run_program(self, optimizer: Optimizer, initial_point: Sequence[float]) -> OptimizationResult:
        """Run a VQE tuning program inside the session (SPSA only)."""
        self.constraints.check_optimizer(optimizer)
        return optimizer.minimize(self.evaluate, initial_point)

    def max_evaluations_within_cap(self) -> int:
        """How many evaluations fit inside the 5-hour cap."""
        per_eval = self.timing.seconds_per_evaluation()
        return int(self.constraints.max_session_hours * 3600.0 // per_eval)

    def __repr__(self):
        return (
            f"RuntimeSession({self.machine_name}, {self.num_evaluations} evals, "
            f"{self.elapsed_hours:.2f}/{self.constraints.max_session_hours:.1f} h)"
        )
