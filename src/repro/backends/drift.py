"""Temporal variability of device characteristics (paper §IX-D, Fig. 16).

Real machines drift between (and within) calibration cycles: T1/T2 fluctuate,
residual detunings move, readout errors change.  The paper shows (Fig. 16)
that the measured VQE objective for a *fixed* set of parameters varies by
10-20 % of the ideal objective over 24 hours, and that a re-calibration event
visibly shifts the distribution.

:class:`CalibrationDrift` produces time-shifted copies of a base
:class:`DeviceModel`:

* within a calibration cycle, qubit detunings and coherence times follow a
  bounded random walk (small, correlated changes hour to hour);
* at each calibration boundary the detunings are re-drawn (calibration nulls
  part of the coherent error but leaves a new residual) and coherence times
  jump to a new neighbourhood.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import List

import numpy as np

from .device import DeviceModel, QubitProperties


class CalibrationDrift:
    """Generates drifted snapshots of a device over wall-clock time.

    Parameters
    ----------
    device:
        The base device model (time 0 snapshot).
    calibration_period_hours:
        Hours between re-calibration events (IBM machines calibrate roughly
        daily; the paper's Fig. 16 crosses one boundary in 24 h).
    detuning_walk_fraction:
        Per-hour random-walk step of the detuning, as a fraction of its
        calibration-time magnitude.
    coherence_walk_fraction:
        Per-hour fractional random-walk step of T1/T2.
    seed:
        RNG seed; snapshots are deterministic in (seed, time).
    """

    def __init__(
        self,
        device: DeviceModel,
        calibration_period_hours: float = 12.0,
        detuning_walk_fraction: float = 0.08,
        coherence_walk_fraction: float = 0.03,
        readout_walk_fraction: float = 0.05,
        seed: int = 99,
    ):
        self.device = device
        self.calibration_period_hours = float(calibration_period_hours)
        self.detuning_walk_fraction = float(detuning_walk_fraction)
        self.coherence_walk_fraction = float(coherence_walk_fraction)
        self.readout_walk_fraction = float(readout_walk_fraction)
        self.seed = int(seed)

    def calibration_cycle(self, time_hours: float) -> int:
        """Index of the calibration cycle containing ``time_hours``."""
        return int(time_hours // self.calibration_period_hours)

    def snapshot(self, time_hours: float) -> DeviceModel:
        """Return a drifted copy of the device as it would look at ``time_hours``."""
        cycle = self.calibration_cycle(time_hours)
        hours_into_cycle = time_hours - cycle * self.calibration_period_hours
        qubits: List[QubitProperties] = []
        for index, base in enumerate(self.device.qubits):
            rng = np.random.default_rng((self.seed, cycle, index))
            # Re-calibration re-draws the residual detuning around a fraction of
            # the original magnitude (calibration cancels most, not all, of it).
            scale = abs(base.static_detuning) if base.static_detuning else 1e-4
            cycle_detuning = float(rng.normal(0.0, scale)) if cycle > 0 else base.static_detuning
            cycle_t1 = base.t1_ns * float(rng.uniform(0.85, 1.15)) if cycle > 0 else base.t1_ns
            cycle_t2 = min(base.t2_ns * float(rng.uniform(0.85, 1.15)), 1.95 * cycle_t1)
            cycle_r01 = base.readout_error_01 * float(rng.uniform(0.8, 1.3)) if cycle > 0 else base.readout_error_01
            cycle_r10 = base.readout_error_10 * float(rng.uniform(0.8, 1.3)) if cycle > 0 else base.readout_error_10

            # Intra-cycle bounded random walk, deterministic in the hour index.
            steps = int(hours_into_cycle)
            walk_rng = np.random.default_rng((self.seed, cycle, index, 1))
            detuning = cycle_detuning
            t1, t2 = cycle_t1, cycle_t2
            r01, r10 = cycle_r01, cycle_r10
            for _ in range(steps):
                detuning += float(walk_rng.normal(0.0, self.detuning_walk_fraction * scale))
                t1 *= 1.0 + float(walk_rng.normal(0.0, self.coherence_walk_fraction))
                t2 *= 1.0 + float(walk_rng.normal(0.0, self.coherence_walk_fraction))
                r01 *= 1.0 + float(walk_rng.normal(0.0, self.readout_walk_fraction))
                r10 *= 1.0 + float(walk_rng.normal(0.0, self.readout_walk_fraction))
            t1 = max(10000.0, t1)
            t2 = float(min(max(5000.0, t2), 1.95 * t1))
            r01 = float(min(0.45, max(1e-4, r01)))
            r10 = float(min(0.45, max(1e-4, r10)))

            qubits.append(
                replace(
                    base,
                    t1_ns=t1,
                    t2_ns=t2,
                    readout_error_01=r01,
                    readout_error_10=r10,
                    static_detuning=detuning,
                )
            )
        return DeviceModel(
            name=f"{self.device.name}@{time_hours:.1f}h",
            num_qubits=self.device.num_qubits,
            coupling_edges=self.device.coupling_edges,
            qubit_properties=qubits,
            single_qubit_gate=self.device.single_qubit_gate,
            two_qubit_gates=self.device.two_qubit_gates,
            readout_duration_ns=self.device.readout_duration_ns,
            zz_crosstalk_rad_per_ns=self.device.zz_crosstalk,
            dt_ns=self.device.dt_ns,
            basis_gates=self.device.basis_gates,
        )

    def timeline(self, hours: float, step_hours: float = 1.0) -> List[DeviceModel]:
        """Snapshots at regular intervals across ``hours`` of wall-clock time."""
        count = int(math.floor(hours / step_hours)) + 1
        return [self.snapshot(i * step_hours) for i in range(count)]
