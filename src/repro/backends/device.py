"""Device models: qubit/gate calibration properties of the target machines.

A :class:`DeviceModel` carries everything the transpiler, scheduler and noisy
simulator need to know about a machine: coupling map, per-qubit coherence
times (T1, T2), static frequency detunings and their slow drift, readout
confusion probabilities, per-gate durations and error rates, and always-on ZZ
crosstalk strengths between coupled qubits.

Two "views" of a device are important for reproducing the paper:

* the *calibration view* — the Markovian numbers a provider exposes (T1, T2,
  gate errors, readout errors).  This is what a Qiskit-style noise model is
  built from and plays the role of the paper's "noisy simulation".
* the *device view* — calibration plus the coherent, slowly drifting
  detunings and crosstalk that real hardware has but calibration data does
  not capture.  This plays the role of the paper's "real machine".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import BackendError


@dataclass
class QubitProperties:
    """Calibration and hidden properties of one physical qubit.

    Times are nanoseconds; frequencies are radians per nanosecond.
    """

    t1_ns: float
    t2_ns: float
    readout_error_01: float  # P(measure 1 | prepared 0)
    readout_error_10: float  # P(measure 0 | prepared 1)
    #: Quasi-static frequency detuning (coherent Z error rate), rad/ns.
    #: This is *not* part of the published calibration data.
    static_detuning: float = 0.0
    #: Amplitude of the slow sinusoidal drift of the detuning, rad/ns.
    drift_amplitude: float = 0.0
    #: Period of the slow drift, ns.
    drift_period_ns: float = 50000.0
    #: Phase offset of the drift.
    drift_phase: float = 0.0

    def __post_init__(self):
        if self.t1_ns <= 0 or self.t2_ns <= 0:
            raise BackendError("T1 and T2 must be positive")
        if self.t2_ns > 2 * self.t1_ns + 1e-9:
            raise BackendError("T2 cannot exceed 2*T1")
        for p in (self.readout_error_01, self.readout_error_10):
            if not 0.0 <= p < 0.5:
                raise BackendError("readout error probabilities must lie in [0, 0.5)")

    @property
    def t_phi_ns(self) -> float:
        """Pure-dephasing time derived from T1 and T2: 1/Tphi = 1/T2 - 1/(2*T1)."""
        rate = 1.0 / self.t2_ns - 1.0 / (2.0 * self.t1_ns)
        if rate <= 0:
            return math.inf
        return 1.0 / rate

    def detuning_at(self, time_ns: float) -> float:
        """Instantaneous detuning (rad/ns) including the slow drift component."""
        if self.drift_amplitude == 0.0:
            return self.static_detuning
        return self.static_detuning + self.drift_amplitude * math.sin(
            2.0 * math.pi * time_ns / self.drift_period_ns + self.drift_phase
        )

    def integrated_detuning(self, start_ns: float, end_ns: float) -> float:
        """Coherent phase accumulated between ``start_ns`` and ``end_ns`` (rad).

        The drift integral is evaluated analytically so idle-noise application
        is exact regardless of how the interval is split by echo pulses.
        """
        duration = end_ns - start_ns
        if duration <= 0:
            return 0.0
        phase = self.static_detuning * duration
        if self.drift_amplitude:
            omega = 2.0 * math.pi / self.drift_period_ns
            phase += (self.drift_amplitude / omega) * (
                math.cos(omega * start_ns + self.drift_phase)
                - math.cos(omega * end_ns + self.drift_phase)
            )
        return phase


@dataclass
class GateProperties:
    """Duration and error rate of one gate type on a specific qubit (pair)."""

    duration_ns: float
    error: float

    def __post_init__(self):
        if self.duration_ns < 0:
            raise BackendError("gate duration must be non-negative")
        if not 0.0 <= self.error < 1.0:
            raise BackendError("gate error must lie in [0, 1)")


class DeviceModel:
    """A complete model of a target quantum machine."""

    def __init__(
        self,
        name: str,
        num_qubits: int,
        coupling_edges: Sequence[Tuple[int, int]],
        qubit_properties: Sequence[QubitProperties],
        single_qubit_gate: GateProperties,
        two_qubit_gates: Dict[Tuple[int, int], GateProperties],
        readout_duration_ns: float = 3200.0,
        zz_crosstalk_rad_per_ns: Optional[Dict[FrozenSet[int], float]] = None,
        dt_ns: float = 0.2222,
        basis_gates: Tuple[str, ...] = ("rz", "sx", "x", "cx"),
    ):
        if len(qubit_properties) != num_qubits:
            raise BackendError("qubit_properties length must equal num_qubits")
        self.name = name
        self.num_qubits = int(num_qubits)
        self.coupling_edges: List[Tuple[int, int]] = [
            (int(a), int(b)) for a, b in coupling_edges
        ]
        for a, b in self.coupling_edges:
            if not (0 <= a < num_qubits and 0 <= b < num_qubits) or a == b:
                raise BackendError(f"invalid coupling edge ({a}, {b})")
        self.qubits: List[QubitProperties] = list(qubit_properties)
        self.single_qubit_gate = single_qubit_gate
        self.two_qubit_gates = dict(two_qubit_gates)
        self.readout_duration_ns = float(readout_duration_ns)
        self.zz_crosstalk = dict(zz_crosstalk_rad_per_ns or {})
        self.dt_ns = float(dt_ns)
        self.basis_gates = tuple(basis_gates)

    # -- topology -----------------------------------------------------------
    def neighbors(self, qubit: int) -> List[int]:
        out = set()
        for a, b in self.coupling_edges:
            if a == qubit:
                out.add(b)
            elif b == qubit:
                out.add(a)
        return sorted(out)

    def is_coupled(self, a: int, b: int) -> bool:
        return (a, b) in self.coupling_edges or (b, a) in self.coupling_edges

    # -- per-gate lookups -----------------------------------------------------
    def gate_duration(self, name: str, qubits: Sequence[int]) -> float:
        """Duration in nanoseconds of a gate on specific qubits.

        Virtual gates (``rz``) and barriers take zero time, matching IBM
        hardware where Z rotations are frame changes.
        """
        name = name.lower()
        if name in ("rz", "p", "barrier", "id"):
            return 0.0
        if name == "measure":
            return self.readout_duration_ns
        if name == "delay":
            raise BackendError("delay durations are carried by the instruction itself")
        if name in ("cx", "cz", "swap", "rzz", "rxx", "cry"):
            key = (qubits[0], qubits[1])
            props = self.two_qubit_gates.get(key) or self.two_qubit_gates.get((key[1], key[0]))
            if props is None:
                raise BackendError(
                    f"no calibrated two-qubit gate between qubits {qubits[0]} and {qubits[1]}"
                )
            factor = 3.0 if name == "swap" else 1.0  # a SWAP compiles to 3 CX
            return props.duration_ns * factor
        return self.single_qubit_gate.duration_ns

    def gate_error(self, name: str, qubits: Sequence[int]) -> float:
        """Average error rate of a gate on specific qubits."""
        name = name.lower()
        if name in ("rz", "p", "barrier", "id", "delay"):
            return 0.0
        if name == "measure":
            q = qubits[0]
            return 0.5 * (self.qubits[q].readout_error_01 + self.qubits[q].readout_error_10)
        if name in ("cx", "cz", "swap", "rzz", "rxx", "cry"):
            key = (qubits[0], qubits[1])
            props = self.two_qubit_gates.get(key) or self.two_qubit_gates.get((key[1], key[0]))
            if props is None:
                raise BackendError(
                    f"no calibrated two-qubit gate between qubits {qubits[0]} and {qubits[1]}"
                )
            factor = 3.0 if name == "swap" else 1.0
            return min(0.999, props.error * factor)
        return self.single_qubit_gate.error

    def zz_rate(self, a: int, b: int) -> float:
        """Always-on ZZ coupling strength between two qubits (rad/ns)."""
        return self.zz_crosstalk.get(frozenset((a, b)), 0.0)

    def readout_confusion_matrix(self, qubit: int) -> np.ndarray:
        """2x2 column-stochastic confusion matrix ``M[measured, prepared]``."""
        q = self.qubits[qubit]
        return np.array(
            [
                [1.0 - q.readout_error_01, q.readout_error_10],
                [q.readout_error_01, 1.0 - q.readout_error_10],
            ]
        )

    # -- quality ranking ------------------------------------------------------
    def qubit_quality(self, qubit: int) -> float:
        """A scalar figure of merit used by the noise-aware layout pass.

        Larger is better: combines coherence, readout fidelity and the best
        two-qubit gate error incident on the qubit.
        """
        q = self.qubits[qubit]
        coherence = min(q.t1_ns, q.t2_ns)
        readout = 1.0 - 0.5 * (q.readout_error_01 + q.readout_error_10)
        cx_errors = [
            props.error
            for (a, b), props in self.two_qubit_gates.items()
            if qubit in (a, b)
        ]
        cx_quality = 1.0 - (min(cx_errors) if cx_errors else 0.05)
        return coherence * readout * cx_quality

    def best_qubits(self, count: int) -> List[int]:
        """The ``count`` highest-quality qubits (descending quality)."""
        if count > self.num_qubits:
            raise BackendError(
                f"device {self.name} has only {self.num_qubits} qubits, {count} requested"
            )
        ranked = sorted(range(self.num_qubits), key=self.qubit_quality, reverse=True)
        return ranked[:count]

    def __repr__(self):
        return f"DeviceModel({self.name}, {self.num_qubits} qubits, {len(self.coupling_edges)} edges)"
