"""Fake device models, calibration data and temporal drift."""

from .device import DeviceModel, GateProperties, QubitProperties
from .drift import CalibrationDrift
from .fake import (
    SINGLE_QUBIT_GATE_NS,
    available_devices,
    fake_casablanca,
    fake_guadalupe,
    fake_jakarta,
    fake_montreal,
    get_device,
)

__all__ = [
    "DeviceModel",
    "QubitProperties",
    "GateProperties",
    "CalibrationDrift",
    "fake_casablanca",
    "fake_jakarta",
    "fake_guadalupe",
    "fake_montreal",
    "get_device",
    "available_devices",
    "SINGLE_QUBIT_GATE_NS",
]
