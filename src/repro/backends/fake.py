"""Fake IBM-style devices used throughout the evaluation.

The paper runs on ``ibmq_casablanca`` (7q), ``ibmq_jakarta`` (7q),
``ibmq_guadalupe`` (16q) and ``ibmq_montreal`` (27q).  We model each with the
correct heavy-hex coupling map and calibration data drawn from the realistic
ranges those Falcon-generation devices exhibited (T1/T2 of 50-150 us, CX
errors of 0.6-1.5 %, readout errors of 1-5 %, 35.56 ns single-qubit gates),
plus the "hidden" coherent error parameters (residual detunings, slow drift,
always-on ZZ crosstalk) that the calibration data does not expose but that
idle-time error mitigation actually fights.

All numbers are generated deterministically from a per-device seed so every
benchmark/test run sees the same machine.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from ..exceptions import BackendError
from .device import DeviceModel, GateProperties, QubitProperties

#: Single-qubit gate duration used by the paper (one identity ~ 35.56 ns).
SINGLE_QUBIT_GATE_NS = 35.56

_HEAVY_HEX_7Q: List[Tuple[int, int]] = [(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)]

_HEAVY_HEX_16Q: List[Tuple[int, int]] = [
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
    (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15), (13, 14),
]

_HEAVY_HEX_27Q: List[Tuple[int, int]] = [
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7), (7, 10),
    (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15), (13, 14), (14, 16),
    (15, 18), (16, 19), (17, 18), (18, 21), (19, 20), (19, 22), (21, 23),
    (22, 25), (23, 24), (24, 25), (25, 26),
]


def _build_device(
    name: str,
    num_qubits: int,
    edges: Sequence[Tuple[int, int]],
    seed: int,
    detuning_scale: float = 1.5e-3,
    drift_fraction: float = 0.5,
    zz_scale: float = 3.0e-4,
) -> DeviceModel:
    """Construct a device with realistic, seed-deterministic calibration data.

    Parameters
    ----------
    detuning_scale:
        Typical magnitude of the residual per-qubit frequency detuning in
        rad/ns (1.5e-3 rad/ns is about 240 kHz — within the range of
        uncalibrated Stark shifts and TLS-induced frequency offsets on the
        Falcon-generation devices the paper used).
    drift_fraction:
        Slow-drift amplitude as a fraction of the static detuning scale.
    zz_scale:
        Always-on ZZ coupling magnitude in rad/ns (3e-4 rad/ns is about
        50 kHz, typical of fixed-frequency transmon pairs).
    """
    rng = np.random.default_rng(seed)
    qubits: List[QubitProperties] = []
    for q in range(num_qubits):
        t1_us = float(rng.uniform(90.0, 200.0))
        # The intrinsic (echo) T2 is long; most of the *apparent* dephasing on
        # these devices comes from quasi-static detunings and slow drift,
        # which are modelled coherently below — that is precisely the
        # component that echo pulses and DD sequences can refocus.
        t2_us = float(min(rng.uniform(1.0, 1.8) * t1_us, 1.95 * t1_us))
        readout_01 = float(rng.uniform(0.01, 0.04))
        readout_10 = float(min(0.45, readout_01 * rng.uniform(1.2, 2.2)))
        detuning = float(rng.normal(0.0, detuning_scale))
        # Guarantee a non-negligible coherent component on every qubit so the
        # mitigation landscape is never accidentally flat.
        if abs(detuning) < 0.25 * detuning_scale:
            detuning = math.copysign(0.25 * detuning_scale, detuning if detuning else 1.0)
        qubits.append(
            QubitProperties(
                t1_ns=t1_us * 1000.0,
                t2_ns=t2_us * 1000.0,
                readout_error_01=readout_01,
                readout_error_10=readout_10,
                static_detuning=detuning,
                drift_amplitude=abs(float(rng.normal(0.0, drift_fraction * detuning_scale))),
                drift_period_ns=float(rng.uniform(20000.0, 90000.0)),
                drift_phase=float(rng.uniform(0.0, 2.0 * math.pi)),
            )
        )

    single = GateProperties(duration_ns=SINGLE_QUBIT_GATE_NS, error=3.0e-4)
    two_qubit: Dict[Tuple[int, int], GateProperties] = {}
    zz: Dict[FrozenSet[int], float] = {}
    for a, b in edges:
        two_qubit[(a, b)] = GateProperties(
            duration_ns=float(rng.uniform(220.0, 520.0)),
            error=float(rng.uniform(0.006, 0.016)),
        )
        zz[frozenset((a, b))] = abs(float(rng.normal(0.0, zz_scale)))

    return DeviceModel(
        name=name,
        num_qubits=num_qubits,
        coupling_edges=list(edges),
        qubit_properties=qubits,
        single_qubit_gate=single,
        two_qubit_gates=two_qubit,
        readout_duration_ns=3200.0,
        zz_crosstalk_rad_per_ns=zz,
    )


def fake_casablanca(seed: int = 7001) -> DeviceModel:
    """7-qubit heavy-hex device modelled after ``ibmq_casablanca``."""
    return _build_device("fake_casablanca", 7, _HEAVY_HEX_7Q, seed)


def fake_jakarta(seed: int = 7002) -> DeviceModel:
    """7-qubit heavy-hex device modelled after ``ibmq_jakarta``."""
    return _build_device("fake_jakarta", 7, _HEAVY_HEX_7Q, seed)


def fake_guadalupe(seed: int = 7016) -> DeviceModel:
    """16-qubit heavy-hex device modelled after ``ibmq_guadalupe``."""
    return _build_device("fake_guadalupe", 16, _HEAVY_HEX_16Q, seed)


def fake_montreal(seed: int = 7027) -> DeviceModel:
    """27-qubit heavy-hex device modelled after ``ibmq_montreal``."""
    return _build_device("fake_montreal", 27, _HEAVY_HEX_27Q, seed)


_REGISTRY = {
    "fake_casablanca": fake_casablanca,
    "fake_jakarta": fake_jakarta,
    "fake_guadalupe": fake_guadalupe,
    "fake_montreal": fake_montreal,
    # The paper's device names map onto our fakes for convenience.
    "ibmq_casablanca": fake_casablanca,
    "ibmq_jakarta": fake_jakarta,
    "ibmq_guadalupe": fake_guadalupe,
    "ibmq_montreal": fake_montreal,
}


def get_device(name: str, seed: int = None) -> DeviceModel:
    """Look up a fake device by name (accepts both fake_* and ibmq_* names)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise BackendError(f"unknown device '{name}'; available: {sorted(set(_REGISTRY))}")
    factory = _REGISTRY[key]
    return factory(seed) if seed is not None else factory()


def available_devices() -> List[str]:
    """Names of all registered fake devices."""
    return sorted(name for name in _REGISTRY if name.startswith("fake_"))
