"""Dynamical decoupling (DD) insertion into idle windows.

DD "decouples" an idle qubit from slowly varying environmental noise by
inserting gate sequences whose net action is the identity: ``XX``, ``YY``,
the universal ``XY4 = X Y X Y`` sequence, or ``XY8``.  The open questions the
paper's VAQEM answers variationally are *how many* repetitions of the base
sequence to insert in each idle window (too few leaves coherent error
un-refocused, too many accumulates gate error) and whether a window benefits
from DD at all.

:func:`insert_dd_sequences` operates on a :class:`ScheduledCircuit`: it adds
the pulses of ``num_sequences`` repetitions of the chosen base sequence into
one idle window, spaced as a *periodic* distribution (equal free evolution
between pulses), matching the paper's configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits.gates import Gate
from ..exceptions import MitigationError
from ..transpiler.idle_windows import IdleWindow
from ..transpiler.scheduling import ScheduledCircuit

#: Supported base sequences, each a tuple of single-qubit gate names whose
#: product is the identity (up to global phase).
DD_SEQUENCES: Dict[str, Tuple[str, ...]] = {
    "xx": ("x", "x"),
    "yy": ("y", "y"),
    "xy4": ("x", "y", "x", "y"),
    "xy8": ("x", "y", "x", "y", "y", "x", "y", "x"),
}


@dataclass(frozen=True)
class DDConfig:
    """A DD configuration for one idle window."""

    sequence: str = "xy4"
    num_sequences: int = 0

    def __post_init__(self):
        if self.sequence not in DD_SEQUENCES:
            raise MitigationError(
                f"unknown DD sequence '{self.sequence}'; options: {sorted(DD_SEQUENCES)}"
            )
        if self.num_sequences < 0:
            raise MitigationError("num_sequences must be non-negative")

    @property
    def num_pulses(self) -> int:
        return self.num_sequences * len(DD_SEQUENCES[self.sequence])


def max_sequences_in_window(
    window: IdleWindow, scheduled: ScheduledCircuit, sequence: str = "xy4"
) -> int:
    """How many repetitions of ``sequence`` fit in the window (paper's sweep cap)."""
    if sequence not in DD_SEQUENCES:
        raise MitigationError(f"unknown DD sequence '{sequence}'")
    pulse_duration = scheduled.device.single_qubit_gate.duration_ns
    pulses_per_seq = len(DD_SEQUENCES[sequence])
    if pulse_duration <= 0:
        raise MitigationError("device reports a non-positive single-qubit gate duration")
    return int(window.duration_ns // (pulses_per_seq * pulse_duration))


def insert_dd_sequences(
    scheduled: ScheduledCircuit,
    window: IdleWindow,
    config: DDConfig,
) -> ScheduledCircuit:
    """Return a copy of the schedule with DD pulses inserted into ``window``.

    The pulses are placed as a periodic distribution: the window is divided
    into ``num_pulses + 1`` equal free-evolution segments with one pulse after
    each of the first ``num_pulses`` segments.  ``num_sequences=0`` returns an
    unmodified copy (the baseline).
    """
    out = scheduled.copy()
    if config.num_sequences == 0:
        return out
    pulses = DD_SEQUENCES[config.sequence] * config.num_sequences
    pulse_duration = scheduled.device.single_qubit_gate.duration_ns
    total_pulse_time = len(pulses) * pulse_duration
    if total_pulse_time > window.duration_ns + 1e-9:
        raise MitigationError(
            f"{config.num_sequences} x {config.sequence} does not fit in a "
            f"{window.duration_ns:.1f} ns window"
        )
    free_time = window.duration_ns - total_pulse_time
    gap = free_time / (len(pulses) + 1)
    cursor = window.start_ns + gap
    for name in pulses:
        out.insert(Gate(name, 1), window.position, cursor, pulse_duration)
        cursor += pulse_duration + gap
    out.metadata.setdefault("dd_windows", {})
    out.metadata["dd_windows"][window.index] = (config.sequence, config.num_sequences)
    return out


def apply_dd_configuration(
    scheduled: ScheduledCircuit,
    windows: Sequence[IdleWindow],
    configs: Dict[int, DDConfig],
) -> ScheduledCircuit:
    """Apply per-window DD configurations (keyed by window index) in one pass."""
    out = scheduled
    for window in windows:
        config = configs.get(window.index)
        if config is None or config.num_sequences == 0:
            continue
        out = insert_dd_sequences(out, window, config)
    return out


def uniform_dd(
    scheduled: ScheduledCircuit,
    windows: Sequence[IdleWindow],
    sequence: str = "xy4",
    num_sequences: int = 1,
    skip_too_small: bool = True,
) -> ScheduledCircuit:
    """The paper's non-variational DD baseline: the same single round everywhere.

    Windows too small to host the sequence are skipped when
    ``skip_too_small`` is set (otherwise an error is raised).
    """
    out = scheduled
    for window in windows:
        capacity = max_sequences_in_window(window, scheduled, sequence)
        count = min(num_sequences, capacity) if skip_too_small else num_sequences
        if count <= 0:
            continue
        out = insert_dd_sequences(out, window, DDConfig(sequence, count))
    return out
