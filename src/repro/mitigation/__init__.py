"""Error-mitigation techniques: DD insertion, gate scheduling, MEM and ZNE."""

from .dd import (
    DD_SEQUENCES,
    DDConfig,
    apply_dd_configuration,
    insert_dd_sequences,
    max_sequences_in_window,
    uniform_dd,
)
from .gate_scheduling import (
    GSConfig,
    apply_gs_configuration,
    movable_gate,
    position_sweep_values,
    reschedule_gate,
    tunable_windows,
)
from .mem import MeasurementMitigator
from .zne import (
    fold_circuit_global,
    linear_extrapolate,
    richardson_extrapolate,
    zne_expectation,
)

__all__ = [
    "DD_SEQUENCES",
    "DDConfig",
    "insert_dd_sequences",
    "apply_dd_configuration",
    "uniform_dd",
    "max_sequences_in_window",
    "GSConfig",
    "reschedule_gate",
    "apply_gs_configuration",
    "movable_gate",
    "tunable_windows",
    "position_sweep_values",
    "MeasurementMitigator",
    "fold_circuit_global",
    "richardson_extrapolate",
    "linear_extrapolate",
    "zne_expectation",
]
