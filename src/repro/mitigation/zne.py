"""Zero-noise extrapolation (ZNE) — an extension beyond the paper's two techniques.

The paper repeatedly notes that VAQEM is a *framework*: other mitigation
techniques can be folded into the variational loop or applied orthogonally
(§II-C, §IX-C).  ZNE is the most common orthogonal post-processing technique
(digital gate folding + Richardson/linear extrapolation to the zero-noise
limit), so we provide it both as a standalone utility and as an optional
post-processing stage of the VAQEM pipeline, demonstrating how additional
techniques compose with the framework.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..exceptions import MitigationError


def fold_circuit_global(circuit: QuantumCircuit, scale_factor: float) -> QuantumCircuit:
    """Digital gate folding: stretch the noise by ``scale_factor``.

    A scale factor of ``2k + 1`` replaces the circuit ``U`` with
    ``U (U^dagger U)^k``; non-integer odd factors fold a prefix of the circuit.
    Measurements must be added after folding.
    """
    if scale_factor < 1.0:
        raise MitigationError("scale factor must be >= 1")
    if circuit.has_measurements():
        raise MitigationError("fold the circuit before adding measurements")
    num_full_folds = int((scale_factor - 1.0) // 2.0)
    folded = circuit.copy(name=f"{circuit.name}_fold{scale_factor:g}")
    inverse = circuit.inverse()
    for _ in range(num_full_folds):
        folded = folded.compose(inverse).compose(circuit)
    remainder = scale_factor - (1.0 + 2.0 * num_full_folds)
    if remainder > 1e-9:
        # Partial fold: apply dagger+forward of a prefix containing roughly
        # remainder/2 of the instructions.
        num_gates = len(circuit.instructions)
        prefix_len = max(1, int(round(num_gates * remainder / 2.0)))
        prefix = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, name="prefix")
        for inst in circuit.instructions[-prefix_len:]:
            prefix.append(inst.gate, inst.qubits, inst.clbits)
        folded = folded.compose(prefix.inverse()).compose(prefix)
    return folded


def richardson_extrapolate(scale_factors: Sequence[float], values: Sequence[float]) -> float:
    """Richardson extrapolation to the zero-noise limit.

    With k points this fits a degree-(k-1) polynomial exactly and evaluates it
    at scale 0; with two points it reduces to linear extrapolation.
    """
    scale_factors = np.asarray(scale_factors, dtype=float)
    values = np.asarray(values, dtype=float)
    if scale_factors.size != values.size or scale_factors.size < 2:
        raise MitigationError("need at least two (scale, value) pairs")
    if len(set(scale_factors.tolist())) != scale_factors.size:
        raise MitigationError("scale factors must be distinct")
    coeffs = np.polyfit(scale_factors, values, deg=scale_factors.size - 1)
    return float(np.polyval(coeffs, 0.0))


def linear_extrapolate(scale_factors: Sequence[float], values: Sequence[float]) -> float:
    """Least-squares linear fit evaluated at zero noise (more robust than Richardson)."""
    scale_factors = np.asarray(scale_factors, dtype=float)
    values = np.asarray(values, dtype=float)
    if scale_factors.size != values.size or scale_factors.size < 2:
        raise MitigationError("need at least two (scale, value) pairs")
    slope, intercept = np.polyfit(scale_factors, values, deg=1)
    return float(intercept)


def zne_expectation(
    executor: Callable[[QuantumCircuit], float],
    circuit: QuantumCircuit,
    scale_factors: Sequence[float] = (1.0, 2.0, 3.0),
    method: str = "linear",
) -> Tuple[float, List[float]]:
    """Run ZNE over an executor that maps a circuit to an expectation value.

    Returns the extrapolated value and the per-scale raw values.
    """
    if method not in ("linear", "richardson"):
        raise MitigationError("method must be 'linear' or 'richardson'")
    raw: List[float] = []
    for scale in scale_factors:
        folded = fold_circuit_global(circuit, scale)
        raw.append(float(executor(folded)))
    extrapolate = linear_extrapolate if method == "linear" else richardson_extrapolate
    return extrapolate(scale_factors, raw), raw
