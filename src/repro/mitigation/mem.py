"""Measurement error mitigation (MEM).

The paper's baseline applies MEM orthogonally to all configurations: a
calibration stage measures the confusion matrix of the read-out chain (by
preparing and measuring each computational basis state, or — as here —
tensoring the per-qubit confusion matrices) and the inverse of that matrix is
applied to measured count vectors before expectation values are computed.

Both the full-matrix inversion and the scalable tensored (per-qubit) variant
are implemented; for the <= 7 qubit circuits of the evaluation they coincide
because the underlying readout error model is uncorrelated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..backends.device import DeviceModel
from ..exceptions import MitigationError
from ..simulators.readout import counts_to_probabilities, tensor_confusion_matrix


class MeasurementMitigator:
    """Inverts readout confusion to recover the true outcome distribution."""

    def __init__(self, confusion_matrices: Sequence[np.ndarray]):
        if not confusion_matrices:
            raise MitigationError("at least one confusion matrix is required")
        self.confusions: List[np.ndarray] = [np.asarray(m, dtype=float) for m in confusion_matrices]
        for matrix in self.confusions:
            if matrix.shape != (2, 2):
                raise MitigationError("confusion matrices must be 2x2")
            if not np.allclose(matrix.sum(axis=0), 1.0, atol=1e-6):
                raise MitigationError("confusion matrices must be column stochastic")
        self._inverses = [np.linalg.inv(m) for m in self.confusions]

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_device(cls, device: DeviceModel, physical_qubits: Sequence[int]) -> "MeasurementMitigator":
        """Build the mitigator from the device's calibrated readout errors.

        ``physical_qubits[i]`` is the device qubit measured into classical bit
        ``i`` of the count bitstrings.
        """
        return cls([device.readout_confusion_matrix(q) for q in physical_qubits])

    @classmethod
    def from_calibration_counts(
        cls, zero_counts: Dict[str, int], one_counts_per_qubit: Sequence[Dict[str, int]]
    ) -> "MeasurementMitigator":
        """Build per-qubit confusion matrices from calibration-circuit counts.

        ``zero_counts`` are counts of measuring the all-|0> preparation;
        ``one_counts_per_qubit[i]`` are counts of the preparation with qubit
        ``i`` flipped to |1>.
        """
        num_qubits = len(next(iter(zero_counts)))
        if len(one_counts_per_qubit) != num_qubits:
            raise MitigationError("need one |1>-preparation count set per qubit")
        confusions = []
        zero_probs = counts_to_probabilities(zero_counts, num_qubits)
        for qubit in range(num_qubits):
            p1_given_0 = _marginal_one_probability(zero_probs, qubit, num_qubits)
            one_probs = counts_to_probabilities(one_counts_per_qubit[qubit], num_qubits)
            p1_given_1 = _marginal_one_probability(one_probs, qubit, num_qubits)
            confusions.append(
                np.array(
                    [[1.0 - p1_given_0, 1.0 - p1_given_1], [p1_given_0, p1_given_1]]
                )
            )
        return cls(confusions)

    # -- application ---------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self.confusions)

    def full_inverse(self) -> np.ndarray:
        """Inverse of the tensored confusion matrix of the whole register."""
        return np.linalg.inv(tensor_confusion_matrix(self.confusions))

    def mitigate_probabilities(self, probabilities: np.ndarray, clip: bool = True) -> np.ndarray:
        """Apply the inverse confusion matrix to an outcome distribution.

        The raw inverse can produce small negative entries; they are clipped
        to zero and the vector re-normalised (the standard least-disturbance
        correction) unless ``clip`` is disabled.
        """
        probabilities = np.asarray(probabilities, dtype=float)
        expected = 2 ** self.num_qubits
        if probabilities.size != expected:
            raise MitigationError(f"expected a distribution of length {expected}")
        mitigated = self.full_inverse() @ probabilities
        if clip:
            mitigated = np.clip(mitigated, 0.0, None)
            total = mitigated.sum()
            if total <= 0:
                raise MitigationError("mitigation removed all probability mass")
            mitigated = mitigated / total
        return mitigated

    def mitigate_counts(self, counts: Dict[str, int]) -> Dict[str, float]:
        """Apply mitigation to a counts dictionary, returning quasi-counts."""
        probs = counts_to_probabilities(counts, self.num_qubits)
        total = sum(counts.values())
        mitigated = self.mitigate_probabilities(probs)
        out: Dict[str, float] = {}
        for index, value in enumerate(mitigated):
            if value > 1e-12:
                out[format(index, f"0{self.num_qubits}b")] = float(value * total)
        return out


def _marginal_one_probability(probabilities: np.ndarray, qubit: int, num_qubits: int) -> float:
    """P(bit ``qubit`` == 1) of a distribution over ``num_qubits`` bits."""
    total = 0.0
    for index, p in enumerate(probabilities):
        if (index >> (num_qubits - 1 - qubit)) & 1:
            total += p
    return float(min(max(total, 0.0), 1.0))
