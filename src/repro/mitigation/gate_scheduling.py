"""Single-qubit gate scheduling (GS) within idle windows.

ALAP compilation leaves single-qubit gates pressed against the operation that
follows them, with all the slack *before* the gate.  Inspired by Hahn
spin-echo physics, moving such a gate into the middle of its adjacent idle
window can refocus the coherent phase accumulated during the idle time
(paper §III-B, Fig. 6).  The optimal position depends on the state entering
the window and on the qubit's noise, so VAQEM tunes the position
variationally; this module provides the mechanical part — moving a gate to a
fractional position of its window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..exceptions import MitigationError
from ..transpiler.idle_windows import IdleWindow, adjacent_single_qubit_gate
from ..transpiler.scheduling import ScheduledCircuit, TimedInstruction


@dataclass(frozen=True)
class GSConfig:
    """A gate-scheduling configuration for one idle window.

    ``position`` is the fractional placement of the movable gate within the
    combined slack: 1.0 keeps the ALAP baseline position, 0.0 moves the gate
    as early as possible (ASAP), 0.5 centres it in the window.
    """

    position: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.position <= 1.0:
            raise MitigationError("gate position must lie in [0, 1]")


def movable_gate(scheduled: ScheduledCircuit, window: IdleWindow) -> Optional[TimedInstruction]:
    """The gate that GS may move for this window (None when there is none)."""
    return adjacent_single_qubit_gate(scheduled, window)


def reschedule_gate(
    scheduled: ScheduledCircuit,
    window: IdleWindow,
    config: GSConfig,
) -> ScheduledCircuit:
    """Return a copy of the schedule with the window's adjacent gate moved.

    When the window has no movable single-qubit gate the schedule is returned
    unchanged (GS simply has nothing to tune there, as in the paper where only
    a subset of windows have adjacent single-qubit gates).
    """
    out = scheduled.copy()
    gate = movable_gate(out, window)
    if gate is None:
        return out
    # The gate is moved so that it always lies fully inside the window:
    # position 0 presses it against the window start (ASAP), position 1
    # against the window end (the ALAP baseline, up to one gate duration).
    span = max(window.duration_ns - gate.duration_ns, 0.0)
    new_start = window.start_ns + config.position * span
    out.replace(gate, gate.shifted(new_start))
    out.metadata.setdefault("gs_windows", {})
    out.metadata["gs_windows"][window.index] = config.position
    return out


def apply_gs_configuration(
    scheduled: ScheduledCircuit,
    windows: Sequence[IdleWindow],
    configs: Dict[int, GSConfig],
) -> ScheduledCircuit:
    """Apply per-window gate-scheduling configurations (keyed by window index)."""
    out = scheduled
    for window in windows:
        config = configs.get(window.index)
        if config is None:
            continue
        out = reschedule_gate(out, window, config)
    return out


def tunable_windows(scheduled: ScheduledCircuit, windows: Sequence[IdleWindow]) -> List[IdleWindow]:
    """Windows that actually have a movable gate (GS candidates)."""
    return [w for w in windows if movable_gate(scheduled, w) is not None]


def position_sweep_values(resolution: int) -> List[float]:
    """The discrete positions swept per window (paper §VI-C: resolution is
    constrained by the execution framework's budget)."""
    if resolution < 2:
        raise MitigationError("a position sweep needs at least two points")
    return [i / (resolution - 1) for i in range(resolution)]
