"""Fake-device execution engine: transpile-and-run against a device model.

:class:`FakeDeviceEngine` is the "submit to the machine" backend: it accepts
*logical* circuits, compiles them for its device (noise-aware layout,
routing, basis translation, ALAP scheduling) and executes the schedule on the
noisy density-matrix engine.  The compilation is cached per circuit content,
so resubmitting the same circuit — the dominant pattern in VQE trajectory
replays and mitigation sweeps — skips straight to the (equally cached) noisy
execution.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Union

import numpy as np

from ..backends.device import DeviceModel
from ..backends.fake import get_device
from ..circuits.circuit import QuantumCircuit
from ..operators.pauli import PauliSum
from ..simulators.noise_model import NoiseModel
from ..simulators.readout import probabilities_to_counts
from ..transpiler.pipeline import TranspileResult, transpile
from .base import EngineResult, ExecutionEngine
from .density_engine import _LRUCache, NoisyDensityMatrixEngine
from .fingerprint import circuit_fingerprint, circuit_hash_chain

#: Sentinel distinguishing "use the engine's configured shots" from an
#: explicit ``shots=None`` (exact infinite-shot) request.
_DEFAULT_SHOTS = object()


class FakeDeviceEngine(ExecutionEngine):
    """Noisy execution of logical circuits on a fake IBM-style device."""

    name = "fake_device"

    def __init__(
        self,
        device: Union[DeviceModel, str],
        noise_model: Optional[NoiseModel] = None,
        seed: Optional[int] = None,
        shots: int = 4096,
        physical_qubits: Optional[Sequence[int]] = None,
        scheduling_policy: str = "alap",
        transpile_cache_entries: int = 256,
        expectations_only_ipc: bool = False,
        enable_canonicalisation: bool = True,
        kernel: Optional[str] = None,
    ):
        super().__init__(seed=seed)
        self.device = get_device(device) if isinstance(device, str) else device
        self.noise_model = noise_model or NoiseModel.from_device(self.device)
        self.shots = int(shots)
        self.physical_qubits = list(physical_qubits) if physical_qubits is not None else None
        self.scheduling_policy = scheduling_policy
        self.transpile_cache_entries = int(transpile_cache_entries)
        #: Simulation kernel of the inner noisy engine (``"dense"`` /
        #: ``"ptm"``; ``None`` defers to ``REPRO_ENGINE_KERNEL``) — see
        #: :class:`NoisyDensityMatrixEngine` and ``docs/ptm.md``.
        self._noisy = NoisyDensityMatrixEngine(
            self.noise_model,
            seed=seed,
            expectations_only_ipc=expectations_only_ipc,
            enable_canonicalisation=enable_canonicalisation,
            kernel=kernel,
        )
        self.kernel = self._noisy.kernel
        self._transpiled = _LRUCache(transpile_cache_entries)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _transpile_key(self, circuit: QuantumCircuit):
        """Transpile-cache key: circuit content plus the compilation context.

        ``physical_qubits`` / ``scheduling_policy`` are plain attributes a
        caller may reassign after construction; keying on them makes such
        changes miss the cache instead of silently reusing the old layout.
        """
        return (
            circuit_fingerprint(circuit),
            tuple(self.physical_qubits) if self.physical_qubits is not None else None,
            self.scheduling_policy,
        )

    def transpile(self, circuit: QuantumCircuit) -> TranspileResult:
        """Compile ``circuit`` for the device, cached by circuit content and
        compilation context."""
        circuit = self._resolve_program(circuit)
        key = self._transpile_key(circuit)
        with self._lock:
            cached = self._transpiled.get(key)
            if cached is not None:
                self.stats.transpile_cache_hits += 1
                return cached
            self.stats.transpile_cache_misses += 1
        result = transpile(
            circuit,
            self.device,
            physical_qubits=self.physical_qubits,
            scheduling_policy=self.scheduling_policy,
        )
        with self._lock:
            self._transpiled.put(key, result)
        return result

    # ------------------------------------------------------------------
    def run(self, circuit: QuantumCircuit) -> EngineResult:
        """Transpile and execute one logical circuit; samples ``self.shots`` counts."""
        circuit = self._resolve_program(circuit)
        fingerprint = circuit_fingerprint(circuit)
        compiled = self.transpile(circuit)
        inner = self._noisy.run(compiled.scheduled)
        counts = None
        if inner.probabilities is not None:
            # Sample straight from the distribution the inner run already
            # produced — one pipeline pass per submission, and the stats
            # reflect one execution per circuit.
            rng = self._sampling_rng(None, "counts", fingerprint, str(self.shots))
            counts = probabilities_to_counts(inner.probabilities, self.shots, rng=rng)
        return EngineResult(
            fingerprint=fingerprint,
            engine=self.name,
            state=inner.state,
            probabilities=inner.probabilities,
            clbit_order=inner.clbit_order,
            counts=counts,
            from_cache=inner.from_cache,
            metadata={"device": self.device.name, "schedule_fingerprint": inner.fingerprint},
        )

    def counts(
        self, circuit: QuantumCircuit, shots: Optional[int] = None, seed: Optional[int] = None
    ) -> Dict[str, int]:
        """Sampled measurement counts for one logical circuit.

        ``shots=None`` falls back to the engine's configured shot count (an
        exact distribution is available via ``run(...).probabilities``); an
        explicit ``seed`` overrides the engine seeding contract for this
        call only.
        """
        shots = self.shots if shots is None else int(shots)
        circuit = self._resolve_program(circuit)
        compiled = self.transpile(circuit)
        probabilities, _ = self._noisy.measured_probabilities(compiled.scheduled)
        rng = self._sampling_rng(seed, "counts", circuit_fingerprint(circuit), str(shots))
        return probabilities_to_counts(probabilities, shots, rng=rng)

    def expectation(
        self,
        circuit: QuantumCircuit,
        observable: PauliSum,
        shots=_DEFAULT_SHOTS,
        mitigator=None,
        seed: Optional[int] = None,
    ) -> float:
        """``<observable>`` measured on the noisy device execution.

        The circuit must measure every observable qubit (add
        ``circuit.measure_all()`` before submitting, as on real hardware).
        Like :meth:`run`, sampling uses the engine's configured ``shots`` by
        default; pass ``shots=None`` explicitly for the exact
        (infinite-shot) value.  An explicit ``seed`` overrides the engine
        seeding contract for this call only.
        """
        if shots is _DEFAULT_SHOTS:
            shots = self.shots
        circuit = self._resolve_program(circuit)
        compiled = self.transpile(circuit)
        return self._noisy.expectation(
            compiled.scheduled, observable, shots=shots, mitigator=mitigator, seed=seed
        )

    def expectation_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        observable: PauliSum,
        shots=_DEFAULT_SHOTS,
        mitigator=None,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
        seed: Optional[int] = None,
    ):
        """Batched ``<observable>``; equals element-wise :meth:`expectation`.

        Overrides the base implementation so the configured-``shots`` default
        applies to the batch path too (the base class would pass an explicit
        ``shots=None``).  ``parallelism`` / ``max_workers`` select the
        execution tier exactly as on :meth:`run_batch`; ``seed`` applies to
        every item, as on element-wise calls.
        """
        if shots is _DEFAULT_SHOTS:
            shots = self.shots
        kwargs = {"observable": observable, "shots": shots, "mitigator": mitigator, "seed": seed}
        return self._dispatch_batch("expectation", circuits, kwargs, max_workers, parallelism)

    def submit_expectation_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        observable: PauliSum,
        shots=_DEFAULT_SHOTS,
        mitigator=None,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
        submitter=None,
        priority: int = 0,
        seed: Optional[int] = None,
    ):
        """Asynchronous :meth:`expectation_batch`; the configured-``shots``
        default applies exactly as on the blocking path, and ``submitter`` /
        ``priority`` feed the engine's slot scheduler."""
        if shots is _DEFAULT_SHOTS:
            shots = self.shots
        kwargs = {"observable": observable, "shots": shots, "mitigator": mitigator, "seed": seed}
        return self._submit_job(
            "expectation", circuits, kwargs, max_workers, parallelism, submitter, priority
        )

    # ------------------------------------------------------------------
    # Process-tier worker protocol (see repro.engine.parallel)
    # ------------------------------------------------------------------
    def _serial_call(self, kind: str, item, kwargs):
        if kind == "run":
            return self.run(item)
        if kind == "expectation":
            return self.expectation(
                item, kwargs["observable"], shots=kwargs["shots"],
                mitigator=kwargs.get("mitigator"), seed=kwargs.get("seed"),
            )
        return super()._serial_call(kind, item, kwargs)

    def _process_spec(self):
        from .parallel import EngineWorkerSpec

        context = (
            self.seed,
            self.shots,
            tuple(self.physical_qubits or ()),
            self.scheduling_policy,
            self._noisy.expectations_only_ipc,
        )
        return EngineWorkerSpec(
            engine_class=type(self),
            kwargs={
                "device": self.device,
                "noise_model": self.noise_model,
                "seed": self.seed,
                "shots": self.shots,
                "physical_qubits": self.physical_qubits,
                "scheduling_policy": self.scheduling_policy,
                "transpile_cache_entries": self.transpile_cache_entries,
                "expectations_only_ipc": self._noisy.expectations_only_ipc,
                "enable_canonicalisation": self._noisy.enable_canonicalisation,
                "kernel": self.kernel,
            },
            cache_key=f"{self.name}:{self._noisy._noise_key()}:{context!r}",
        )

    def _shard_chain(self, kind: str, circuit: QuantumCircuit):
        return circuit_hash_chain(circuit)

    def _schedule_fingerprint_of(self, compiled: TranspileResult) -> str:
        return self._noisy._chain(compiled.scheduled)[1][-1]

    def _worker_execute(self, kind: str, item, kwargs):
        from .parallel import CacheRecord

        result = self._serial_call(kind, item, kwargs)
        records = []
        transpile_key = self._transpile_key(item)
        with self._lock:
            compiled = self._transpiled.get(transpile_key)
        if compiled is None:  # pragma: no cover - transpile always caches
            return result, records
        records.append(CacheRecord("transpile", transpile_key, compiled))
        schedule_fp = self._schedule_fingerprint_of(compiled)
        # Expectations-only IPC (configured on the inner engine): keep the
        # heavy state worker-local for expectation shards.
        if not (self._noisy.expectations_only_ipc and kind == "expectation"):
            with self._noisy._lock:
                state = self._noisy._results.get(schedule_fp)
            if state is not None:
                records.append(CacheRecord("result", schedule_fp, state, int(state.data.nbytes)))
        if kind == "expectation" and self._noisy._expectation_cacheable(
            kwargs["shots"], kwargs.get("seed")
        ):
            key = self._noisy._expectation_key(
                schedule_fp, kwargs["observable"], kwargs["shots"],
                kwargs.get("mitigator"), kwargs.get("seed"),
            )
            with self._noisy._lock:
                data = self._noisy._expectations.get(key)
            if data is not None:
                records.append(CacheRecord("expectation", key, data))
        return result, records

    def _is_locally_cached(self, kind: str, item, kwargs, chain) -> bool:
        with self._lock:
            compiled = self._transpiled.get(self._transpile_key(item))
        if compiled is None:
            return False
        schedule_fp = self._schedule_fingerprint_of(compiled)
        with self._noisy._lock:
            if kind == "run":
                return schedule_fp in self._noisy._results
            if kind == "expectation":
                if not self._noisy._expectation_cacheable(kwargs["shots"], kwargs.get("seed")):
                    return False
                key = self._noisy._expectation_key(
                    schedule_fp, kwargs["observable"], kwargs["shots"],
                    kwargs.get("mitigator"), kwargs.get("seed"),
                )
                return self._noisy._expectations.get(key) is not None
        return False

    def _absorb_records(self, records) -> None:
        inner = []
        with self._lock:
            for record in records:
                if record.kind == "transpile":
                    self._transpiled.put(record.key, record.value)
                else:
                    inner.append(record)
        if inner:
            self._noisy._absorb_records(inner)

    def _stats_registry(self):
        return {"self": self.stats, "noisy": self._noisy.stats}

    def _worker_duplicate(self, kind: str, value):
        if kind == "run":
            # The serial path's repeat hits the transpile cache and the inner
            # result cache; mirror those counters, not the base engine's.
            self.stats.transpile_cache_hits += 1
            self._noisy.stats.executions += 1
            self._noisy.stats.cache_hits += 1
            from dataclasses import replace

            return replace(value, from_cache=True)
        return value

    # ------------------------------------------------------------------
    @property
    def noisy_engine(self) -> NoisyDensityMatrixEngine:
        """The underlying schedule-level engine (shares this engine's caches)."""
        return self._noisy

    def clear_caches(self) -> None:
        """Drop the transpilation cache and the inner engine's caches."""
        with self._lock:
            self._transpiled.clear()
        self._noisy.clear_caches()

    def reset_stats(self) -> None:
        """Zero both this engine's and the inner noisy engine's counters."""
        super().reset_stats()
        self._noisy.reset_stats()

    def close(self) -> None:
        """Release pooled resources of this engine and the inner one."""
        super().close()
        self._noisy.close()
