"""Fake-device execution engine: transpile-and-run against a device model.

:class:`FakeDeviceEngine` is the "submit to the machine" backend: it accepts
*logical* circuits, compiles them for its device (noise-aware layout,
routing, basis translation, ALAP scheduling) and executes the schedule on the
noisy density-matrix engine.  The compilation is cached per circuit content,
so resubmitting the same circuit — the dominant pattern in VQE trajectory
replays and mitigation sweeps — skips straight to the (equally cached) noisy
execution.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Union

import numpy as np

from ..backends.device import DeviceModel
from ..backends.fake import get_device
from ..circuits.circuit import QuantumCircuit
from ..operators.pauli import PauliSum
from ..simulators.noise_model import NoiseModel
from ..simulators.readout import probabilities_to_counts
from ..transpiler.pipeline import TranspileResult, transpile
from .base import EngineResult, ExecutionEngine
from .density_engine import _LRUCache, NoisyDensityMatrixEngine
from .fingerprint import circuit_fingerprint

#: Sentinel distinguishing "use the engine's configured shots" from an
#: explicit ``shots=None`` (exact infinite-shot) request.
_DEFAULT_SHOTS = object()


class FakeDeviceEngine(ExecutionEngine):
    """Noisy execution of logical circuits on a fake IBM-style device."""

    name = "fake_device"

    def __init__(
        self,
        device: Union[DeviceModel, str],
        noise_model: Optional[NoiseModel] = None,
        seed: Optional[int] = None,
        shots: int = 4096,
        physical_qubits: Optional[Sequence[int]] = None,
        scheduling_policy: str = "alap",
        transpile_cache_entries: int = 256,
    ):
        super().__init__(seed=seed)
        self.device = get_device(device) if isinstance(device, str) else device
        self.noise_model = noise_model or NoiseModel.from_device(self.device)
        self.shots = int(shots)
        self.physical_qubits = list(physical_qubits) if physical_qubits is not None else None
        self.scheduling_policy = scheduling_policy
        self._noisy = NoisyDensityMatrixEngine(self.noise_model, seed=seed)
        self._transpiled = _LRUCache(transpile_cache_entries)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def transpile(self, circuit: QuantumCircuit) -> TranspileResult:
        """Compile ``circuit`` for the device, cached by circuit content."""
        fingerprint = circuit_fingerprint(circuit)
        with self._lock:
            cached = self._transpiled.get(fingerprint)
            if cached is not None:
                self.stats.transpile_cache_hits += 1
                return cached
            self.stats.transpile_cache_misses += 1
        result = transpile(
            circuit,
            self.device,
            physical_qubits=self.physical_qubits,
            scheduling_policy=self.scheduling_policy,
        )
        with self._lock:
            self._transpiled.put(fingerprint, result)
        return result

    # ------------------------------------------------------------------
    def run(self, circuit: QuantumCircuit) -> EngineResult:
        """Transpile and execute one logical circuit; samples ``self.shots`` counts."""
        fingerprint = circuit_fingerprint(circuit)
        compiled = self.transpile(circuit)
        inner = self._noisy.run(compiled.scheduled)
        counts = None
        if inner.probabilities is not None:
            # Sample straight from the distribution the inner run already
            # produced — one pipeline pass per submission, and the stats
            # reflect one execution per circuit.
            rng = self._sampling_rng(None, "counts", fingerprint, str(self.shots))
            counts = probabilities_to_counts(inner.probabilities, self.shots, rng=rng)
        return EngineResult(
            fingerprint=fingerprint,
            engine=self.name,
            state=inner.state,
            probabilities=inner.probabilities,
            clbit_order=inner.clbit_order,
            counts=counts,
            from_cache=inner.from_cache,
            metadata={"device": self.device.name, "schedule_fingerprint": inner.fingerprint},
        )

    def counts(
        self, circuit: QuantumCircuit, shots: Optional[int] = None, seed: Optional[int] = None
    ) -> Dict[str, int]:
        shots = self.shots if shots is None else int(shots)
        compiled = self.transpile(circuit)
        probabilities, _ = self._noisy.measured_probabilities(compiled.scheduled)
        rng = self._sampling_rng(seed, "counts", circuit_fingerprint(circuit), str(shots))
        return probabilities_to_counts(probabilities, shots, rng=rng)

    def expectation(
        self,
        circuit: QuantumCircuit,
        observable: PauliSum,
        shots=_DEFAULT_SHOTS,
        mitigator=None,
    ) -> float:
        """``<observable>`` measured on the noisy device execution.

        The circuit must measure every observable qubit (add
        ``circuit.measure_all()`` before submitting, as on real hardware).
        Like :meth:`run`, sampling uses the engine's configured ``shots`` by
        default; pass ``shots=None`` explicitly for the exact
        (infinite-shot) value.
        """
        if shots is _DEFAULT_SHOTS:
            shots = self.shots
        compiled = self.transpile(circuit)
        return self._noisy.expectation(
            compiled.scheduled, observable, shots=shots, mitigator=mitigator
        )

    def expectation_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        observable: PauliSum,
        shots=_DEFAULT_SHOTS,
        mitigator=None,
        max_workers: Optional[int] = None,
    ):
        """Batched ``<observable>``; equals element-wise :meth:`expectation`.

        Overrides the base implementation so the configured-``shots`` default
        applies to the batch path too (the base class would pass an explicit
        ``shots=None``).
        """
        if shots is _DEFAULT_SHOTS:
            shots = self.shots
        return self._map_batch(
            lambda circuit: self.expectation(circuit, observable, shots=shots, mitigator=mitigator),
            circuits,
            max_workers,
        )

    # ------------------------------------------------------------------
    @property
    def noisy_engine(self) -> NoisyDensityMatrixEngine:
        """The underlying schedule-level engine (shares this engine's caches)."""
        return self._noisy

    def clear_caches(self) -> None:
        with self._lock:
            self._transpiled.clear()
        self._noisy.clear_caches()

    def reset_stats(self) -> None:
        super().reset_stats()
        self._noisy.reset_stats()
