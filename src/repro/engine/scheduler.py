"""Slot-based concurrent batch scheduler for the engine layer.

The first async layer (PR 3) drained submitted batches strictly one at a
time: a single dispatcher thread popped a FIFO queue, so when several
independent frontends shared one engine — two estimators, a window tuner
next to a VQE trajectory replay, multiple runtime sessions — all but one sat
idle behind the head of the queue.  This module replaces that dispatcher
with a real scheduler (full design in ``docs/scheduler.md``):

**Per-tier slots.**  Each submitted batch resolves to an execution tier
(``serial`` / ``thread`` / ``process``, exactly as a blocking call would) and
each tier has a bounded number of *slots* — concurrently executing batches.
The serial tier always has one slot; the thread and process tiers default to
two and are configurable through ``engine.scheduler_slots``.  Slot limits
bound the engine-side concurrency no matter how many frontends submit.

**Dependency detection — item-level edges.**  An *item* conflicts with a
running one when their schedule hash chains overlap — they share a deep
simulated prefix (or are the identical schedule outright), so running them
concurrently would duplicate the simulation work the prefix-reuse
checkpoints otherwise save.  The chains digest the *canonical* processing
order (:mod:`repro.engine.canonical`), so two schedules that commute into
the same deep prefix conflict even when their instruction lists were
assembled in different orders — while schedules that merely collide
textually (same device, same shallow state-prep) do not.  Crucially the
edges are **per item, not per batch**: when a queued batch shares only some
items with what is running, the non-conflicting items dispatch immediately
as a partial *slice* and the rest remain queued at the head of their
submitter's queue until the conflicting work completes.  Two batches sharing
exactly one schedule therefore overlap on everything else, where the
whole-batch conflict rule this replaced (PR 4) serialized them entirely.
The chain *root* (which encodes device/layout context shared by every
schedule of a device) is excluded, so "same device" alone never serializes
anything.

**Fairness and priority.**  Batches queue per *submitter* (an identity the
frontends pass; anonymous submissions group by submitting thread) and each
submitter's batches stay FIFO among themselves.  Across submitters the
scheduler picks round-robin, so a frontend saturating the queue cannot starve
one submitting occasionally.  An integer ``priority`` hint (higher first)
overrides round-robin order between runnable batches.

**Determinism.**  Overlap changes *when* a batch executes, never *what* it
computes: every batch still runs through the engine's ``_dispatch_batch`` and
the content-derived seeding contract
(:func:`repro.engine.fingerprint.derive_seed`) makes each value a function of
``(engine seed, item content)`` alone.  A seeded engine therefore returns
bit-identical results whether batches drain one at a time or overlap — the
scheduler only reorders wall-clock, and the conflict rule keeps the cache /
prefix-snapshot *efficiency* of the serial drain too.

**Backpressure.**  At most ``max_pending`` batches may be queued (not yet
executing) per engine; further ``submit*`` calls block until the scheduler
drains, exactly as the FIFO dispatcher's bounded queue did.

**Teardown.**  :meth:`BatchScheduler.shutdown` is idempotent and safe while
futures are still pending: already-queued batches drain first (their futures
resolve rather than hang), concurrent and repeated shutdowns wait for the
same drain, and a shutdown issued *from* a scheduler worker thread (e.g. an
``engine.close()`` inside a done-callback) does not deadlock waiting on
itself.  The finalizer path (``wait=False``) cancels queued batches instead —
their engine is gone anyway.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict, deque
from typing import Any, Dict, FrozenSet, List, Optional, Sequence

from ..exceptions import EngineError
from .futures import DEFAULT_MAX_PENDING, EngineFuture
from .parallel import resolve_parallelism

__all__ = ["BatchJob", "BatchScheduler", "DEFAULT_SLOTS", "item_fingerprints", "job_fingerprints"]

#: Sentinel for "no round-robin position yet" (submitter keys are arbitrary
#: hashable values, so ``None`` would be ambiguous).
_NO_KEY = object()

#: Default concurrent-batch slots per execution tier.  The serial tier is
#: pinned to one slot (a "serial" submitter asked for strictly sequential
#: execution); thread/process default to two overlapping batches and are
#: configurable via ``engine.scheduler_slots``.
DEFAULT_SLOTS: Dict[str, int] = {"serial": 1, "thread": 2, "process": 2}


def job_chains(engine, kind: str, items: Sequence[Any]) -> List[List[str]]:
    """Each item's hash chain, via the same ``_shard_chain`` hook the process
    tier shards by (engines without the hook fall back to item identity).
    Computed once at submit time; the chains ride on the job so the process
    tier never re-hashes them."""
    chain_of = getattr(engine, "_shard_chain", None)
    if chain_of is None:
        return [[repr(id(item))] for item in items]
    return [list(chain_of(kind, item)) for item in items]


#: Fraction of a chain's depth a shared prefix must reach before it counts
#: as a conflict.  A chain entry at index ``k`` identifies the *k*-instruction
#: prefix, so two batches sharing an entry share that exact prefix — but a
#: shallow one (the parameter-independent state-prep instructions every
#: same-ansatz circuit starts with) is worth almost nothing to reuse, and
#: serializing on it would make realistic same-device frontends never
#: overlap.  Only entries in the deep half of their chain participate:
#: batches conflict when the prefix they share covers more than half of
#: either one's schedule — where serializing genuinely preserves the
#: prefix-reuse savings of a serial drain.
CONFLICT_DEPTH_FRACTION = 0.5


def item_fingerprints(chain: Sequence[str]) -> FrozenSet[str]:
    """The dependency-detection key of one item.

    The chain entries at depth ``> CONFLICT_DEPTH_FRACTION`` of the chain
    (always including the full fingerprint, so content-identical schedules
    conflict regardless of length).  The depth-0 root — device and layout
    context shared by *every* schedule of a device — never counts.
    Single-entry chains (e.g. the identity fallback) are kept whole.
    """
    if len(chain) <= 1:
        return frozenset(chain)
    depth = len(chain) - 1  # instructions; chain[0] is the root
    first = max(1, int(depth * CONFLICT_DEPTH_FRACTION) + 1)
    return frozenset(chain[first:])


def job_fingerprints(chains: Sequence[Sequence[str]]) -> FrozenSet[str]:
    """The union of a batch's per-item dependency keys.

    Scheduling itself uses the per-item keys (:func:`item_fingerprints`) so
    only genuinely conflicting items wait; the union remains the whole-batch
    summary (tests and diagnostics compare batches with it).
    """
    fingerprints: set = set()
    for chain in chains:
        fingerprints.update(item_fingerprints(chain))
    return frozenset(fingerprints)


class BatchJob:
    """One scheduled batch: items, futures, tier knobs and scheduling state."""

    __slots__ = (
        "kind",
        "items",
        "kwargs",
        "max_workers",
        "parallelism",
        "futures",
        "submitter",
        "priority",
        "tier",
        "chains",
        "fingerprints",
        "item_fingerprints",
        "pending",
    )

    def __init__(
        self,
        kind: str,
        items: Sequence[Any],
        kwargs: Dict[str, Any],
        max_workers: Optional[int],
        parallelism: Optional[str],
        futures: List[EngineFuture],
        submitter: Any,
        priority: int,
        tier: str,
        chains: List[List[str]],
        fingerprints: FrozenSet[str],
    ):
        self.kind = kind
        self.items = list(items)
        self.kwargs = kwargs
        self.max_workers = max_workers
        self.parallelism = parallelism
        self.futures = futures
        self.submitter = submitter
        self.priority = int(priority)
        #: The tier whose slot each dispatched slice of this job occupies
        #: while running (resolved at submit time; engines that degrade
        #: process -> thread inside ``_dispatch_batch`` still account against
        #: the requested tier).
        self.tier = tier
        #: Per-item hash chains, computed once at submit; the process tier
        #: reuses them instead of re-hashing every item.
        self.chains = chains
        #: Union of the per-item keys — the whole-batch summary.
        self.fingerprints = fingerprints
        #: Per-item dependency keys; the scheduler's conflict edges are
        #: between individual items, so a batch sharing only some items with
        #: running work dispatches the rest immediately.
        self.item_fingerprints: List[FrozenSet[str]] = [
            item_fingerprints(chain) for chain in chains
        ]
        #: Indices not yet dispatched (in submission order).  A partially
        #: dispatched job stays at the head of its submitter's queue until
        #: this empties, preserving per-submitter FIFO and backpressure
        #: accounting.
        self.pending: List[int] = list(range(len(self.items)))


class _RunningSlice:
    """One dispatched portion of a job: the indices executing together.

    A fully-runnable job dispatches as a single slice (the common case);
    item-level conflicts split a job into several slices over time.  Each
    slice occupies one slot of its job's tier while running and contributes
    its items' dependency keys to conflict detection.
    """

    __slots__ = ("job", "indices", "fingerprints", "tier", "thread_ident")

    def __init__(self, job: BatchJob, indices: Sequence[int]):
        self.job = job
        self.indices = list(indices)
        keys: set = set()
        for index in self.indices:
            keys.update(job.item_fingerprints[index])
        self.fingerprints: FrozenSet[str] = frozenset(keys)
        self.tier = job.tier
        #: Ident of the worker thread executing this slice (``None`` until
        #: running); lets :meth:`BatchScheduler.shutdown` recognise a
        #: shutdown issued from inside one of its own workers.
        self.thread_ident: Optional[int] = None


class BatchScheduler:
    """Schedules one engine's submitted batches onto per-tier slots.

    Owned by each engine (created lazily by the first ``submit*`` call) and
    held through a weak reference, so abandoning an engine without
    ``close()`` still lets it collect; a finalizer installed by the engine
    cancels whatever is left queued.  Worker threads are spawned per
    dispatched batch — concurrency is bounded by the slot table, which is
    small — and each runs the batch through ``engine._dispatch_batch``, the
    same code path blocking calls use, so tiers, shard planning and cache
    merge-back are reused unchanged.
    """

    def __init__(
        self,
        engine,
        slots: Optional[Dict[str, int]] = None,
        max_pending: int = DEFAULT_MAX_PENDING,
        name: str = "engine-scheduler",
    ):
        self._engine_ref = weakref.ref(engine)
        self._slots = dict(DEFAULT_SLOTS)
        if slots:
            for mode, count in slots.items():
                self._slots[mode] = max(1, int(count))
        # The serial tier's contract is strict sequential execution.
        self._slots["serial"] = 1
        self._max_pending = max(1, int(max_pending))
        self._name = name
        self._condition = threading.Condition()
        #: Per-submitter FIFO queues, in first-submission order (the
        #: round-robin scan walks this order).
        self._queues: "OrderedDict[Any, deque]" = OrderedDict()
        #: Round-robin position, remembered by *key* (not by index into the
        #: mutating key list) so emptied-and-deleted queues cannot skew the
        #: rotation: the last picked submitter, plus its successor at pick
        #: time as the fallback when the picked queue emptied.
        self._last_key: Any = _NO_KEY
        self._next_key: Any = _NO_KEY
        self._queued = 0
        self._running: List[BatchJob] = []
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def slot_limit(self, tier: str) -> int:
        return self._slots.get(tier, 1)

    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        items: Sequence[Any],
        kwargs: Dict[str, Any],
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
        submitter: Any = None,
        priority: int = 0,
    ) -> List[EngineFuture]:
        """Queue one batch; returns one future per item, in item order.

        Blocks while ``max_pending`` batches are already queued
        (backpressure).  ``submitter`` identifies the frontend for fairness
        purposes (defaults to the calling thread, so a single caller keeps
        strict FIFO semantics); ``priority`` breaks ties between runnable
        batches of different submitters, higher first.
        """
        engine = self._engine_ref()
        if engine is None:
            raise EngineError("cannot submit: the engine owning this scheduler is gone")
        items = list(items)
        # Resolve the tier now: invalid knobs raise on the calling thread,
        # exactly as a blocking call would, and the resolved mode is what the
        # job's slot accounting uses.
        plan = resolve_parallelism(parallelism, max_workers, len(items))
        chains = job_chains(engine, kind, items)
        fingerprints = job_fingerprints(chains)
        del engine  # no strong reference while queued
        key = self._submitter_key(submitter)
        with self._condition:
            while self._queued >= self._max_pending and not self._closed:
                self._condition.wait()
            if self._closed:
                raise EngineError("cannot submit to a closed scheduler")
            futures = [EngineFuture() for _ in items]
            job = BatchJob(
                kind, items, dict(kwargs), max_workers, parallelism,
                futures, key, priority, plan.mode, chains, fingerprints,
            )
            self._queues.setdefault(key, deque()).append(job)
            self._queued += 1
            self._dispatch_locked()
        return futures

    @staticmethod
    def _submitter_key(submitter: Any):
        if submitter is None:
            return ("thread", threading.get_ident())
        try:
            hash(submitter)
        except TypeError:
            return ("id", id(submitter))
        return submitter

    # ------------------------------------------------------------------
    # Scheduling (all under self._condition)
    # ------------------------------------------------------------------
    def _slots_in_use(self, tier: str) -> int:
        return sum(1 for running in self._running if running.tier == tier)

    def _runnable_indices(self, job: BatchJob) -> List[int]:
        """The job's pending items whose dependency keys are disjoint from
        every running slice — the portion that may dispatch right now."""
        if not self._running:
            return list(job.pending)
        indices = []
        for index in job.pending:
            keys = job.item_fingerprints[index]
            if any(keys & running.fingerprints for running in self._running):
                continue
            indices.append(index)
        return indices

    def _pick_locked(self) -> Optional[_RunningSlice]:
        """The next runnable slice, or ``None``.

        Only queue *heads* are considered (per-submitter FIFO); a head is
        runnable when its tier has a free slot and at least one of its
        pending items conflicts with no running slice.  Among runnable heads
        the highest priority wins, ties broken round-robin from the cursor.
        The winner's runnable items dispatch together as one slice; any
        conflicting remainder stays at the head of its queue (still counted
        by backpressure) until later picks drain it.
        """
        keys = list(self._queues.keys())
        if not keys:
            return None
        if self._last_key in self._queues:
            start = (keys.index(self._last_key) + 1) % len(keys)
        elif self._next_key in self._queues:
            start = keys.index(self._next_key)
        else:
            start = 0
        best_key = None
        best_rank = None
        best_indices: Optional[List[int]] = None
        for offset in range(len(keys)):
            key = keys[(start + offset) % len(keys)]
            job = self._queues[key][0]
            if self._slots_in_use(job.tier) >= self.slot_limit(job.tier):
                continue
            indices = self._runnable_indices(job)
            if not indices:
                continue
            rank = (-job.priority, offset)
            if best_rank is None or rank < best_rank:
                best_key, best_rank, best_indices = key, rank, indices
        if best_key is None:
            return None
        job = self._queues[best_key][0]
        dispatched = set(best_indices)
        job.pending = [index for index in job.pending if index not in dispatched]
        if not job.pending:
            self._queues[best_key].popleft()
            self._queued -= 1
            if not self._queues[best_key]:
                del self._queues[best_key]
        # Remember the pick and its successor-at-pick-time: even if the
        # picked queue (or the successor's) empties and is deleted, the
        # rotation resumes at the right neighbour instead of skipping it.
        self._last_key = best_key
        self._next_key = keys[(keys.index(best_key) + 1) % len(keys)]
        return _RunningSlice(job, best_indices)

    def _dispatch_locked(self) -> None:
        """Dispatch every currently-runnable slice onto a worker thread."""
        while True:
            running = self._pick_locked()
            if running is None:
                return
            self._running.append(running)
            threading.Thread(
                target=self._run_job, args=(running,), name=self._name, daemon=True
            ).start()
            # Wake backpressure waiters: a queue position may have freed up.
            self._condition.notify_all()

    # ------------------------------------------------------------------
    def _run_job(self, running: _RunningSlice) -> None:
        running.thread_ident = threading.get_ident()
        try:
            self._execute(running)
        finally:
            with self._condition:
                self._running.remove(running)
                self._condition.notify_all()
                self._dispatch_locked()

    def _execute(self, running: _RunningSlice) -> None:
        job = running.job
        # Prune items whose futures were cancelled before the slice started;
        # everything else transitions to RUNNING and is no longer cancellable.
        live = [index for index in running.indices if job.futures[index]._set_running()]
        if not live:
            return
        engine = self._engine_ref()
        if engine is None:
            error = EngineError("the engine owning this future was garbage-collected")
            for index in live:
                job.futures[index]._set_exception(error)
            return
        try:
            values = engine._dispatch_batch(
                job.kind,
                [job.items[index] for index in live],
                job.kwargs,
                job.max_workers,
                job.parallelism,
                chains=[job.chains[index] for index in live],
            )
            if len(values) != len(live):  # pragma: no cover - engine contract
                raise EngineError(
                    f"batch kind {job.kind!r} returned {len(values)} values for "
                    f"{len(live)} items"
                )
        except BaseException as error:  # noqa: BLE001 - propagated via futures
            for index in live:
                job.futures[index]._set_exception(error)
            return
        finally:
            del engine
        for index, value in zip(live, values):
            job.futures[index]._set_result(value)

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> bool:
        """Stop accepting submissions; with ``wait``, drain what is queued.

        Idempotent and safe with futures still pending: queued batches
        execute and resolve before a waiting shutdown returns, repeated or
        concurrent shutdowns wait for the same drain, and a shutdown from one
        of the scheduler's own worker threads (a done-callback calling
        ``engine.close()``) returns without waiting on itself — its batch
        finishes when the callback does.  ``wait=False`` (the engine
        finalizer path) instead cancels everything still queued: the engine
        is being collected, so the batches could only error.

        Returns whether the scheduler is fully drained on return — ``False``
        on the worker-thread and ``wait=False`` paths, where batches may
        still be executing; callers must not tear shared resources (e.g. the
        process pools) out from under them in that case.
        """
        with self._condition:
            self._closed = True
            self._condition.notify_all()  # release backpressure waiters
            if not wait:
                for queue in self._queues.values():
                    for job in queue:
                        # Only never-dispatched items cancel; a partially
                        # dispatched head's running slice resolves its own
                        # futures.
                        for index in job.pending:
                            job.futures[index]._mark_cancelled()
                self._queues.clear()
                self._queued = 0
                return not self._running
            current = threading.get_ident()
            if any(running.thread_ident == current for running in self._running):
                # Shutdown from inside one of our own worker threads (an
                # ``engine.close()`` in a done-callback): waiting would
                # deadlock on the very batch the callback belongs to — and on
                # anything queued behind it.  Mark closed and let the drain
                # finish in the background; the futures still resolve.
                return False
            self._condition.wait_for(lambda: self._queued == 0 and not self._running)
            return True
