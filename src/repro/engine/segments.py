"""Segment-level operator reuse for schedule evolution.

Prefix-keyed reuse (snapshots at schedule hash-chain depths) has a hard
ceiling on sweep workloads: once two candidate schedules diverge — a DD
sequence inserted into window *k*, a gate shifted inside it — everything
*after* the divergence re-simulates even when it is instruction-for-
instruction identical.  PR 5's oracle measured that ceiling at ~50-53% on
the H2 window-tuner sweep.

Density-matrix evolution is linear: the operators a mid-schedule *segment*
applies are a pure function of segment content, never of the state they are
applied to.  This module therefore caches each segment's **compiled operator
stream** — on the dense kernel the materialized ``SimOp`` payload sequence,
on the PTM kernel the fused composed kernels of one stride block — keyed by
a content hash of exactly the inputs that determine that stream.  A later
schedule containing the same segment (same instructions, same entry idle
state) *replays* the cached operators instead of re-walking the schedule:
idle-gap analysis, channel assembly and (on the PTM kernel) the kernel
compositions are all skipped.

Bit-exactness contract
----------------------
Replay applies the *identical* operator arrays in the *identical* order a
cold walk applies, so states — and therefore energies — are bit-identical
with segment reuse on or off, on every execution tier.  (Mathematically the
segment also has a single composed superoperator; applying that one matrix
would change the floating-point evaluation order, so the engine deliberately
replays the recorded per-kernel stream instead.  ``docs/segment_reuse.md``
spells out the argument; ``tests/test_segments.py`` pins both the
bit-identity and the <= 1e-12 agreement of the explicitly composed
operator.)

Segment granularity is the evolution kernel's determinism grid: one
instruction on the dense kernel, one ``fusion_stride`` block on the PTM
kernel (whose fused runs never cross stride boundaries — see
``docs/ptm.md``), so segment boundaries land exactly on the engine's
checkpoint grid.

Keying
------
``schedule_segment_keys`` digests, per segment:

* the schedule-level context: caller salt (the engine's noise key, which
  already covers device calibration, noise flags, canonicalisation and the
  kernel), qubit count, the position-to-physical layout and the stride;
* each instruction's timed token (name, params, qubits, clbits, absolute
  start and duration);
* each idle gap the simulator would fill before the instruction: the
  position, its entry ``last_time`` and the ZZ-partner positions, computed
  with the *same* >= 50%-idle-neighbour rule — including busy intervals that
  lie outside the segment, which is why the partners are part of the key
  rather than an assumption.

The op stream is a pure function of these inputs, so equal keys imply equal
operator streams.  Keys are memoised per prepared schedule by the engine;
the walk itself builds no matrices.

Concurrency
-----------
:class:`SegmentCache` is shared by every thread of one engine and resolves
racing lookups with single-flight claims: the first thread to miss a key
computes and records the segment, later threads block until the record
lands and then replay it.  Counters are therefore deterministic — every
distinct key is missed exactly once, however threads interleave.  (Worker
processes each own a cache, reset at shard start by the engine's
``_begin_shard`` hook so a shard's counters are a pure function of shard
content rather than of which worker ran earlier shards.)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from .fingerprint import _digest, timed_instruction_token

__all__ = [
    "SegmentCache",
    "SegmentRecord",
    "SegmentRuntime",
    "schedule_segment_keys",
    "segment_spans",
]

#: Idle gaps at or below this (in ns) emit no idle ops — the same threshold
#: ``NoisySimulator._idle_ops`` and the canonicalisation footprints use.
IDLE_EPSILON = 1e-9


def segment_spans(total: int, stride: int) -> List[Tuple[int, int]]:
    """Stride-grid segment boundaries over ``total`` instructions.

    ``[(0, stride), (stride, 2*stride), ..., (k*stride, total)]`` — every
    boundary is a multiple of ``stride`` (the PTM kernel's fusion grid; 1 on
    the dense kernel), so segments never cut a fused run and the engine's
    stride-aligned checkpoints always land on a segment boundary.
    """
    stride = max(1, int(stride))
    return [(start, min(start + stride, total)) for start in range(0, total, stride)]


def schedule_segment_keys(
    simulator,
    scheduled,
    context,
    salt: str = "",
    stride: int = 1,
) -> List[str]:
    """One content key per stride-grid segment of ``context.ordered``.

    ``simulator`` is the :class:`~repro.simulators.noisy_simulator.NoisySimulator`
    whose idle rule the keys must mirror (its ``_idle_overlap`` is consulted
    directly, so the ZZ judgement can never drift).  The walk advances a
    private ``last_time`` copy exactly as ``schedule_ops`` would, but builds
    no operator payloads — keying a schedule costs one token digest per
    instruction, done once and memoised by the engine.
    """
    ordered = context.ordered
    busy = context.busy
    neighbors = context.neighbors
    overlap = simulator._idle_overlap
    root = _digest(
        salt,
        str(scheduled.num_qubits),
        repr(tuple(scheduled.physical_qubits)),
        str(max(1, int(stride))),
    )
    last_time: Dict[int, float] = dict(context.initial_last_time)
    keys: List[str] = []
    for start, stop in segment_spans(len(ordered), stride):
        parts = [root]
        for index in range(start, stop):
            timed = ordered[index]
            parts.append(timed_instruction_token(timed))
            if timed.name == "barrier":
                continue
            for position in timed.qubits:
                entry = last_time[position]
                gap_end = timed.start_ns
                if gap_end - entry > IDLE_EPSILON:
                    partners = tuple(
                        other
                        for other in neighbors[position]
                        if overlap(busy[other], entry, gap_end)
                        >= 0.5 * (gap_end - entry)
                    )
                    parts.append(f"idle|{position}|{entry!r}|{partners!r}")
            if timed.name == "measure":
                last_time[timed.qubits[0]] = timed.end_ns
            else:
                for position in timed.qubits:
                    last_time[position] = timed.end_ns
        keys.append(_digest(*parts))
    return keys


class SegmentRecord:
    """One cached segment: the compiled operator stream plus bookkeeping.

    ``ops`` is kernel-specific — ``(kind, payload, positions)`` triples on
    the dense kernel, ``(ptm, positions, fused_count)`` triples on the PTM
    kernel — and is only ever replayed by the kernel that recorded it (the
    engine's noise key, which salts every segment key, includes the kernel).
    ``last_time`` holds the ``(position, end_ns)`` updates replay must apply
    to the cursor's idle bookkeeping; ``instructions`` is the number of
    schedule instructions the segment covers (for reuse accounting).
    """

    __slots__ = ("ops", "last_time", "instructions")

    def __init__(
        self,
        ops: Tuple,
        last_time: Tuple[Tuple[int, float], ...],
        instructions: int,
    ):
        self.ops = ops
        self.last_time = last_time
        self.instructions = int(instructions)


class _Claim:
    """Single-flight token for one in-progress segment computation."""

    __slots__ = ("event",)

    def __init__(self):
        self.event = threading.Event()


class SegmentCache:
    """Content-keyed LRU of :class:`SegmentRecord` with single-flight misses.

    ``acquire`` returns ``(record, None)`` on a hit and ``(None, claim)``
    when the caller must compute the segment; a thread racing an in-flight
    computation blocks until the record lands (or the computation is
    abandoned) and then retries.  The claimant must call :meth:`fulfil` on
    success or :meth:`abandon` on failure — never neither.
    """

    def __init__(self, max_entries: int = 65536):
        self.max_entries = max(1, int(max_entries))
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, SegmentRecord]" = OrderedDict()
        self._inflight: Dict[str, _Claim] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def acquire(self, key: str) -> Tuple[Optional[SegmentRecord], Optional[_Claim]]:
        while True:
            with self._lock:
                record = self._entries.get(key)
                if record is not None:
                    self._entries.move_to_end(key)
                    return record, None
                claim = self._inflight.get(key)
                if claim is None:
                    claim = _Claim()
                    self._inflight[key] = claim
                    return None, claim
            # Another thread is computing this segment; waiting (the work is
            # microseconds) keeps hit/miss counts deterministic where a racing
            # duplicate computation would make them timing-dependent.
            claim.event.wait()

    def fulfil(
        self,
        key: str,
        claim: _Claim,
        ops: Tuple,
        last_time: Tuple[Tuple[int, float], ...],
        instructions: int,
    ) -> SegmentRecord:
        record = SegmentRecord(ops, last_time, instructions)
        with self._lock:
            self._entries[key] = record
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            self._inflight.pop(key, None)
        claim.event.set()
        return record

    def abandon(self, key: str, claim: _Claim) -> None:
        """Release a claim whose computation failed; waiters retry (and one
        of them becomes the new claimant)."""
        with self._lock:
            self._inflight.pop(key, None)
        claim.event.set()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class SegmentRuntime:
    """What a backend's ``advance`` needs for segment reuse on one schedule:
    the engine's shared :class:`SegmentCache` plus the schedule's memoised
    key list (indexed by segment number, i.e. ``start // stride``)."""

    __slots__ = ("cache", "keys")

    def __init__(self, cache: SegmentCache, keys: Sequence[str]):
        self.cache = cache
        self.keys = keys
