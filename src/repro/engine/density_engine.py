"""Noisy density-matrix execution engine with caching and prefix reuse.

:class:`NoisyDensityMatrixEngine` wraps the schedule-aware
:class:`~repro.simulators.noisy_simulator.NoisySimulator` behind the
:class:`~repro.engine.base.ExecutionEngine` API and adds the two layers that
make VAQEM-style tuning sweeps affordable:

* a **content-hash result cache** — a scheduled circuit is identified by a
  fingerprint of its full content (instructions, timings, layout, device
  calibration); identical schedules are never simulated twice, no matter how
  they were constructed;
* a **prefix-reuse fast path** — while simulating, the engine checkpoints the
  evolution cursor at instruction boundaries (spaced to respect a byte
  budget) and keys each checkpoint by the schedule's hash chain at that
  depth.  A later schedule that shares a processing prefix — e.g. a window
  tuner candidate that only differs inside one idle window — resumes from the
  deepest matching checkpoint instead of simulating from ``t = 0``.  Resumed
  evolution is bit-identical to a cold run because processing an instruction
  only consults schedule content at or before its start time (see
  :mod:`repro.engine.fingerprint`).

With ``enable_canonicalisation`` (the default) the processing order the
chains digest — and the simulator executes — is the commutation-aware
*canonical* order of :mod:`repro.engine.canonical`: schedules equal up to
reordering of provably-commuting instructions share their fingerprints,
cache lines, checkpoints, shard chains and scheduler conflict keys, and the
canonical key deliberately defers DD-shaped pulses so sweep candidate
families share the longest possible prefix.  Since every schedule executes
its canonical order, a resumed prefix replays the exact instruction sequence
the checkpoint's producer ran — bit-identical, never merely close.

Both layers are thread-safe, so :meth:`run_batch` may fan out over threads
without changing any result.  The engine also implements the process-tier
worker protocol (:mod:`repro.engine.parallel`): batches submitted with
``parallelism="process"`` are sharded along schedule hash chains so prefix
reuse survives the process boundary, and the workers' final states and
expectation values are merged back into this engine's caches on return.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.gates import Gate
from ..exceptions import EngineError
from ..operators.pauli import MeasurementGroup, PauliSum
from ..simulators.density_matrix import DensityMatrix
from ..simulators.noise_model import NoiseModel
from ..simulators.noisy_simulator import (
    EvolutionCursor,
    NoisySimulator,
    ScheduleContext,
    state_measured_probabilities,
)
from ..simulators.ptm import PauliVectorState, PTMEvolver, unitary_ptm
from ..simulators.readout import (
    apply_readout_error,
    counts_to_probabilities,
    probabilities_to_counts,
)
from ..transpiler.scheduling import ScheduledCircuit
from .base import EngineResult, ExecutionEngine, ExpectationData
from .fingerprint import (
    device_fingerprint,
    mitigator_fingerprint,
    observable_fingerprint,
    schedule_hash_chain,
)
from .segments import SegmentCache, SegmentRuntime, schedule_segment_keys


class _ByteBudgetStore:
    """LRU store evicting by total byte footprint rather than entry count.

    Small (few-qubit) states keep near-perfect coverage while 10-qubit
    problems degrade gracefully instead of pinning gigabytes.  A budget of 0
    stores nothing; values larger than the whole budget are not stored.
    """

    def __init__(self, budget_bytes: int):
        self.budget_bytes = int(budget_bytes)
        self._entries: "OrderedDict[str, Tuple[object, int]]" = OrderedDict()
        self._bytes = 0

    def get(self, key: str):
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        return entry[0]

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def put(self, key: str, value, nbytes: int) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        if nbytes > self.budget_bytes:
            return
        self._entries[key] = (value, nbytes)
        self._bytes += nbytes
        while self._bytes > self.budget_bytes and self._entries:
            _, (_, evicted_bytes) = self._entries.popitem(last=False)
            self._bytes -= evicted_bytes

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0


class _LRUCache:
    """A small thread-unsafe LRU dict (callers hold the engine lock)."""

    def __init__(self, max_entries: int):
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict" = OrderedDict()

    def get(self, key):
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


class NoisyDensityMatrixEngine(ExecutionEngine):
    """Cached, prefix-reusing noisy execution of scheduled circuits."""

    name = "noisy_density_matrix"

    #: This engine consumes device-bound schedules; an ingested program
    #: resolves to its schedule (transpiling an ingested logical circuit
    #: against the noise model's device) — see ``ExecutionEngine._resolve_program``.
    program_input = "scheduled"

    def __init__(
        self,
        noise_model: NoiseModel,
        seed: Optional[int] = None,
        result_cache_bytes: int = 256 << 20,
        expectation_cache_entries: int = 2048,
        snapshot_budget_bytes: int = 64 << 20,
        enable_prefix_reuse: bool = True,
        expectations_only_ipc: bool = False,
        enable_canonicalisation: bool = True,
        kernel: Optional[str] = None,
        enable_segment_reuse: bool = True,
        segment_cache_entries: int = 65536,
    ):
        super().__init__(seed=seed)
        self.noise_model = noise_model
        #: Simulation kernel: ``"dense"`` (complex density matrix, one
        #: contraction per operator) or ``"ptm"`` (real Pauli-transfer-matrix
        #: vectors with fused channel kernels and batched measurement — see
        #: ``docs/ptm.md``).  ``None`` reads ``REPRO_ENGINE_KERNEL`` from the
        #: environment (default ``"dense"``).  The two kernels agree to float
        #: tolerance (<= 1e-9 on energies/probabilities), and each is
        #: bit-reproducible with itself across every execution tier; the
        #: kernel therefore salts every cache key via :meth:`_noise_key`.
        if kernel is None:
            kernel = os.environ.get("REPRO_ENGINE_KERNEL", "dense")
        if kernel not in ("dense", "ptm"):
            raise EngineError(f"unknown simulation kernel {kernel!r} (use 'dense' or 'ptm')")
        self.kernel = kernel
        self.enable_prefix_reuse = enable_prefix_reuse
        #: Segment-level reuse (see ``docs/segment_reuse.md`` and
        #: :mod:`repro.engine.segments`): each stride-grid segment's compiled
        #: operator stream is cached by content hash and replayed when *any*
        #: schedule — whatever its prefix — contains the same segment.
        #: Replay applies the identical operator arrays in the identical
        #: order, so results are bit-identical with this on or off; it is
        #: therefore not part of :meth:`_noise_key`.
        self.enable_segment_reuse = bool(enable_segment_reuse)
        self.segment_cache_entries = int(segment_cache_entries)
        #: Process (and key) schedules in the commutation-aware canonical
        #: order (see the module docstring and ``docs/architecture.md``).
        #: Toggling this changes the processing order, so it salts every
        #: cache key via :meth:`_noise_key`.
        self.enable_canonicalisation = bool(enable_canonicalisation)
        self.result_cache_bytes = int(result_cache_bytes)
        self.expectation_cache_entries = int(expectation_cache_entries)
        self.snapshot_budget_bytes = int(snapshot_budget_bytes)
        #: Process-tier IPC mode for expectation batches: with this set,
        #: workers ship back only expectation records and keep the full
        #: density-matrix states local, cutting per-item IPC from O(4^n)
        #: to O(1) bytes on expectation-only sweeps.  The parent's result
        #: cache then stays cold for those schedules (a later ``run`` of the
        #: same schedule re-simulates); values are unchanged either way.
        self.expectations_only_ipc = bool(expectations_only_ipc)
        self._simulator = NoisySimulator(
            noise_model, canonical_order=self.enable_canonicalisation
        )
        #: The evolution backend behind the cursor API (`begin`/`advance`):
        #: the dense simulator itself, or the PTM evolver wrapping an
        #: identically-configured one (both walk the same op stream, so chains
        #: and contexts are kernel-independent).
        if self.kernel == "ptm":
            self._backend = PTMEvolver(
                noise_model, canonical_order=self.enable_canonicalisation
            )
        else:
            self._backend = self._simulator
        self._results = _ByteBudgetStore(result_cache_bytes)
        self._expectations = _LRUCache(expectation_cache_entries)
        self._snapshots = _ByteBudgetStore(snapshot_budget_bytes)
        self._segments = SegmentCache(self.segment_cache_entries)
        #: Per-object memo of prepared ``(context, chain)`` pairs: one
        #: schedule object is hashed several times per execution (scheduler
        #: conflict detection, shard planning, the expectation cache-first
        #: path), and re-preparing it each time is pure overhead.  Entries
        #: are keyed by ``id`` with a weak reference for eviction (schedules
        #: are treated as immutable, like device models) and salted with the
        #: noise key so post-construction flag toggles recompute.
        self._chain_memo: Dict[int, Tuple] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Core execution
    # ------------------------------------------------------------------
    def _noise_key(self) -> str:
        """Execution-context salt mixed into every cache key.

        Recomputed per lookup so that post-construction toggles of the noise
        model's flags / time offset (a supported usage) miss the caches
        instead of silently serving pre-toggle states.
        """
        noise = self.noise_model
        return device_fingerprint(noise.device) + repr(
            (
                noise.include_coherent_errors,
                noise.include_crosstalk,
                noise.include_readout_error,
                noise.include_gate_error,
                noise.include_relaxation,
                noise.time_offset_ns,
                # The processing order is part of what a cached state is a
                # function of: canonical and time-sorted execution agree only
                # mathematically, not bit for bit.
                self.enable_canonicalisation,
                # Likewise the kernel: dense and PTM states agree to float
                # tolerance, not bit for bit — and are different array types.
                self.kernel,
            )
        )

    def _chain(self, scheduled: ScheduledCircuit) -> Tuple[ScheduleContext, List[str]]:
        noise_key = self._noise_key()
        key = id(scheduled)
        entry = self._chain_memo.get(key)
        # The liveness check (`entry[0]() is scheduled`) guards against id
        # reuse racing the weakref eviction callback.
        if entry is not None and entry[0]() is scheduled and entry[1] == noise_key:
            return entry[2], entry[3]
        context = self._simulator.prepare(scheduled)
        chain = schedule_hash_chain(
            scheduled, context.ordered, context.initial_last_time, salt=noise_key
        )
        try:
            reference = weakref.ref(
                scheduled, lambda _, key=key, memo=self._chain_memo: memo.pop(key, None)
            )
        except TypeError:  # exotic un-weakref-able stand-ins
            return context, chain
        # The trailing single-slot list lazily memoises the schedule's
        # segment-key walk (see _segment_keys) alongside the chain.
        self._chain_memo[key] = (reference, noise_key, context, chain, [None])
        return context, chain

    def _segment_keys(
        self, scheduled: ScheduledCircuit, context: Optional[ScheduleContext] = None
    ) -> Optional[List[str]]:
        """The schedule's memoised segment key list, or ``None`` when segment
        reuse is disabled.

        One key per stride-grid segment of the canonical order (stride = the
        backend's fusion stride; 1 on the dense kernel), salted with the
        noise key — see :func:`repro.engine.segments.schedule_segment_keys`.
        Memoised in the chain memo (same lifetime and invalidation as the
        hash chain); a racing duplicate computation is benign because the
        walk is a pure function of its inputs.
        """
        if not self.enable_segment_reuse:
            return None
        noise_key = self._noise_key()
        stride = getattr(self._backend, "fusion_stride", 1)

        def _live(entry) -> bool:
            return entry is not None and entry[0]() is scheduled and entry[1] == noise_key

        entry = self._chain_memo.get(id(scheduled))
        if not _live(entry):
            context = self._chain(scheduled)[0]
            entry = self._chain_memo.get(id(scheduled))
            if not _live(entry):  # exotic un-weakref-able stand-ins
                return schedule_segment_keys(
                    self._simulator, scheduled, context, salt=noise_key, stride=stride
                )
        holder = entry[4]
        if holder[0] is None:
            holder[0] = schedule_segment_keys(
                self._simulator, scheduled, entry[2], salt=noise_key, stride=stride
            )
        return holder[0]

    def _segment_runtime(
        self, scheduled: ScheduledCircuit, context: ScheduleContext
    ) -> Optional[SegmentRuntime]:
        if not self.enable_segment_reuse:
            return None
        return SegmentRuntime(self._segments, self._segment_keys(scheduled, context))

    def _checkpoint_interval(self, num_instructions: int, state_bytes: int) -> int:
        """Checkpoint spacing such that one schedule's snapshots stay within
        a fraction of the byte budget (small states checkpoint every step)."""
        if num_instructions == 0 or state_bytes <= 0:
            interval = 1
        else:
            per_run_budget = max(self._snapshots.budget_bytes // 4, state_bytes)
            interval = max(
                1, int(np.ceil(num_instructions * state_bytes / per_run_budget))
            )
        # The PTM kernel's fused runs never cross instruction indices that are
        # multiples of its fusion stride; aligning the checkpoint interval to
        # the stride keeps every snapshot/resume depth on that grid, so warm
        # resumes replay the identical composed-kernel sequence a cold run
        # applies (bit-identical, not merely close).
        stride = getattr(self._backend, "fusion_stride", 1)
        if stride > 1:
            interval = ((interval + stride - 1) // stride) * stride
        return interval

    def _state_for(
        self, scheduled: ScheduledCircuit, prepared=None
    ) -> Tuple[DensityMatrix, str, bool]:
        """The (cached) end-of-schedule density matrix and its fingerprint.

        The returned state is shared with the cache — treat it as read-only.
        Only cache and snapshot access is serialized; the simulation itself
        runs outside the lock so thread fan-out overlaps real work.  Two
        threads racing on the same schedule would both simulate it and store
        bit-identical states, so correctness never depends on the race.

        ``prepared`` optionally carries a precomputed ``(context, chain)``
        pair so callers that already hashed the schedule (the expectation
        cache-first path) skip the second preparation pass.
        """
        context, chain = prepared if prepared is not None else self._chain(scheduled)
        fingerprint = chain[-1]
        with self._lock:
            self.stats.executions += 1
            cached = self._results.get(fingerprint)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached, fingerprint, True
            self.stats.cache_misses += 1

            total = len(context.ordered)
            cursor: Optional[EvolutionCursor] = None
            if self.enable_prefix_reuse:
                for depth in range(total, 0, -1):
                    snapshot = self._snapshots.get(chain[depth])
                    if snapshot is not None:
                        cursor = snapshot.copy()
                        self.stats.prefix_resumes += 1
                        self.stats.instructions_reused += depth
                        break
            if cursor is None:
                cursor = self._backend.begin(scheduled, context)
            start_depth = cursor.next_index
            self.stats.instructions_simulated += total - start_depth

        segments = self._segment_runtime(scheduled, context)
        if self.enable_prefix_reuse and total > start_depth:
            interval = self._checkpoint_interval(total, int(cursor.nbytes))
            depth = start_depth
            while depth < total:
                next_depth = min(total, depth + interval)
                self._backend.advance(
                    scheduled, cursor, context, stop_index=next_depth, segments=segments
                )
                depth = next_depth
                if depth < total:
                    with self._lock:
                        wanted = chain[depth] not in self._snapshots
                    if wanted:
                        # Copy outside the lock — an O(4^n) state copy would
                        # otherwise serialize every thread-tier worker.  A
                        # racing duplicate put is harmless (put is a no-op on
                        # existing keys) and both copies are bit-identical.
                        snapshot = cursor.copy()
                        with self._lock:
                            self._snapshots.put(chain[depth], snapshot, snapshot.nbytes)
        else:
            self._backend.advance(scheduled, cursor, context, segments=segments)
        with self._lock:
            if self.kernel == "ptm":
                # PTM cursors count their own fused-kernel work since creation
                # (snapshot copies restart from zero, so resumes never
                # double-count a donor's kernels).
                self.stats.ptm_matmuls += cursor.matmuls
                self.stats.instructions_fused += cursor.fused
            # Instructions replayed from the segment cache skipped the
            # schedule walk (and, on the PTM kernel, the kernel compositions)
            # — account them as reused, like prefix-resumed instructions.
            self.stats.segment_hits += cursor.segment_hits
            self.stats.segment_misses += cursor.segment_misses
            if cursor.segment_instructions:
                self.stats.instructions_reused += cursor.segment_instructions
                self.stats.instructions_simulated -= cursor.segment_instructions
            self._results.put(fingerprint, cursor.state, int(cursor.state.data.nbytes))
        return cursor.state, fingerprint, False

    def density_matrix(self, scheduled: ScheduledCircuit) -> DensityMatrix:
        """The pre-measurement density matrix (shared with the cache — do not
        mutate; :meth:`run` returns a private copy instead).

        On the PTM kernel the cached state is a
        :class:`~repro.simulators.ptm.PauliVectorState`; this method converts
        a private copy back to a dense :class:`DensityMatrix` (exact basis
        change, float tolerance against the dense kernel)."""
        state, _, _ = self._state_for(self._resolve_program(scheduled))
        if isinstance(state, PauliVectorState):
            return state.to_density_matrix()
        return state

    def measurement_state(self, scheduled: ScheduledCircuit):
        """The kernel-native pre-measurement state (shared with the cache — do
        not mutate).

        Unlike :meth:`density_matrix` this never converts: the dense kernel
        returns a :class:`DensityMatrix`, the PTM kernel a
        :class:`~repro.simulators.ptm.PauliVectorState`.  Measuring through
        this state (:func:`measure_pauli_sum` accepts both) reproduces the
        engine's own expectation values bit for bit on either kernel; a
        dense round-trip would instead introduce float-level drift on the
        PTM kernel."""
        state, _, _ = self._state_for(self._resolve_program(scheduled))
        return state

    def run(self, scheduled: ScheduledCircuit) -> EngineResult:
        """Execute one scheduled circuit.

        ``result.state`` is a private copy of the kernel's state object — a
        :class:`DensityMatrix` on the dense kernel, a
        :class:`~repro.simulators.ptm.PauliVectorState` on the PTM kernel
        (convert via ``state.to_density_matrix()`` if needed); when the
        schedule contains measurements, ``result.probabilities`` holds the
        readout-error-distorted outcome distribution over classical bits.
        """
        scheduled = self._resolve_program(scheduled)
        state, fingerprint, from_cache = self._state_for(scheduled)
        probabilities = None
        clbit_order = None
        if scheduled.measured_positions():
            probabilities, clbit_order = state_measured_probabilities(
                state, scheduled, self.noise_model
            )
        return EngineResult(
            fingerprint=fingerprint,
            engine=self.name,
            state=state.copy(),
            probabilities=probabilities,
            clbit_order=clbit_order,
            from_cache=from_cache,
        )

    def measured_probabilities(self, scheduled: ScheduledCircuit) -> Tuple[np.ndarray, List[int]]:
        """Cached equivalent of :meth:`NoisySimulator.measured_probabilities`."""
        scheduled = self._resolve_program(scheduled)
        state, _, _ = self._state_for(scheduled)
        return state_measured_probabilities(state, scheduled, self.noise_model)

    def counts(
        self,
        scheduled: ScheduledCircuit,
        shots: int = 4096,
        seed: Optional[int] = None,
        exact: bool = False,
    ) -> Dict[str, int]:
        """Sampled (or exact expected) counts under the engine seeding contract."""
        scheduled = self._resolve_program(scheduled)
        state, fingerprint, _ = self._state_for(scheduled)
        probabilities, _ = state_measured_probabilities(state, scheduled, self.noise_model)
        if exact:
            return probabilities_to_counts(probabilities, shots, exact=True)
        rng = self._sampling_rng(seed, "counts", fingerprint, str(shots))
        return probabilities_to_counts(probabilities, shots, rng=rng)

    # ------------------------------------------------------------------
    # Expectation values
    # ------------------------------------------------------------------
    def expectation(
        self,
        scheduled: ScheduledCircuit,
        observable: PauliSum,
        shots: Optional[int] = None,
        mitigator=None,
        seed: Optional[int] = None,
    ) -> float:
        """Estimate ``<observable>`` for one scheduled circuit."""
        return self.expectation_full(scheduled, observable, shots=shots, mitigator=mitigator, seed=seed).value

    def _expectation_key(
        self, fingerprint: str, observable: PauliSum, shots, mitigator, seed
    ) -> Tuple:
        """The expectation-cache key (identical parent- and worker-side)."""
        return (
            fingerprint,
            observable_fingerprint(observable),
            shots,
            mitigator_fingerprint(mitigator),
            seed,
        )

    def _expectation_cacheable(self, shots, seed) -> bool:
        """A sampled value is only reproducible (and therefore cacheable) when
        some seed pins the randomness; an unseeded engine draws fresh entropy
        per call instead."""
        return shots is None or seed is not None or self.seed is not None

    def expectation_full(
        self,
        scheduled: ScheduledCircuit,
        observable: PauliSum,
        shots: Optional[int] = None,
        mitigator=None,
        seed: Optional[int] = None,
    ) -> ExpectationData:
        """``<observable>`` plus per-group diagnostics, content-cached.

        The expectation cache is consulted *before* the state is computed (the
        cache key only needs the schedule's content fingerprint), so a cached
        value never costs a simulation — even when the corresponding state was
        evicted or, in the process tier's expectations-only IPC mode, never
        shipped to this engine at all.
        """
        scheduled = self._resolve_program(scheduled)
        prepared = self._chain(scheduled)
        fingerprint = prepared[1][-1]
        key = self._expectation_key(fingerprint, observable, shots, mitigator, seed)
        cacheable = self._expectation_cacheable(shots, seed)
        if cacheable:
            with self._lock:
                self.stats.expectation_calls += 1
                cached = self._expectations.get(key)
            if cached is not None:
                with self._lock:
                    self.stats.expectation_cache_hits += 1
                return cached
        else:
            with self._lock:
                self.stats.expectation_calls += 1
        state, fingerprint, _ = self._state_for(scheduled, prepared=prepared)
        rng = None
        if shots is not None:
            rng = self._sampling_rng(seed, "expectation", *map(str, key[:4]))
        data = measure_pauli_sum(
            state, scheduled, observable, self.noise_model,
            shots=shots, mitigator=mitigator, rng=rng,
        )
        if cacheable:
            with self._lock:
                self._expectations.put(key, data)
        return data

    def expectation_batch(
        self,
        circuits: Sequence[ScheduledCircuit],
        observable: PauliSum,
        shots: Optional[int] = None,
        mitigator=None,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> List[float]:
        """Batched ``<observable>``; equals element-wise :meth:`expectation`.

        ``parallelism`` / ``max_workers`` select the execution tier exactly as
        on :meth:`~repro.engine.base.ExecutionEngine.run_batch`.  ``seed``
        overrides the content-derived sampling seed for every item, exactly
        like passing it to element-wise :meth:`expectation` calls.
        """
        kwargs = {"observable": observable, "shots": shots, "mitigator": mitigator, "seed": seed}
        return self._dispatch_batch("expectation", circuits, kwargs, max_workers, parallelism)

    def expectation_batch_full(
        self,
        circuits: Sequence[ScheduledCircuit],
        observable: PauliSum,
        shots: Optional[int] = None,
        mitigator=None,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> List[ExpectationData]:
        """Batched :meth:`expectation_full` (value plus per-group diagnostics).

        This is the path :class:`~repro.vqe.expectation.ExpectationEstimator`
        batches through; it honours the same tier and ``seed`` knobs as
        :meth:`expectation_batch`.
        """
        kwargs = {"observable": observable, "shots": shots, "mitigator": mitigator, "seed": seed}
        return self._dispatch_batch("expectation_full", circuits, kwargs, max_workers, parallelism)

    # ------------------------------------------------------------------
    # Asynchronous submission (see repro.engine.futures)
    # ------------------------------------------------------------------
    def submit_expectation_batch(
        self,
        circuits: Sequence[ScheduledCircuit],
        observable: PauliSum,
        shots: Optional[int] = None,
        mitigator=None,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
        submitter=None,
        priority: int = 0,
        seed: Optional[int] = None,
    ):
        """Asynchronous :meth:`expectation_batch` (futures resolving to floats).

        ``submitter`` / ``priority`` feed the engine's slot scheduler exactly
        as on :meth:`~repro.engine.base.ExecutionEngine.submit_batch`; ``seed``
        behaves as on the blocking :meth:`expectation_batch`.
        """
        kwargs = {"observable": observable, "shots": shots, "mitigator": mitigator, "seed": seed}
        return self._submit_job(
            "expectation", circuits, kwargs, max_workers, parallelism, submitter, priority
        )

    def submit_expectation_batch_full(
        self,
        circuits: Sequence[ScheduledCircuit],
        observable: PauliSum,
        shots: Optional[int] = None,
        mitigator=None,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
        submitter=None,
        priority: int = 0,
        seed: Optional[int] = None,
    ):
        """Asynchronous :meth:`expectation_batch_full` (futures resolving to
        :class:`~repro.engine.base.ExpectationData`); the path
        :meth:`ExpectationEstimator.submit_batch
        <repro.vqe.expectation.ExpectationEstimator.submit_batch>` and the
        pipelined window tuner route through.  ``seed`` behaves as on the
        blocking :meth:`expectation_batch`."""
        kwargs = {"observable": observable, "shots": shots, "mitigator": mitigator, "seed": seed}
        return self._submit_job(
            "expectation_full", circuits, kwargs, max_workers, parallelism, submitter, priority
        )

    # ------------------------------------------------------------------
    # Whole-batch PTM fast path (serial tier)
    # ------------------------------------------------------------------
    def _batch_fast_path(self, kind: str, items, kwargs):
        """Serial-tier expectation batches on the PTM kernel run whole-batch.

        Per-item schedule evolution stays on the fused-kernel path (each
        item's op stream is its own), but the measurement stage — identical
        basis rotations, marginalisation and Walsh-Hadamard transform for
        every candidate of a sweep — executes once on a stacked
        ``(batch, 4**n)`` Pauli-vector array.  Batched kernels are
        elementwise along the batch axis, so every number (and every cache
        and stats side effect) is identical to the per-item path.
        """
        if self.kernel != "ptm" or kind not in ("expectation", "expectation_full"):
            return None
        if len(items) < 2:
            return None
        data = self._expectation_batch_ptm(
            items, kwargs["observable"], kwargs["shots"], kwargs.get("mitigator"),
            kwargs.get("seed"),
        )
        if data is None:
            return None
        if kind == "expectation":
            return [entry.value for entry in data]
        return data

    def _expectation_batch_ptm(
        self,
        items: Sequence[ScheduledCircuit],
        observable: PauliSum,
        shots: Optional[int],
        mitigator,
        seed: Optional[int] = None,
    ) -> Optional[List[ExpectationData]]:
        num_logical = observable.num_qubits
        prepared = []
        mappings = []
        for item in items:
            measured = item.measured_positions()
            clbit_to_position = {clbit: pos for pos, clbit in measured}
            if any(q not in clbit_to_position for q in range(num_logical)):
                # Let the per-item path raise its usual VQEError.
                return None
            prepared.append(self._chain(item))
            mappings.append(clbit_to_position)

        cacheable = self._expectation_cacheable(shots, seed)
        keys = [
            self._expectation_key(prep[1][-1], observable, shots, mitigator, seed)
            for prep in prepared
        ]
        results: List[Optional[ExpectationData]] = [None] * len(items)
        pending: List[int] = []
        duplicates: List[int] = []
        first_for_key: Dict[Tuple, int] = {}
        for index, key in enumerate(keys):
            if cacheable:
                with self._lock:
                    self.stats.expectation_calls += 1
                    cached = self._expectations.get(key)
                if cached is not None:
                    with self._lock:
                        self.stats.expectation_cache_hits += 1
                    results[index] = cached
                    continue
                if key in first_for_key:
                    # Within-batch repeat: the per-item path would hit the
                    # cache the first computation fills.
                    duplicates.append(index)
                    continue
                first_for_key[key] = index
            else:
                # Unseeded sampling: every repeat draws fresh entropy, so
                # nothing dedupes.
                with self._lock:
                    self.stats.expectation_calls += 1
            pending.append(index)

        if pending:
            self._measure_pending_batched(
                items, prepared, mappings, keys, pending, results,
                observable, shots, mitigator, cacheable, seed,
            )
        for index in duplicates:
            with self._lock:
                self.stats.expectation_cache_hits += 1
            results[index] = results[first_for_key[keys[index]]]
        return results

    def _measure_pending_batched(
        self, items, prepared, mappings, keys, pending, results,
        observable: PauliSum, shots, mitigator, cacheable: bool,
        seed: Optional[int] = None,
    ) -> None:
        """Compute the not-yet-cached rows of an expectation batch, batching
        the measurement stage across rows with equal (size, positions)."""
        states: Dict[int, PauliVectorState] = {}
        for index in pending:
            state, _, _ = self._state_for(items[index], prepared=prepared[index])
            states[index] = state
        num_logical = observable.num_qubits
        buckets: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        for index in pending:
            positions = tuple(mappings[index][q] for q in range(num_logical))
            buckets.setdefault((states[index].num_qubits, positions), []).append(index)
        rngs = {}
        if shots is not None:
            for index in pending:
                rngs[index] = self._sampling_rng(
                    seed, "expectation", *map(str, keys[index][:4])
                )
        h_matrix = Gate("h", 1).matrix()
        y_matrix = h_matrix @ Gate("sdg", 1).matrix()
        totals = {index: observable.identity_coefficient() for index in pending}
        group_values = {index: [] for index in pending}
        distributions = {index: [] for index in pending}
        width = 0
        for group in observable.group_commuting():
            for (_, positions), bucket in buckets.items():
                stacked = PauliVectorState.stack([states[i] for i in bucket])
                width = max(width, stacked.batch)
                for logical in range(num_logical):
                    factor = group.basis[logical]
                    if factor == "X":
                        stacked.apply_ptm(unitary_ptm(h_matrix), (positions[logical],))
                    elif factor == "Y":
                        stacked.apply_ptm(unitary_ptm(y_matrix), (positions[logical],))
                marginals = stacked.batch_marginal_probabilities(positions)
                for row, index in enumerate(bucket):
                    probabilities = marginals[row]
                    confusions = [
                        self.noise_model.readout_confusion(items[index].physical_qubit(pos))
                        for pos in positions
                    ]
                    probabilities = apply_readout_error(probabilities, confusions)
                    if shots is not None:
                        counts = probabilities_to_counts(probabilities, shots, rng=rngs[index])
                        probabilities = counts_to_probabilities(counts, num_bits=num_logical)
                    if mitigator is not None:
                        probabilities = mitigator.mitigate_probabilities(probabilities)
                    value = distribution_expectation(probabilities, group, num_logical)
                    totals[index] += value
                    group_values[index].append(value)
                    distributions[index].append(probabilities)
        for index in pending:
            data = ExpectationData(
                value=float(totals[index]),
                group_values=group_values[index],
                distributions=distributions[index],
            )
            results[index] = data
            if cacheable:
                with self._lock:
                    self._expectations.put(keys[index], data)
        with self._lock:
            self.stats.batch_width = max(self.stats.batch_width, width)

    # ------------------------------------------------------------------
    # Process-tier worker protocol (see repro.engine.parallel)
    # ------------------------------------------------------------------
    def _serial_call(self, kind: str, item, kwargs):
        if kind == "run":
            return self.run(item)
        if kind == "expectation":
            return self.expectation(
                item, kwargs["observable"], shots=kwargs["shots"],
                mitigator=kwargs.get("mitigator"), seed=kwargs.get("seed"),
            )
        if kind == "expectation_full":
            return self.expectation_full(
                item, kwargs["observable"], shots=kwargs["shots"],
                mitigator=kwargs.get("mitigator"), seed=kwargs.get("seed"),
            )
        return super()._serial_call(kind, item, kwargs)

    def _process_spec(self):
        from .parallel import EngineWorkerSpec

        return EngineWorkerSpec(
            engine_class=type(self),
            kwargs={
                "noise_model": self.noise_model,
                "seed": self.seed,
                "result_cache_bytes": self.result_cache_bytes,
                "expectation_cache_entries": self.expectation_cache_entries,
                "snapshot_budget_bytes": self.snapshot_budget_bytes,
                "enable_prefix_reuse": self.enable_prefix_reuse,
                "expectations_only_ipc": self.expectations_only_ipc,
                "enable_canonicalisation": self.enable_canonicalisation,
                # Explicit, not env-derived: workers must run the kernel the
                # parent resolved, whatever their environment says.
                "kernel": self.kernel,
                "enable_segment_reuse": self.enable_segment_reuse,
                "segment_cache_entries": self.segment_cache_entries,
            },
            # The noise key already digests the device calibration and every
            # noise-model flag, so post-construction toggles retire the pool.
            # The IPC mode is part of the key too: workers decide what they
            # export, so a toggled parent needs freshly-configured workers.
            # Segment reuse never changes values (replay is bit-identical)
            # but does change per-worker counters, so it keys the pool too.
            cache_key=(
                f"{self.name}:{self._noise_key()}:{self.seed}:"
                f"{self.enable_prefix_reuse}:{self.expectations_only_ipc}:"
                f"{self.enable_segment_reuse}"
            ),
        )

    def _shard_chain(self, kind: str, scheduled: ScheduledCircuit) -> Sequence[str]:
        return self._chain(scheduled)[1]

    def _shard_segment_keys(self, kind: str, scheduled: ScheduledCircuit):
        """Segment keys for process-tier shard planning (see
        :func:`repro.engine.parallel.plan_shards`): items whose segments
        already sit in a worker's cache cost that worker almost nothing, so
        the planner weighs each item by its *novel* segments."""
        return self._segment_keys(scheduled)

    def _begin_shard(self) -> None:
        """Worker-side hook invoked by :func:`repro.engine.parallel._execute_shard`
        at the start of every shard.  Resets the reuse caches (prefix
        snapshots and segment records) so a shard's stats delta is a pure
        function of shard content: persistent worker processes would
        otherwise carry reuse state from earlier shards, and because the pool
        does not assign shards to workers deterministically, counters like
        the segment hit/miss split or a sibling shard's prefix resume would
        depend on placement luck.  :func:`~repro.engine.parallel.plan_shards`
        already groups prefix- and segment-sharing items into the *same*
        shard, so within-shard reuse — the planned kind — is untouched; only
        the accidental cross-shard warmth goes.  Result and expectation
        caches stay: their entries are complete answers keyed by full
        content, and the planner never splits content-identical items."""
        with self._lock:
            self._snapshots.clear()
            self._segments.clear()

    def _worker_execute(self, kind: str, item, kwargs):
        from .parallel import CacheRecord

        result = self._serial_call(kind, item, kwargs)
        # Export the end-of-schedule state from the worker's own result cache
        # (a distinct object from anything in `result`, so the parent's cache
        # entry is never aliased with what the caller receives).  Read the
        # store directly — a second `_state_for` would distort the stats
        # delta with a synthetic cache hit.  In expectations-only IPC mode the
        # state stays worker-local for expectation kinds: the scalar record
        # below is all the parent needs, and skipping the O(4^n) state ships
        # is the whole point of the mode.
        fingerprint = self._chain(item)[1][-1]
        records = []
        expectation_kind = kind in ("expectation", "expectation_full")
        if not (self.expectations_only_ipc and expectation_kind):
            with self._lock:
                state = self._results.get(fingerprint)
            if state is not None:
                records.append(CacheRecord("result", fingerprint, state, int(state.data.nbytes)))
        if expectation_kind and self._expectation_cacheable(kwargs["shots"], kwargs.get("seed")):
            key = self._expectation_key(
                fingerprint, kwargs["observable"], kwargs["shots"],
                kwargs.get("mitigator"), kwargs.get("seed"),
            )
            with self._lock:
                data = self._expectations.get(key)
            if data is not None:
                records.append(CacheRecord("expectation", key, data))
        return result, records

    def _is_locally_cached(self, kind: str, item, kwargs, chain) -> bool:
        fingerprint = chain[-1]
        with self._lock:
            if kind == "run":
                return fingerprint in self._results
            if kind in ("expectation", "expectation_full"):
                if not self._expectation_cacheable(kwargs["shots"], kwargs.get("seed")):
                    return False
                key = self._expectation_key(
                    fingerprint, kwargs["observable"], kwargs["shots"],
                    kwargs.get("mitigator"), kwargs.get("seed"),
                )
                return self._expectations.get(key) is not None
        return False

    def _absorb_records(self, records) -> None:
        with self._lock:
            for record in records:
                if record.kind == "result":
                    if record.key not in self._results:
                        self._results.put(record.key, record.value, record.nbytes)
                elif record.kind == "expectation":
                    self._expectations.put(record.key, record.value)

    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        with self._lock:
            self._results.clear()
            self._expectations.clear()
            self._snapshots.clear()
            self._segments.clear()


# ----------------------------------------------------------------------------
# Measurement-group expectation math (shared with ExpectationEstimator)
# ----------------------------------------------------------------------------

def measure_pauli_sum(
    state: DensityMatrix,
    scheduled: ScheduledCircuit,
    hamiltonian: PauliSum,
    noise_model: NoiseModel,
    shots: Optional[int] = None,
    mitigator=None,
    rng: Optional[np.random.Generator] = None,
) -> ExpectationData:
    """Measure a Pauli-sum observable on a pre-measurement density matrix.

    Mirrors how a machine measures a VQE objective: for every qubit-wise
    commuting group, the appropriate basis rotations are applied to a copy of
    the state, the Z-basis distribution is extracted, readout error distorts
    it, (optional) shot sampling adds noise, (optional) measurement error
    mitigation un-distorts it, and the weighted Pauli expectations are summed.
    """
    from ..exceptions import VQEError

    measured = scheduled.measured_positions()
    if not measured:
        raise VQEError("the scheduled circuit must measure every Hamiltonian qubit")
    clbit_to_position = {clbit: pos for pos, clbit in measured}
    for logical in range(hamiltonian.num_qubits):
        if logical not in clbit_to_position:
            raise VQEError(f"Hamiltonian qubit {logical} is never measured")

    groups = hamiltonian.group_commuting()
    total = hamiltonian.identity_coefficient()
    group_values: List[float] = []
    distributions: List[np.ndarray] = []
    for group in groups:
        value, distribution = _measure_group(
            state, scheduled, group, clbit_to_position, hamiltonian.num_qubits,
            noise_model, shots, mitigator, rng,
        )
        group_values.append(value)
        distributions.append(distribution)
        total += value
    return ExpectationData(value=float(total), group_values=group_values, distributions=distributions)


def _measure_group(
    state: DensityMatrix,
    scheduled: ScheduledCircuit,
    group: MeasurementGroup,
    clbit_to_position: Dict[int, int],
    num_logical: int,
    noise_model: NoiseModel,
    shots: Optional[int],
    mitigator,
    rng: Optional[np.random.Generator],
) -> Tuple[float, np.ndarray]:
    rotated = state.copy()
    # Basis change: X -> H, Y -> H . Sdg (so that Z-measurement reads the
    # desired Pauli), applied on the circuit position carrying each logical qubit.
    h_matrix = Gate("h", 1).matrix()
    for logical in range(num_logical):
        factor = group.basis[logical]
        position = clbit_to_position[logical]
        if factor == "X":
            rotated.apply_unitary(h_matrix, (position,))
        elif factor == "Y":
            rotated.apply_unitary(h_matrix @ Gate("sdg", 1).matrix(), (position,))
    positions = [clbit_to_position[logical] for logical in range(num_logical)]
    probabilities = rotated.marginal_probabilities(positions)
    confusions = [
        noise_model.readout_confusion(scheduled.physical_qubit(pos)) for pos in positions
    ]
    probabilities = apply_readout_error(probabilities, confusions)
    if shots is not None:
        counts = probabilities_to_counts(probabilities, shots, rng=rng)
        probabilities = counts_to_probabilities(counts, num_bits=num_logical)
    if mitigator is not None:
        probabilities = mitigator.mitigate_probabilities(probabilities)
    value = distribution_expectation(probabilities, group, num_logical)
    return value, probabilities


def distribution_expectation(
    probabilities: np.ndarray, group: MeasurementGroup, num_bits: int
) -> float:
    """Weighted sum of Pauli expectations computed from one outcome distribution."""
    value = 0.0
    for pauli, coeff in group.terms:
        expectation = 0.0
        for index, probability in enumerate(probabilities):
            if probability == 0.0:
                continue
            bitstring = format(index, f"0{num_bits}b")
            expectation += probability * pauli.expectation_sign(bitstring)
        value += coeff * expectation
    return value
