"""The :class:`ExecutionEngine` abstraction — one backend API for every run.

Every part of the reproduction that executes circuits (expectation
estimation, VQE objectives, the independent-window tuner, the runtime session
model, the benchmark harness) talks to a single engine interface instead of
instantiating simulators ad hoc:

* :meth:`ExecutionEngine.run` — execute one circuit, returning an
  :class:`EngineResult`,
* :meth:`ExecutionEngine.run_batch` — execute many circuits, order-stably and
  with shared caching (optionally fanned out over worker threads),
* :meth:`ExecutionEngine.expectation` / :meth:`expectation_batch` — estimate
  ``<H>`` of a Pauli-sum observable for one or many circuits.

Three concrete engines cover the reproduction's backends:

* :class:`~repro.engine.statevector_engine.StatevectorEngine` — ideal,
  noise-free execution of logical circuits,
* :class:`~repro.engine.density_engine.NoisyDensityMatrixEngine` —
  schedule-aware noisy density-matrix execution of scheduled circuits, with a
  prefix-reuse fast path for families of near-identical schedules,
* :class:`~repro.engine.fake_device_engine.FakeDeviceEngine` — a fake IBM
  machine: transpiles logical circuits and executes them noisily, caching the
  transpilation per circuit content.

Caching contract
----------------
Results are cached by *content fingerprint* (see
:mod:`repro.engine.fingerprint`), never by object identity, so identical
circuits are never simulated twice — no matter which frontend submitted them.
Cache hits return the same numbers the original execution produced, bit for
bit.

Seeding contract
----------------
Whenever an engine needs randomness (shot sampling), the generator seed is
derived deterministically from ``(engine seed, item content fingerprint)``
via :func:`repro.engine.fingerprint.derive_seed`.  Consequences, guaranteed
across all engines constructed with a seed:

* ``run_batch(circuits)`` equals ``[run(c) for c in circuits]`` exactly,
  element by element, regardless of batch order, cache state, prefix reuse or
  thread fan-out;
* re-running the same circuit on the same engine reproduces the same samples;
* two engines constructed with the same seed agree with each other;
* an explicit ``seed=...`` argument to a sampling method overrides the
  derived seed for that call only.

An engine constructed *without* a seed draws fresh OS entropy for every
sampling call (matching the behaviour of an unseeded simulator): repeated
calls give independent samples, and sampled expectation values are not
served from the cache.  Passing ``shots=None`` requests the exact
(infinite-shot) distribution, which involves no randomness at all.
"""

from __future__ import annotations

import abc
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np


@dataclass
class EngineStats:
    """Execution and cache counters, for perf tracking and benchmark output."""

    executions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    prefix_resumes: int = 0
    instructions_simulated: int = 0
    instructions_reused: int = 0
    expectation_calls: int = 0
    expectation_cache_hits: int = 0
    transpile_cache_hits: int = 0
    transpile_cache_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def reuse_fraction(self) -> float:
        """Fraction of instruction processing avoided via prefix snapshots."""
        total = self.instructions_simulated + self.instructions_reused
        return self.instructions_reused / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "executions": self.executions,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "prefix_resumes": self.prefix_resumes,
            "instructions_simulated": self.instructions_simulated,
            "instructions_reused": self.instructions_reused,
            "reuse_fraction": self.reuse_fraction,
            "expectation_calls": self.expectation_calls,
            "expectation_cache_hits": self.expectation_cache_hits,
            "transpile_cache_hits": self.transpile_cache_hits,
            "transpile_cache_misses": self.transpile_cache_misses,
        }


@dataclass
class EngineResult:
    """The outcome of executing one circuit on an engine.

    ``state`` is backend-specific (a statevector for the ideal engine, a
    :class:`~repro.simulators.density_matrix.DensityMatrix` for the noisy
    ones) and must be treated as read-only when ``from_cache`` is set.
    """

    fingerprint: str
    engine: str
    state: Any = None
    probabilities: Optional[np.ndarray] = None
    clbit_order: Optional[List[int]] = None
    counts: Optional[Dict[str, int]] = None
    from_cache: bool = False
    metadata: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ExpectationData:
    """``<H>`` plus per-measurement-group diagnostics."""

    value: float
    group_values: List[float]
    distributions: List[np.ndarray]


class ExecutionEngine(abc.ABC):
    """Abstract base of all execution backends (see module docstring)."""

    name = "engine"

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def run(self, circuit) -> EngineResult:
        """Execute one circuit and return its :class:`EngineResult`."""

    @abc.abstractmethod
    def expectation(self, circuit, observable, shots: Optional[int] = None) -> float:
        """Estimate ``<observable>`` for one circuit."""

    # ------------------------------------------------------------------
    def run_batch(
        self, circuits: Sequence, max_workers: Optional[int] = None
    ) -> List[EngineResult]:
        """Execute many circuits; output order matches input order.

        ``max_workers > 1`` fans the batch out over a thread pool.  Because of
        the content-derived seeding contract the results are identical to the
        serial path; threading only changes wall-clock (numpy releases the GIL
        inside the heavy contractions).  Caches are shared across workers.
        """
        return self._map_batch(self.run, circuits, max_workers)

    def expectation_batch(
        self,
        circuits: Sequence,
        observable,
        shots: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> List[float]:
        """Estimate ``<observable>`` for many circuits, order-stably."""
        return self._map_batch(
            lambda circuit: self.expectation(circuit, observable, shots=shots),
            circuits,
            max_workers,
        )

    @staticmethod
    def _map_batch(func: Callable, items: Sequence, max_workers: Optional[int]) -> List:
        items = list(items)
        if max_workers is not None and max_workers > 1 and len(items) > 1:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                return list(pool.map(func, items))
        return [func(item) for item in items]

    # ------------------------------------------------------------------
    def _sampling_rng(self, seed, *content: str) -> np.random.Generator:
        """The generator for one sampling call, per the seeding contract.

        Priority: an explicit per-call ``seed``; else content-derived from the
        engine seed; else fresh OS entropy for unseeded engines.
        """
        from .fingerprint import derive_seed

        if seed is not None:
            return np.random.default_rng(seed)
        if self.seed is not None:
            return np.random.default_rng(derive_seed(self.seed, *content))
        return np.random.default_rng()

    def clear_caches(self) -> None:
        """Drop all cached results (stats are kept; reset via :meth:`reset_stats`)."""

    def reset_stats(self) -> None:
        self.stats = EngineStats()

    def __repr__(self):
        return f"{type(self).__name__}(seed={self.seed}, stats={self.stats.as_dict()})"
