"""The :class:`ExecutionEngine` abstraction — one backend API for every run.

Every part of the reproduction that executes circuits (expectation
estimation, VQE objectives, the independent-window tuner, the runtime session
model, the benchmark harness) talks to a single engine interface instead of
instantiating simulators ad hoc:

* :meth:`ExecutionEngine.run` — execute one circuit, returning an
  :class:`EngineResult`,
* :meth:`ExecutionEngine.run_batch` — execute many circuits, order-stably and
  with shared caching (optionally fanned out over worker threads or worker
  processes),
* :meth:`ExecutionEngine.expectation` / :meth:`expectation_batch` — estimate
  ``<H>`` of a Pauli-sum observable for one or many circuits.

Batch methods accept ``parallelism="serial" | "thread" | "process"`` plus
``max_workers``.  The thread tier shares the engine's caches directly and
only helps while numpy releases the GIL; the process tier
(:mod:`repro.engine.parallel`) rebuilds the engine in worker processes,
shards the batch so prefix-reuse chains stay within one worker, and merges
worker cache entries back into the parent.  Results are identical across all
three modes for a seeded engine (see the seeding contract below).

Every batch method also has an asynchronous counterpart — :meth:`submit`,
:meth:`submit_batch`, :meth:`submit_expectation_batch` — returning ordered
:class:`~repro.engine.futures.EngineFuture` handles instead of blocking.
Submissions land on a persistent per-engine slot scheduler
(:mod:`repro.engine.scheduler`): independent batches from different
frontends overlap up to per-tier slot limits, batches whose schedules share
simulated prefixes serialize, submitters are served round-robin, and pools
are never torn down between batches.  Per the seeding contract async results
are bit-identical to blocking calls; see ``docs/scheduler.md`` and
``docs/async.md``.

Three concrete engines cover the reproduction's backends:

* :class:`~repro.engine.statevector_engine.StatevectorEngine` — ideal,
  noise-free execution of logical circuits,
* :class:`~repro.engine.density_engine.NoisyDensityMatrixEngine` —
  schedule-aware noisy density-matrix execution of scheduled circuits, with a
  prefix-reuse fast path for families of near-identical schedules,
* :class:`~repro.engine.fake_device_engine.FakeDeviceEngine` — a fake IBM
  machine: transpiles logical circuits and executes them noisily, caching the
  transpilation per circuit content.

Caching contract
----------------
Results are cached by *content fingerprint* (see
:mod:`repro.engine.fingerprint`), never by object identity, so identical
circuits are never simulated twice — no matter which frontend submitted them.
Cache hits return the same numbers the original execution produced, bit for
bit.  For scheduled circuits the fingerprints, hash chains, prefix
checkpoints, shard chains and scheduler conflict keys all digest the
commutation-aware *canonical* processing order
(:mod:`repro.engine.canonical`, enabled by default) — schedules equal up to
benign reorderings of provably-commuting instructions share every one of
those keys, and because execution itself replays the canonical order, a
shared chain prefix always identifies a bit-identically replayable evolution
prefix.

Seeding contract
----------------
Whenever an engine needs randomness (shot sampling), the generator seed is
derived deterministically from ``(engine seed, item content fingerprint)``
via :func:`repro.engine.fingerprint.derive_seed`.  Consequences, guaranteed
across all engines constructed with a seed:

* ``run_batch(circuits)`` equals ``[run(c) for c in circuits]`` exactly,
  element by element, regardless of batch order, cache state, prefix reuse or
  thread fan-out;
* re-running the same circuit on the same engine reproduces the same samples;
* two engines constructed with the same seed agree with each other;
* an explicit ``seed=...`` argument to a sampling method overrides the
  derived seed for that call only.

An engine constructed *without* a seed draws fresh OS entropy for every
sampling call (matching the behaviour of an unseeded simulator): repeated
calls give independent samples, and sampled expectation values are not
served from the cache.  Passing ``shots=None`` requests the exact
(infinite-shot) distribution, which involves no randomness at all.
"""

from __future__ import annotations

import abc
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import EngineError
from .futures import DEFAULT_MAX_PENDING, EngineFuture
from .parallel import (
    CacheRecord,
    EngineWorkerSpec,
    ParallelismPlan,
    ProcessPoolRegistry,
    process_map,
    resolve_parallelism,
)
from .scheduler import DEFAULT_SLOTS, BatchScheduler


@dataclass
class EngineStats:
    """Execution and cache counters, for perf tracking and benchmark output."""

    executions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    prefix_resumes: int = 0
    instructions_simulated: int = 0
    instructions_reused: int = 0
    expectation_calls: int = 0
    expectation_cache_hits: int = 0
    transpile_cache_hits: int = 0
    transpile_cache_misses: int = 0
    #: PTM-kernel counters (zero on the dense kernel): fused kernel
    #: applications during schedule evolution, op applications absorbed into
    #: an already-open fused run, and the widest row count driven through one
    #: batched measurement kernel.  All three are deterministic for a given
    #: serial workload, making the kernel win auditable without timing.
    ptm_matmuls: int = 0
    instructions_fused: int = 0
    batch_width: int = 0
    #: Segment-cache counters (see ``docs/segment_reuse.md``): replays of a
    #: cached segment's compiled operator stream, and first-time compilations
    #: that populated the cache.  Instructions covered by replayed segments
    #: count into ``instructions_reused`` alongside prefix-resumed ones.
    segment_hits: int = 0
    segment_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def reuse_fraction(self) -> float:
        """Fraction of instruction processing avoided via reuse — prefix
        snapshots plus segment-cache replays."""
        total = self.instructions_simulated + self.instructions_reused
        return self.instructions_reused / total if total else 0.0

    @property
    def segment_hit_rate(self) -> float:
        total = self.segment_hits + self.segment_misses
        return self.segment_hits / total if total else 0.0

    def add_counters(self, delta: Dict[str, int]) -> None:
        """Fold a worker's counter delta into this stats object (by field name).

        Unknown keys are ignored so that stats payloads from slightly older or
        newer worker builds cannot crash a merge.
        """
        for name, value in delta.items():
            if hasattr(self, name) and not isinstance(getattr(type(self), name, None), property):
                if name == "batch_width":
                    # A high-water mark, not a running total.
                    setattr(self, name, max(getattr(self, name), value))
                else:
                    setattr(self, name, getattr(self, name) + value)

    def as_dict(self) -> Dict[str, float]:
        return {
            "executions": self.executions,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "prefix_resumes": self.prefix_resumes,
            "instructions_simulated": self.instructions_simulated,
            "instructions_reused": self.instructions_reused,
            "reuse_fraction": self.reuse_fraction,
            "expectation_calls": self.expectation_calls,
            "expectation_cache_hits": self.expectation_cache_hits,
            "transpile_cache_hits": self.transpile_cache_hits,
            "transpile_cache_misses": self.transpile_cache_misses,
            "ptm_matmuls": self.ptm_matmuls,
            "instructions_fused": self.instructions_fused,
            "batch_width": self.batch_width,
            "segment_hits": self.segment_hits,
            "segment_misses": self.segment_misses,
            "segment_hit_rate": self.segment_hit_rate,
        }


@dataclass
class EngineResult:
    """The outcome of executing one circuit on an engine.

    ``state`` is backend-specific (a statevector for the ideal engine, a
    :class:`~repro.simulators.density_matrix.DensityMatrix` for the noisy
    ones) and must be treated as read-only when ``from_cache`` is set.
    """

    fingerprint: str
    engine: str
    state: Any = None
    probabilities: Optional[np.ndarray] = None
    clbit_order: Optional[List[int]] = None
    counts: Optional[Dict[str, int]] = None
    from_cache: bool = False
    metadata: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ExpectationData:
    """``<H>`` plus per-measurement-group diagnostics."""

    value: float
    group_values: List[float]
    distributions: List[np.ndarray]


class ExecutionEngine(abc.ABC):
    """Abstract base of all execution backends (see module docstring)."""

    name = "engine"

    #: The payload kind this engine executes — ``"circuit"`` for logical
    #: circuits, ``"scheduled"`` for device-bound schedules.  Ingested
    #: programs (:class:`repro.frontend.IngestedProgram`) use it to hand an
    #: engine the matching object, transpiling on demand; see
    #: :meth:`_resolve_program`.
    program_input = "circuit"

    #: Backpressure bound for :meth:`submit_batch` and friends: the number of
    #: submitted-but-not-yet-executing batches the scheduler queues before
    #: further ``submit*`` calls block (see ``docs/scheduler.md``).  Assign on
    #: an instance before its first submission to resize.
    max_pending_batches: int = DEFAULT_MAX_PENDING

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self.stats = EngineStats()
        #: Concurrent-batch slots per execution tier for this engine's
        #: scheduler (``{"serial": 1, "thread": 2, "process": 2}`` by
        #: default; the serial tier is always pinned to one slot).  A private
        #: copy per instance — reassign or mutate it before the first
        #: submission to resize; see ``docs/scheduler.md``.
        self.scheduler_slots: Dict[str, int] = dict(DEFAULT_SLOTS)
        #: Persistent process pools, shared by concurrent batches (see
        #: :class:`~repro.engine.parallel.ProcessPoolRegistry`).
        self._pools = ProcessPoolRegistry()
        #: Serializes stats merge-back: with the slot scheduler several
        #: process-tier batches can complete (and fold worker counter deltas)
        #: concurrently.
        self._stats_lock = threading.Lock()
        #: Persistent batch scheduler (created lazily by the first submit)
        #: and the lock guarding its creation — two threads racing their
        #: first submit must share one scheduler or fairness accounting and
        #: per-submitter ordering break.  One finalizer handle per engine:
        #: recreating the scheduler after a close() replaces it rather than
        #: accumulating finalizers that would pin dead schedulers.
        self._scheduler: Optional[BatchScheduler] = None
        self._scheduler_finalizer: Optional[weakref.finalize] = None
        self._scheduler_lock = threading.Lock()

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def run(self, circuit) -> EngineResult:
        """Execute one circuit and return its :class:`EngineResult`."""

    @abc.abstractmethod
    def expectation(
        self, circuit, observable, shots: Optional[int] = None, seed: Optional[int] = None
    ) -> float:
        """Estimate ``<observable>`` for one circuit.

        ``seed`` overrides the engine seeding contract for this call only
        (engines without sampling randomness accept and ignore it)."""

    # ------------------------------------------------------------------
    def run_batch(
        self,
        circuits: Sequence,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
    ) -> List[EngineResult]:
        """Execute many circuits; output order matches input order.

        ``parallelism`` selects the execution tier:

        * ``"serial"`` — one circuit after another on the calling thread;
        * ``"thread"`` — a thread pool sharing the engine's caches (only
          helps while numpy releases the GIL inside heavy contractions);
        * ``"process"`` — a persistent pool of worker processes, each holding
          a rebuilt copy of this engine; the batch is sharded so schedules
          sharing a simulated prefix stay on one worker, and worker cache
          entries are merged back on return (:mod:`repro.engine.parallel`).

        ``max_workers`` bounds the pool size (default: one per core).
        ``parallelism=None`` runs serially; the historical implicit thread
        tier (``max_workers > 1`` without ``parallelism=``) has been removed
        and now raises :class:`~repro.exceptions.EngineError` — pass
        ``parallelism="thread"`` explicitly, see the migration notes in
        ``docs/api.md``.  Because of the content-derived seeding contract a
        seeded engine returns identical results on every tier.
        """
        return self._dispatch_batch("run", circuits, {}, max_workers, parallelism)

    def expectation_batch(
        self,
        circuits: Sequence,
        observable,
        shots: Optional[int] = None,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> List[float]:
        """Estimate ``<observable>`` for many circuits, order-stably.

        ``parallelism`` / ``max_workers`` behave as on :meth:`run_batch`.
        An explicit ``seed`` overrides the content-derived sampling seed for
        every item of the batch — exactly like passing the same ``seed`` to
        element-wise :meth:`expectation` calls (callers wanting independent
        per-round randomness, e.g. the adaptive shot collector, derive a
        distinct seed per batch via
        :func:`repro.engine.fingerprint.derive_seed`).
        """
        kwargs = {"observable": observable, "shots": shots, "seed": seed}
        return self._dispatch_batch("expectation", circuits, kwargs, max_workers, parallelism)

    # ------------------------------------------------------------------
    # Asynchronous submission (see repro.engine.scheduler, docs/scheduler.md)
    # ------------------------------------------------------------------
    def submit(self, circuit) -> EngineFuture:
        """Asynchronously execute one circuit; resolves to an :class:`EngineResult`."""
        return self.submit_batch([circuit])[0]

    def submit_batch(
        self,
        circuits: Sequence,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
        submitter: Any = None,
        priority: int = 0,
    ) -> List[EngineFuture]:
        """Asynchronous :meth:`run_batch`: one future per circuit, in order.

        The batch is queued on the engine's persistent slot scheduler and
        executed through exactly the tier the ``parallelism`` /
        ``max_workers`` knobs resolve to.  Batches from one ``submitter``
        (default: the calling thread) execute FIFO among themselves;
        independent batches from *different* submitters may overlap, up to
        the per-tier limits in :attr:`scheduler_slots`, while batches whose
        schedules share simulated prefixes serialize (see
        ``docs/scheduler.md``).  ``priority`` (higher first) breaks ties
        between runnable batches of different submitters.  Per the seeding
        contract the resolved results are bit-identical to a blocking
        :meth:`run_batch` call no matter how batches overlap.
        ``future.cancel()`` prunes an item whose batch has not started;
        exceptions raised while executing the batch re-raise from
        ``future.result()``.
        """
        return self._submit_job(
            "run", circuits, {}, max_workers, parallelism, submitter, priority
        )

    def submit_expectation_batch(
        self,
        circuits: Sequence,
        observable,
        shots: Optional[int] = None,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
        submitter: Any = None,
        priority: int = 0,
        seed: Optional[int] = None,
    ) -> List[EngineFuture]:
        """Asynchronous :meth:`expectation_batch`: futures resolving to floats.

        ``seed`` behaves exactly as on the blocking :meth:`expectation_batch`.
        """
        kwargs = {"observable": observable, "shots": shots, "seed": seed}
        return self._submit_job(
            "expectation", circuits, kwargs, max_workers, parallelism, submitter, priority
        )

    def _submit_job(
        self,
        kind: str,
        items: Sequence,
        kwargs: Dict[str, Any],
        max_workers: Optional[int],
        parallelism: Optional[str],
        submitter: Any = None,
        priority: int = 0,
    ) -> List[EngineFuture]:
        """Queue one batch on the (lazily created) scheduler."""
        items = [self._resolve_program(item) for item in items]
        return self._ensure_scheduler().submit(
            kind, items, kwargs, max_workers, parallelism,
            submitter=submitter, priority=priority,
        )

    def _resolve_program(self, item):
        """Unwrap an ingested program into this engine's payload kind.

        Any object exposing ``engine_payload(engine)`` — in practice
        :class:`repro.frontend.IngestedProgram` — resolves to the circuit or
        schedule this engine executes; everything else passes through
        untouched.  Duck-typed so the engine layer never imports the
        frontend.
        """
        payload = getattr(item, "engine_payload", None)
        if payload is not None and callable(payload):
            return payload(self)
        return item

    def _ensure_scheduler(self) -> BatchScheduler:
        """The engine's persistent scheduler, (re)created after a close().

        The scheduler holds the engine weakly and a finalizer cancels
        whatever is still queued, so an abandoned engine is still collectable
        without an explicit :meth:`close`.
        """
        with self._scheduler_lock:
            scheduler = self._scheduler
            if scheduler is None or scheduler.closed:
                scheduler = BatchScheduler(
                    self,
                    slots=self.scheduler_slots,
                    max_pending=self.max_pending_batches,
                    name=f"{self.name}-scheduler",
                )
                if self._scheduler_finalizer is not None:
                    self._scheduler_finalizer.detach()
                self._scheduler_finalizer = weakref.finalize(
                    self, BatchScheduler.shutdown, scheduler, False
                )
                self._scheduler = scheduler
            return scheduler

    # ------------------------------------------------------------------
    # Batch dispatch (serial / thread / process tiers)
    # ------------------------------------------------------------------
    def _dispatch_batch(
        self,
        kind: str,
        items: Sequence,
        kwargs: Dict[str, Any],
        max_workers: Optional[int],
        parallelism: Optional[str],
        chains: Optional[Sequence[Sequence[str]]] = None,
    ) -> List:
        """Route one batch through the tier the knobs resolve to.

        ``chains`` optionally carries the items' precomputed hash chains
        (the scheduler hashes them once at submit time for conflict
        detection); the process tier reuses them instead of re-hashing.
        """
        items = [self._resolve_program(item) for item in items]
        plan = resolve_parallelism(parallelism, max_workers, len(items))
        if plan.mode == "process":
            spec = self._process_spec()
            if spec is None:
                # Engines that cannot cross the process boundary degrade to
                # the thread tier rather than failing the batch.
                plan = plan.thread_fallback()
            else:
                return process_map(self, spec, kind, items, kwargs, plan, chains=chains)
        func = lambda item: self._serial_call(kind, item, kwargs)  # noqa: E731
        if plan.mode == "thread":
            with ThreadPoolExecutor(max_workers=plan.workers) as pool:
                return list(pool.map(func, items))
        fast = self._batch_fast_path(kind, items, kwargs)
        if fast is not None:
            return fast
        return [func(item) for item in items]

    def _batch_fast_path(
        self, kind: str, items: Sequence, kwargs: Dict[str, Any]
    ) -> Optional[List]:
        """Optional whole-batch execution of a serial-tier batch.

        Called by :meth:`_dispatch_batch` once the batch has resolved to the
        serial tier; returning a result list (input order) replaces the
        per-item loop, returning ``None`` falls back to it.  Implementations
        must be *value-identical* to the per-item path — same numbers, same
        cache and stats side effects — because callers choose tiers freely.
        """
        return None

    def _serial_call(self, kind: str, item, kwargs: Dict[str, Any]):
        """Execute one batch item on the calling thread (all tiers reduce to
        this; subclasses extend it with additional kinds)."""
        if kind == "run":
            return self.run(item)
        if kind == "expectation":
            return self.expectation(
                item, kwargs["observable"], shots=kwargs["shots"], seed=kwargs.get("seed")
            )
        raise EngineError(f"engine {self.name!r} does not implement batch kind {kind!r}")

    # ------------------------------------------------------------------
    # Process-tier hooks (see repro.engine.parallel)
    # ------------------------------------------------------------------
    def _process_spec(self) -> Optional[EngineWorkerSpec]:
        """How to rebuild this engine in a worker process.

        ``None`` (the default) marks the engine as unable to cross the
        process boundary; batch calls requesting ``parallelism="process"``
        then degrade to the thread tier.
        """
        return None

    def _shard_chain(self, kind: str, item) -> Sequence[str]:
        """The item's hash chain, used to group prefix-sharing items into the
        same shard.  The last entry must be a full content fingerprint (it
        also keys payload deduplication).  The default yields no grouping."""
        return (repr(id(item)),)

    def _worker_execute(self, kind: str, item, kwargs: Dict[str, Any]) -> Tuple[Any, List[CacheRecord]]:
        """Execute one item worker-side, returning the result plus the cache
        records the parent should absorb.  The default exports nothing."""
        return self._serial_call(kind, item, kwargs), []

    def _is_locally_cached(self, kind: str, item, kwargs: Dict[str, Any], chain: Sequence[str]) -> bool:
        """Whether the parent can serve this item from its own caches without
        shipping it to a worker."""
        return False

    def _worker_duplicate(self, kind: str, value):
        """Worker-side result for a content-identical repeat within a shard.

        Mirrors the serial path's second execution — a cache hit returning a
        result flagged ``from_cache`` — without re-running or re-shipping the
        heavy state (the shared arrays pickle once per shard).  Per the
        :class:`EngineResult` contract the state of a ``from_cache`` result
        is read-only, so the sharing is not observable.
        """
        if kind == "run":
            self.stats.executions += 1
            self.stats.cache_hits += 1
            from dataclasses import replace

            return replace(value, from_cache=True)
        return value

    def _absorb_records(self, records: Sequence[CacheRecord]) -> None:
        """Merge worker cache records into the parent's caches (no-op by
        default; engines with caches override)."""

    def _stats_registry(self) -> Dict[str, EngineStats]:
        """The named stats objects workers diff and the parent re-merges."""
        return {"self": self.stats}

    def _absorb_stats(self, delta: Dict[str, Dict[str, int]]) -> None:
        """Fold a worker's stats delta into the parent's counters.

        Counter folding is plain ``+=`` on the stats dataclasses, so with the
        slot scheduler — where several process-tier batches can complete
        concurrently — the merge is serialized under ``_stats_lock``.
        """
        registry = self._stats_registry()
        with self._stats_lock:
            for name, counters in delta.items():
                stats = registry.get(name)
                if stats is not None:
                    stats.add_counters(counters)

    def _acquire_process_pool(self, spec: EngineWorkerSpec, workers: int):
        """A worker-pool executor for ``spec`` plus its release key.

        Pools are persistent and shared by concurrent batches through the
        engine's :class:`~repro.engine.parallel.ProcessPoolRegistry`: a
        changed execution context (e.g. a toggled noise-model flag) retires
        stale pools — immediately when idle, on last release while batches
        still run on them — and a concurrent batch never retires workers
        another batch is using.  Callers must pass the returned key to
        :meth:`_release_process_pool` when their batch completes.
        """
        return self._pools.acquire(spec, workers)

    def _release_process_pool(self, key) -> None:
        self._pools.release(key)

    def _retire_process_pool(self, key) -> None:
        """Evict a broken pool (dead worker processes) from the registry.

        The failing batch still releases its reference afterwards; the point
        is that no *later* batch can acquire the dead executor — it builds a
        fresh pool instead, so a single worker crash stays a single batch's
        typed failure rather than poisoning the engine permanently.
        """
        self._pools.retire(key)

    def close(self) -> None:
        """Release pooled resources (drains the batch scheduler, joins any
        process-pool workers).

        Already-submitted batches finish first, so pending futures resolve
        rather than hang.  Idempotent: repeated closes (including with
        futures still in flight) drain and return instead of raising, and a
        close issued from inside a scheduler callback returns without
        deadlocking on its own batch.  Engines are usable again afterwards —
        the next submission starts a fresh scheduler and the next
        process-tier batch a fresh pool.  Garbage collection performs the
        same cleanup, so calling this is optional but makes teardown prompt.
        """
        with self._scheduler_lock:
            scheduler = self._scheduler
            self._scheduler = None
            finalizer = self._scheduler_finalizer
            self._scheduler_finalizer = None
        if finalizer is not None:
            finalizer.detach()
        drained = True
        if scheduler is not None:
            drained = scheduler.shutdown(wait=True)
        if drained:
            self._pools.shutdown()
        # A not-fully-drained shutdown (close() issued from inside one of the
        # scheduler's own worker threads) must leave the pools alone: other
        # batches may still be running on them.  Their handles are joined by
        # a later close() or by the pool finalizers on collection.

    # ------------------------------------------------------------------
    def _sampling_rng(self, seed, *content: str) -> np.random.Generator:
        """The generator for one sampling call, per the seeding contract.

        Priority: an explicit per-call ``seed``; else content-derived from the
        engine seed; else fresh OS entropy for unseeded engines.
        """
        from .fingerprint import derive_seed

        if seed is not None:
            return np.random.default_rng(seed)
        if self.seed is not None:
            return np.random.default_rng(derive_seed(self.seed, *content))
        return np.random.default_rng()

    def clear_caches(self) -> None:
        """Drop all cached results (stats are kept; reset via :meth:`reset_stats`)."""

    def reset_stats(self) -> None:
        self.stats = EngineStats()

    def __repr__(self):
        return f"{type(self).__name__}(seed={self.seed}, stats={self.stats.as_dict()})"
