"""The :class:`ExecutionEngine` abstraction — one backend API for every run.

Every part of the reproduction that executes circuits (expectation
estimation, VQE objectives, the independent-window tuner, the runtime session
model, the benchmark harness) talks to a single engine interface instead of
instantiating simulators ad hoc:

* :meth:`ExecutionEngine.run` — execute one circuit, returning an
  :class:`EngineResult`,
* :meth:`ExecutionEngine.run_batch` — execute many circuits, order-stably and
  with shared caching (optionally fanned out over worker threads or worker
  processes),
* :meth:`ExecutionEngine.expectation` / :meth:`expectation_batch` — estimate
  ``<H>`` of a Pauli-sum observable for one or many circuits.

Batch methods accept ``parallelism="serial" | "thread" | "process"`` plus
``max_workers``.  The thread tier shares the engine's caches directly and
only helps while numpy releases the GIL; the process tier
(:mod:`repro.engine.parallel`) rebuilds the engine in worker processes,
shards the batch so prefix-reuse chains stay within one worker, and merges
worker cache entries back into the parent.  Results are identical across all
three modes for a seeded engine (see the seeding contract below).

Every batch method also has an asynchronous counterpart — :meth:`submit`,
:meth:`submit_batch`, :meth:`submit_expectation_batch` — returning ordered
:class:`~repro.engine.futures.EngineFuture` handles instead of blocking.
Submissions are drained FIFO by a persistent per-engine dispatcher that feeds
the same tiers (pools are never torn down between batches), so async results
are bit-identical to blocking calls; see :mod:`repro.engine.futures` and
``docs/async.md``.

Three concrete engines cover the reproduction's backends:

* :class:`~repro.engine.statevector_engine.StatevectorEngine` — ideal,
  noise-free execution of logical circuits,
* :class:`~repro.engine.density_engine.NoisyDensityMatrixEngine` —
  schedule-aware noisy density-matrix execution of scheduled circuits, with a
  prefix-reuse fast path for families of near-identical schedules,
* :class:`~repro.engine.fake_device_engine.FakeDeviceEngine` — a fake IBM
  machine: transpiles logical circuits and executes them noisily, caching the
  transpilation per circuit content.

Caching contract
----------------
Results are cached by *content fingerprint* (see
:mod:`repro.engine.fingerprint`), never by object identity, so identical
circuits are never simulated twice — no matter which frontend submitted them.
Cache hits return the same numbers the original execution produced, bit for
bit.

Seeding contract
----------------
Whenever an engine needs randomness (shot sampling), the generator seed is
derived deterministically from ``(engine seed, item content fingerprint)``
via :func:`repro.engine.fingerprint.derive_seed`.  Consequences, guaranteed
across all engines constructed with a seed:

* ``run_batch(circuits)`` equals ``[run(c) for c in circuits]`` exactly,
  element by element, regardless of batch order, cache state, prefix reuse or
  thread fan-out;
* re-running the same circuit on the same engine reproduces the same samples;
* two engines constructed with the same seed agree with each other;
* an explicit ``seed=...`` argument to a sampling method overrides the
  derived seed for that call only.

An engine constructed *without* a seed draws fresh OS entropy for every
sampling call (matching the behaviour of an unseeded simulator): repeated
calls give independent samples, and sampled expectation values are not
served from the cache.  Passing ``shots=None`` requests the exact
(infinite-shot) distribution, which involves no randomness at all.
"""

from __future__ import annotations

import abc
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import EngineError
from .futures import DEFAULT_MAX_PENDING, AsyncDispatcher, EngineFuture
from .parallel import (
    CacheRecord,
    EngineWorkerSpec,
    ParallelismPlan,
    ProcessPoolHandle,
    process_map,
    resolve_parallelism,
)


@dataclass
class EngineStats:
    """Execution and cache counters, for perf tracking and benchmark output."""

    executions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    prefix_resumes: int = 0
    instructions_simulated: int = 0
    instructions_reused: int = 0
    expectation_calls: int = 0
    expectation_cache_hits: int = 0
    transpile_cache_hits: int = 0
    transpile_cache_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def reuse_fraction(self) -> float:
        """Fraction of instruction processing avoided via prefix snapshots."""
        total = self.instructions_simulated + self.instructions_reused
        return self.instructions_reused / total if total else 0.0

    def add_counters(self, delta: Dict[str, int]) -> None:
        """Fold a worker's counter delta into this stats object (by field name).

        Unknown keys are ignored so that stats payloads from slightly older or
        newer worker builds cannot crash a merge.
        """
        for name, value in delta.items():
            if hasattr(self, name) and not isinstance(getattr(type(self), name, None), property):
                setattr(self, name, getattr(self, name) + value)

    def as_dict(self) -> Dict[str, float]:
        return {
            "executions": self.executions,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "prefix_resumes": self.prefix_resumes,
            "instructions_simulated": self.instructions_simulated,
            "instructions_reused": self.instructions_reused,
            "reuse_fraction": self.reuse_fraction,
            "expectation_calls": self.expectation_calls,
            "expectation_cache_hits": self.expectation_cache_hits,
            "transpile_cache_hits": self.transpile_cache_hits,
            "transpile_cache_misses": self.transpile_cache_misses,
        }


@dataclass
class EngineResult:
    """The outcome of executing one circuit on an engine.

    ``state`` is backend-specific (a statevector for the ideal engine, a
    :class:`~repro.simulators.density_matrix.DensityMatrix` for the noisy
    ones) and must be treated as read-only when ``from_cache`` is set.
    """

    fingerprint: str
    engine: str
    state: Any = None
    probabilities: Optional[np.ndarray] = None
    clbit_order: Optional[List[int]] = None
    counts: Optional[Dict[str, int]] = None
    from_cache: bool = False
    metadata: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ExpectationData:
    """``<H>`` plus per-measurement-group diagnostics."""

    value: float
    group_values: List[float]
    distributions: List[np.ndarray]


class ExecutionEngine(abc.ABC):
    """Abstract base of all execution backends (see module docstring)."""

    name = "engine"

    #: Backpressure bound for :meth:`submit_batch` and friends: the number of
    #: submitted-but-not-yet-executing batches the dispatcher queues before
    #: further ``submit*`` calls block (see ``docs/async.md``).  Assign on an
    #: instance before its first submission to resize.
    max_pending_batches: int = DEFAULT_MAX_PENDING

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self.stats = EngineStats()
        #: Persistent process-pool handle (created lazily by the process tier).
        self._pool_handle: Optional[ProcessPoolHandle] = None
        #: Serializes pool-handle churn: the dispatcher thread and the calling
        #: thread may both reach the process tier concurrently.
        self._pool_lock = threading.Lock()
        #: Persistent async dispatcher (created lazily by the first submit)
        #: and the lock guarding its creation — two threads racing their
        #: first submit must share one dispatcher or FIFO ordering breaks.
        self._dispatcher: Optional[AsyncDispatcher] = None
        self._dispatcher_lock = threading.Lock()

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def run(self, circuit) -> EngineResult:
        """Execute one circuit and return its :class:`EngineResult`."""

    @abc.abstractmethod
    def expectation(self, circuit, observable, shots: Optional[int] = None) -> float:
        """Estimate ``<observable>`` for one circuit."""

    # ------------------------------------------------------------------
    def run_batch(
        self,
        circuits: Sequence,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
    ) -> List[EngineResult]:
        """Execute many circuits; output order matches input order.

        ``parallelism`` selects the execution tier:

        * ``"serial"`` — one circuit after another on the calling thread;
        * ``"thread"`` — a thread pool sharing the engine's caches (only
          helps while numpy releases the GIL inside heavy contractions);
        * ``"process"`` — a persistent pool of worker processes, each holding
          a rebuilt copy of this engine; the batch is sharded so schedules
          sharing a simulated prefix stay on one worker, and worker cache
          entries are merged back on return (:mod:`repro.engine.parallel`).

        ``max_workers`` bounds the pool size (default: one per core).  With
        ``parallelism=None`` the historical behaviour applies: ``max_workers
        > 1`` requests threads, anything else runs serially — that implicit
        tier selection is deprecated (it emits a ``DeprecationWarning``; pass
        ``parallelism="thread"`` explicitly, see the migration notes in
        ``docs/api.md``).  Because of the content-derived seeding contract a
        seeded engine returns identical results on every tier.
        """
        return self._dispatch_batch("run", circuits, {}, max_workers, parallelism)

    def expectation_batch(
        self,
        circuits: Sequence,
        observable,
        shots: Optional[int] = None,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
    ) -> List[float]:
        """Estimate ``<observable>`` for many circuits, order-stably.

        ``parallelism`` / ``max_workers`` behave as on :meth:`run_batch`.
        """
        kwargs = {"observable": observable, "shots": shots}
        return self._dispatch_batch("expectation", circuits, kwargs, max_workers, parallelism)

    # ------------------------------------------------------------------
    # Asynchronous submission (see repro.engine.futures and docs/async.md)
    # ------------------------------------------------------------------
    def submit(self, circuit) -> EngineFuture:
        """Asynchronously execute one circuit; resolves to an :class:`EngineResult`."""
        return self.submit_batch([circuit])[0]

    def submit_batch(
        self,
        circuits: Sequence,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
    ) -> List[EngineFuture]:
        """Asynchronous :meth:`run_batch`: one future per circuit, in order.

        The batch is queued on the engine's persistent dispatcher and executed
        FIFO relative to other submissions, through exactly the tier the
        ``parallelism`` / ``max_workers`` knobs resolve to; per the seeding
        contract the resolved results are bit-identical to a blocking
        :meth:`run_batch` call.  ``future.cancel()`` prunes an item whose
        batch has not started; exceptions raised while executing the batch
        re-raise from ``future.result()``.
        """
        return self._submit_job("run", circuits, {}, max_workers, parallelism)

    def submit_expectation_batch(
        self,
        circuits: Sequence,
        observable,
        shots: Optional[int] = None,
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
    ) -> List[EngineFuture]:
        """Asynchronous :meth:`expectation_batch`: futures resolving to floats."""
        kwargs = {"observable": observable, "shots": shots}
        return self._submit_job("expectation", circuits, kwargs, max_workers, parallelism)

    def _submit_job(
        self,
        kind: str,
        items: Sequence,
        kwargs: Dict[str, Any],
        max_workers: Optional[int],
        parallelism: Optional[str],
    ) -> List[EngineFuture]:
        """Queue one batch on the (lazily created) dispatcher."""
        return self._ensure_dispatcher().submit(
            kind, list(items), kwargs, max_workers, parallelism
        )

    def _ensure_dispatcher(self) -> AsyncDispatcher:
        """The engine's persistent dispatcher, (re)created after a close().

        The dispatcher holds the engine weakly and a finalizer stops its
        thread, so an abandoned engine is still collectable without an
        explicit :meth:`close`.
        """
        with self._dispatcher_lock:
            dispatcher = self._dispatcher
            if dispatcher is None or dispatcher.closed:
                dispatcher = AsyncDispatcher(
                    self,
                    max_pending=self.max_pending_batches,
                    name=f"{self.name}-dispatcher",
                )
                weakref.finalize(self, AsyncDispatcher.shutdown, dispatcher, False)
                self._dispatcher = dispatcher
            return dispatcher

    # ------------------------------------------------------------------
    # Batch dispatch (serial / thread / process tiers)
    # ------------------------------------------------------------------
    def _dispatch_batch(
        self,
        kind: str,
        items: Sequence,
        kwargs: Dict[str, Any],
        max_workers: Optional[int],
        parallelism: Optional[str],
    ) -> List:
        """Route one batch through the tier the knobs resolve to."""
        items = list(items)
        plan = resolve_parallelism(parallelism, max_workers, len(items))
        if plan.mode == "process":
            spec = self._process_spec()
            if spec is None:
                # Engines that cannot cross the process boundary degrade to
                # the thread tier rather than failing the batch.
                plan = plan.thread_fallback()
            else:
                return process_map(self, spec, kind, items, kwargs, plan)
        func = lambda item: self._serial_call(kind, item, kwargs)  # noqa: E731
        if plan.mode == "thread":
            with ThreadPoolExecutor(max_workers=plan.workers) as pool:
                return list(pool.map(func, items))
        return [func(item) for item in items]

    def _serial_call(self, kind: str, item, kwargs: Dict[str, Any]):
        """Execute one batch item on the calling thread (all tiers reduce to
        this; subclasses extend it with additional kinds)."""
        if kind == "run":
            return self.run(item)
        if kind == "expectation":
            return self.expectation(item, kwargs["observable"], shots=kwargs["shots"])
        raise EngineError(f"engine {self.name!r} does not implement batch kind {kind!r}")

    @staticmethod
    def _map_batch(func: Callable, items: Sequence, max_workers: Optional[int]) -> List:
        """Legacy callable-based fan-out (serial, or threads when
        ``max_workers > 1``); kept for frontends that batch arbitrary
        closures rather than engine batch kinds."""
        items = list(items)
        if max_workers is not None and max_workers > 1 and len(items) > 1:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                return list(pool.map(func, items))
        return [func(item) for item in items]

    # ------------------------------------------------------------------
    # Process-tier hooks (see repro.engine.parallel)
    # ------------------------------------------------------------------
    def _process_spec(self) -> Optional[EngineWorkerSpec]:
        """How to rebuild this engine in a worker process.

        ``None`` (the default) marks the engine as unable to cross the
        process boundary; batch calls requesting ``parallelism="process"``
        then degrade to the thread tier.
        """
        return None

    def _shard_chain(self, kind: str, item) -> Sequence[str]:
        """The item's hash chain, used to group prefix-sharing items into the
        same shard.  The last entry must be a full content fingerprint (it
        also keys payload deduplication).  The default yields no grouping."""
        return (repr(id(item)),)

    def _worker_execute(self, kind: str, item, kwargs: Dict[str, Any]) -> Tuple[Any, List[CacheRecord]]:
        """Execute one item worker-side, returning the result plus the cache
        records the parent should absorb.  The default exports nothing."""
        return self._serial_call(kind, item, kwargs), []

    def _is_locally_cached(self, kind: str, item, kwargs: Dict[str, Any], chain: Sequence[str]) -> bool:
        """Whether the parent can serve this item from its own caches without
        shipping it to a worker."""
        return False

    def _worker_duplicate(self, kind: str, value):
        """Worker-side result for a content-identical repeat within a shard.

        Mirrors the serial path's second execution — a cache hit returning a
        result flagged ``from_cache`` — without re-running or re-shipping the
        heavy state (the shared arrays pickle once per shard).  Per the
        :class:`EngineResult` contract the state of a ``from_cache`` result
        is read-only, so the sharing is not observable.
        """
        if kind == "run":
            self.stats.executions += 1
            self.stats.cache_hits += 1
            from dataclasses import replace

            return replace(value, from_cache=True)
        return value

    def _absorb_records(self, records: Sequence[CacheRecord]) -> None:
        """Merge worker cache records into the parent's caches (no-op by
        default; engines with caches override)."""

    def _stats_registry(self) -> Dict[str, EngineStats]:
        """The named stats objects workers diff and the parent re-merges."""
        return {"self": self.stats}

    def _absorb_stats(self, delta: Dict[str, Dict[str, int]]) -> None:
        """Fold a worker's stats delta into the parent's counters."""
        registry = self._stats_registry()
        for name, counters in delta.items():
            stats = registry.get(name)
            if stats is not None:
                stats.add_counters(counters)

    def _process_pool_executor(self, spec: EngineWorkerSpec, workers: int):
        """The persistent worker pool for ``spec``, (re)created on demand.

        The pool is keyed by ``(spec.cache_key, workers)``: a changed
        execution context (e.g. a toggled noise-model flag) or worker count
        retires the stale pool — its worker engines were built from an
        outdated spec — and starts a fresh one.
        """
        with self._pool_lock:
            handle: Optional[ProcessPoolHandle] = getattr(self, "_pool_handle", None)
            key = (spec.cache_key, int(workers))
            if handle is None or handle.key != key:
                if handle is not None:
                    handle.shutdown()
                handle = ProcessPoolHandle(spec, workers)
                self._pool_handle = handle
            return handle.executor

    def close(self) -> None:
        """Release pooled resources (drains the async dispatcher, joins any
        process-pool workers).

        Already-submitted batches finish first, so pending futures resolve
        rather than hang.  Engines are usable again afterwards — the next
        submission starts a fresh dispatcher and the next process-tier batch
        a fresh pool.  Garbage collection performs the same cleanup, so
        calling this is optional but makes teardown prompt.
        """
        with self._dispatcher_lock:
            dispatcher = self._dispatcher
            self._dispatcher = None
        if dispatcher is not None:
            dispatcher.shutdown(wait=True)
        with self._pool_lock:
            handle: Optional[ProcessPoolHandle] = getattr(self, "_pool_handle", None)
            if handle is not None:
                self._pool_handle = None
        if handle is not None:
            handle.shutdown()

    # ------------------------------------------------------------------
    def _sampling_rng(self, seed, *content: str) -> np.random.Generator:
        """The generator for one sampling call, per the seeding contract.

        Priority: an explicit per-call ``seed``; else content-derived from the
        engine seed; else fresh OS entropy for unseeded engines.
        """
        from .fingerprint import derive_seed

        if seed is not None:
            return np.random.default_rng(seed)
        if self.seed is not None:
            return np.random.default_rng(derive_seed(self.seed, *content))
        return np.random.default_rng()

    def clear_caches(self) -> None:
        """Drop all cached results (stats are kept; reset via :meth:`reset_stats`)."""

    def reset_stats(self) -> None:
        self.stats = EngineStats()

    def __repr__(self):
        return f"{type(self).__name__}(seed={self.seed}, stats={self.stats.as_dict()})"
