"""Unified batched execution engines (see :mod:`repro.engine.base`)."""

from .base import EngineResult, EngineStats, ExecutionEngine, ExpectationData
from .canonical import (
    canonical_order,
    canonical_sort_key,
    commutation_dag,
    commutes,
    instruction_footprints,
)
from .density_engine import NoisyDensityMatrixEngine, measure_pauli_sum
from .fake_device_engine import FakeDeviceEngine
from .futures import EngineFuture, gather
from .scheduler import BatchScheduler
from .fingerprint import (
    circuit_fingerprint,
    circuit_hash_chain,
    derive_seed,
    device_fingerprint,
    observable_fingerprint,
    schedule_fingerprint,
)
from .parallel import (
    PARALLELISM_MODES,
    EngineWorkerSpec,
    ParallelismPlan,
    plan_shards,
    resolve_parallelism,
)
from .statevector_engine import StatevectorEngine

__all__ = [
    "ExecutionEngine",
    "EngineResult",
    "EngineStats",
    "ExpectationData",
    "StatevectorEngine",
    "NoisyDensityMatrixEngine",
    "FakeDeviceEngine",
    "measure_pauli_sum",
    "EngineFuture",
    "BatchScheduler",
    "gather",
    "canonical_order",
    "canonical_sort_key",
    "commutation_dag",
    "commutes",
    "instruction_footprints",
    "circuit_fingerprint",
    "circuit_hash_chain",
    "schedule_fingerprint",
    "device_fingerprint",
    "observable_fingerprint",
    "derive_seed",
    "PARALLELISM_MODES",
    "ParallelismPlan",
    "EngineWorkerSpec",
    "plan_shards",
    "resolve_parallelism",
]
