"""Futures-returning asynchronous submission for the engine layer.

Blocking batch calls (:meth:`~repro.engine.base.ExecutionEngine.run_batch`,
:meth:`~repro.engine.base.ExecutionEngine.expectation_batch`) make the caller
wait for the whole batch before it can do anything else — which is exactly
wrong for sweep frontends like the window tuner, whose candidate *generation*
could overlap with candidate *execution*.  This module provides the two
pieces the asynchronous ``submit*`` API is built from:

* :class:`EngineFuture` — an ordered handle to one in-flight result, wrapping
  the result value, a raised exception, or cancellation;
* :class:`AsyncDispatcher` — a persistent background dispatcher owned by each
  engine.  Submissions enqueue FIFO; a single dispatcher thread drains the
  queue and feeds each batch through the engine's existing blocking tier
  dispatch (serial / thread / process), so the process pools, shard planning
  and cache merge-back of :mod:`repro.engine.parallel` are reused unchanged
  and worker pools are never torn down between batches.

Determinism
-----------
Async submission changes *when* a batch executes, never *what* it computes:
each dequeued batch runs through the same ``_dispatch_batch`` path a blocking
call uses, and the content-derived seeding contract
(:func:`repro.engine.fingerprint.derive_seed`) makes every sampled value a
function of ``(engine seed, item content)`` rather than execution order.  A
seeded engine therefore returns bit-identical results whether a batch is
submitted asynchronously, blocked on, split across submissions, or
interleaved with other batches.

Cancellation and errors
-----------------------
``EngineFuture.cancel()`` succeeds only while the future's batch has not
started executing (the dispatcher runs batches FIFO, so anything behind the
currently-running batch is cancellable).  Cancelled items are pruned from
their batch before dispatch — they cost nothing.  If executing a batch
raises, the exception is stored on every unresolved future of that batch and
re-raised by :meth:`EngineFuture.result`.

Backpressure
------------
The dispatcher's submission queue is bounded (``max_pending`` batches, set by
``engine.max_pending_batches``); ``submit*`` blocks once the queue is full.
This caps the number of in-flight shards at roughly
``(max_pending + 1) * max_workers`` and keeps a runaway producer from
buffering an unbounded sweep in memory.  See ``docs/async.md``.
"""

from __future__ import annotations

import logging
import queue
import threading
import weakref
from concurrent.futures import CancelledError
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..exceptions import EngineError

__all__ = ["EngineFuture", "AsyncDispatcher", "CancelledError"]

#: Default bound on queued (not yet executing) batches per engine.
DEFAULT_MAX_PENDING = 8

_PENDING = "pending"
_RUNNING = "running"
_CANCELLED = "cancelled"
_DONE = "done"


class EngineFuture:
    """An ordered handle to one in-flight engine result.

    Futures are created by the ``submit*`` methods and resolved by the
    engine's dispatcher; user code only ever reads them.  The API mirrors
    :class:`concurrent.futures.Future` (``result`` / ``exception`` /
    ``cancel`` / ``done`` / ``add_done_callback``) plus :meth:`map` for
    deriving transformed views, and cancellation raises the standard
    :class:`concurrent.futures.CancelledError`.
    """

    def __init__(self, source: Optional["EngineFuture"] = None):
        self._condition = threading.Condition()
        self._state = _PENDING
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["EngineFuture"], None]] = []
        #: Upstream future this one was :meth:`map`-derived from (cancelling a
        #: derived future forwards to its source).
        self._source = source

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    def cancelled(self) -> bool:
        with self._condition:
            return self._state == _CANCELLED

    def running(self) -> bool:
        with self._condition:
            return self._state == _RUNNING

    def done(self) -> bool:
        """Whether the future is resolved (result, exception or cancelled)."""
        with self._condition:
            return self._state in (_CANCELLED, _DONE)

    # ------------------------------------------------------------------
    # Resolution (consumer side)
    # ------------------------------------------------------------------
    def result(self, timeout: Optional[float] = None) -> Any:
        """The resolved value; blocks until the batch lands.

        Raises :class:`concurrent.futures.CancelledError` if the future was
        cancelled, re-raises the batch's exception if execution failed, and
        raises :class:`~repro.exceptions.EngineError` on timeout.
        """
        with self._condition:
            self._wait_resolved(timeout)
            if self._state == _CANCELLED:
                raise CancelledError()
            if self._exception is not None:
                raise self._exception
            return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The exception execution raised, ``None`` on success.

        Like :meth:`result` this blocks until resolution and raises
        :class:`~concurrent.futures.CancelledError` for cancelled futures.
        """
        with self._condition:
            self._wait_resolved(timeout)
            if self._state == _CANCELLED:
                raise CancelledError()
            return self._exception

    def _wait_resolved(self, timeout: Optional[float]) -> None:
        """Wait (under the condition) until the future leaves PENDING/RUNNING."""
        if self._state in (_CANCELLED, _DONE):
            return
        if not self._condition.wait_for(
            lambda: self._state in (_CANCELLED, _DONE), timeout
        ):
            raise EngineError(f"future was not resolved within {timeout} s")

    def add_done_callback(self, callback: Callable[["EngineFuture"], None]) -> None:
        """Run ``callback(self)`` when the future resolves (immediately if it
        already has).  As with :class:`concurrent.futures.Future`, a raising
        callback is logged and swallowed — it must never be able to kill the
        dispatcher thread mid-batch."""
        with self._condition:
            if self._state not in (_CANCELLED, _DONE):
                self._callbacks.append(callback)
                return
        self._run_callbacks([callback])

    def map(self, transform: Callable[[Any], Any]) -> "EngineFuture":
        """A derived future resolving to ``transform(result)``.

        Exceptions and cancellation pass through unchanged; a ``transform``
        that raises resolves the derived future with that exception.
        Cancelling the derived future forwards to the source future.
        """
        derived = EngineFuture(source=self)

        def _chain(resolved: "EngineFuture") -> None:
            if resolved.cancelled():
                derived._mark_cancelled()
                return
            if resolved._exception is not None:
                derived._set_exception(resolved._exception)
                return
            try:
                derived._set_result(transform(resolved._result))
            except BaseException as error:  # noqa: BLE001 - stored, not swallowed
                derived._set_exception(error)

        self.add_done_callback(_chain)
        return derived

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self) -> bool:
        """Cancel the future if its batch has not started executing.

        Returns ``True`` if the future is (now) cancelled, ``False`` once it
        is running or resolved.  Cancelling a :meth:`map`-derived future
        forwards to its source, so the underlying batch item is pruned too.
        """
        source = self._source
        if source is not None:
            return source.cancel()
        return self._mark_cancelled()

    def _mark_cancelled(self) -> bool:
        with self._condition:
            if self._state == _CANCELLED:
                return True
            if self._state != _PENDING:
                return False
            self._state = _CANCELLED
            callbacks = self._drain_callbacks()
            self._condition.notify_all()
        self._run_callbacks(callbacks)
        return True

    # ------------------------------------------------------------------
    # Resolution (dispatcher side)
    # ------------------------------------------------------------------
    def _set_running(self) -> bool:
        """PENDING -> RUNNING; ``False`` if the future was cancelled first."""
        with self._condition:
            if self._state == _CANCELLED:
                return False
            self._state = _RUNNING
            return True

    def _set_result(self, value: Any) -> None:
        with self._condition:
            if self._state == _CANCELLED:
                return
            self._result = value
            self._state = _DONE
            callbacks = self._drain_callbacks()
            self._condition.notify_all()
        self._run_callbacks(callbacks)

    def _set_exception(self, error: BaseException) -> None:
        with self._condition:
            if self._state == _CANCELLED:
                return
            self._exception = error
            self._state = _DONE
            callbacks = self._drain_callbacks()
            self._condition.notify_all()
        self._run_callbacks(callbacks)

    def _drain_callbacks(self) -> List[Callable[["EngineFuture"], None]]:
        callbacks, self._callbacks = self._callbacks, []
        return callbacks

    def _run_callbacks(self, callbacks: Sequence[Callable[["EngineFuture"], None]]) -> None:
        for callback in callbacks:
            try:
                callback(self)
            except Exception:  # noqa: BLE001 - a callback must not kill the resolver
                logging.getLogger(__name__).exception(
                    "exception in EngineFuture done-callback %r", callback
                )

    def __repr__(self):
        with self._condition:
            state = self._state
        return f"EngineFuture({state})"


def gather(futures: Sequence[EngineFuture], timeout: Optional[float] = None) -> List[Any]:
    """Resolve many futures in order (a convenience around ``result()``).

    The per-future ``timeout`` applies to each resolution individually.
    """
    return [future.result(timeout) for future in futures]


# ----------------------------------------------------------------------------
# The per-engine dispatcher
# ----------------------------------------------------------------------------

class _Job:
    """One submitted batch: items, their futures, and the tier knobs."""

    __slots__ = ("kind", "items", "kwargs", "max_workers", "parallelism", "futures")

    def __init__(
        self,
        kind: str,
        items: Sequence[Any],
        kwargs: Dict[str, Any],
        max_workers: Optional[int],
        parallelism: Optional[str],
        futures: List[EngineFuture],
    ):
        self.kind = kind
        self.items = list(items)
        self.kwargs = kwargs
        self.max_workers = max_workers
        self.parallelism = parallelism
        self.futures = futures


_SHUTDOWN = object()


class AsyncDispatcher:
    """A persistent FIFO dispatcher feeding one engine's blocking tiers.

    One daemon thread per engine drains a bounded queue of :class:`_Job`
    batches and executes each through ``engine._dispatch_batch`` — the same
    code path blocking calls use, so pools persist, shard planning stays
    prefix-aware and cache merge-back works identically.  The engine is held
    through a weak reference: abandoning an engine without calling ``close()``
    lets it be collected, and a finalizer (installed by the engine) stops the
    thread.
    """

    def __init__(
        self,
        engine,
        max_pending: int = DEFAULT_MAX_PENDING,
        name: str = "engine-dispatcher",
    ):
        self._engine_ref = weakref.ref(engine)
        self._queue: "queue.Queue" = queue.Queue(maxsize=max(1, int(max_pending)))
        self._closed = False
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        items: Sequence[Any],
        kwargs: Dict[str, Any],
        max_workers: Optional[int] = None,
        parallelism: Optional[str] = None,
    ) -> List[EngineFuture]:
        """Enqueue one batch; returns one future per item, in item order.

        Blocks while the queue holds ``max_pending`` batches (backpressure).
        """
        with self._lock:
            if self._closed:
                raise EngineError("cannot submit to a closed dispatcher")
            futures = [EngineFuture() for _ in items]
            job = _Job(kind, items, dict(kwargs), max_workers, parallelism, futures)
        self._queue.put(job)
        if self._closed:
            # A shutdown raced this submit and the job may have landed behind
            # the sentinel, where it would never execute.  Cancel the futures:
            # ones the dispatcher did pick up are already RUNNING/DONE and
            # ignore this; the rest resolve as cancelled instead of hanging.
            for future in futures:
                future._mark_cancelled()
        return futures

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            job = self._queue.get()
            if job is _SHUTDOWN:
                break
            self._run_job(job)
            del job  # drop the engine/result references while idle

    def _run_job(self, job: _Job) -> None:
        # Prune items whose futures were cancelled before the batch started;
        # everything else transitions to RUNNING and is no longer cancellable.
        live = [index for index, future in enumerate(job.futures) if future._set_running()]
        if not live:
            return
        engine = self._engine_ref()
        if engine is None:
            error = EngineError("the engine owning this future was garbage-collected")
            for index in live:
                job.futures[index]._set_exception(error)
            return
        try:
            values = engine._dispatch_batch(
                job.kind,
                [job.items[index] for index in live],
                job.kwargs,
                job.max_workers,
                job.parallelism,
            )
            if len(values) != len(live):  # pragma: no cover - engine contract
                raise EngineError(
                    f"batch kind {job.kind!r} returned {len(values)} values for "
                    f"{len(live)} items"
                )
        except BaseException as error:  # noqa: BLE001 - propagated via futures
            for index in live:
                job.futures[index]._set_exception(error)
            return
        finally:
            del engine
        for index, value in zip(live, values):
            job.futures[index]._set_result(value)

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the dispatcher after draining already-queued batches.

        Safe to call multiple times and from finalizers; with ``wait`` the
        calling thread joins the dispatcher thread.
        """
        with self._lock:
            if self._closed:
                if wait and self._thread.is_alive():
                    self._thread.join()
                return
            self._closed = True
        self._queue.put(_SHUTDOWN)
        if wait:
            self._thread.join()
        # Cancel whatever is still queued so no future can hang: after a
        # joined shutdown these are only batches a racing submit enqueued
        # behind the sentinel; on the unjoined (finalizer) path this also
        # cancels not-yet-started batches — their engine is gone anyway.  If
        # the sentinel itself is drained first, it is put back so the
        # dispatcher thread still observes its exit signal.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is _SHUTDOWN:
                self._queue.put(job)
                break
            for future in job.futures:
                future._mark_cancelled()
