"""Future primitives for the engine layer's asynchronous submission API.

Blocking batch calls (:meth:`~repro.engine.base.ExecutionEngine.run_batch`,
:meth:`~repro.engine.base.ExecutionEngine.expectation_batch`) make the caller
wait for the whole batch before it can do anything else — which is exactly
wrong for sweep frontends like the window tuner, whose candidate *generation*
could overlap with candidate *execution*.  This module provides
:class:`EngineFuture`, the ordered handle the ``submit*`` API returns: it
wraps one in-flight result value, a raised exception, or cancellation, and
mirrors the :class:`concurrent.futures.Future` surface plus :meth:`map` for
derived views.

Execution of submitted batches is the job of the slot-based
:class:`~repro.engine.scheduler.BatchScheduler` (see
:mod:`repro.engine.scheduler` and ``docs/scheduler.md``), which resolves
these futures from its worker threads.

Determinism
-----------
Async submission changes *when* a batch executes, never *what* it computes:
each dispatched batch runs through the same ``_dispatch_batch`` path a
blocking call uses, and the content-derived seeding contract
(:func:`repro.engine.fingerprint.derive_seed`) makes every sampled value a
function of ``(engine seed, item content)`` rather than execution order.  A
seeded engine therefore returns bit-identical results whether a batch is
submitted asynchronously, blocked on, split across submissions, or
interleaved — or overlapped — with other batches.

Cancellation and errors
-----------------------
``EngineFuture.cancel()`` succeeds only while the future's batch has not
started executing (anything the scheduler has not yet dispatched is
cancellable).  Cancelled items are pruned from their batch before dispatch —
they cost nothing.  If executing a batch raises, the exception is stored on
every unresolved future of that batch and re-raised by
:meth:`EngineFuture.result`.
"""

from __future__ import annotations

import logging
import threading
from concurrent.futures import CancelledError
from typing import Any, Callable, List, Optional, Sequence

from ..exceptions import EngineError

__all__ = ["EngineFuture", "gather", "CancelledError"]

#: Default bound on queued (not yet executing) batches per engine; see
#: ``engine.max_pending_batches`` and ``docs/scheduler.md``.
DEFAULT_MAX_PENDING = 8

_PENDING = "pending"
_RUNNING = "running"
_CANCELLED = "cancelled"
_DONE = "done"


class EngineFuture:
    """An ordered handle to one in-flight engine result.

    Futures are created by the ``submit*`` methods and resolved by the
    engine's scheduler; user code only ever reads them.  The API mirrors
    :class:`concurrent.futures.Future` (``result`` / ``exception`` /
    ``cancel`` / ``done`` / ``add_done_callback``) plus :meth:`map` for
    deriving transformed views, and cancellation raises the standard
    :class:`concurrent.futures.CancelledError`.
    """

    def __init__(self, source: Optional["EngineFuture"] = None):
        self._condition = threading.Condition()
        self._state = _PENDING
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["EngineFuture"], None]] = []
        #: Upstream future this one was :meth:`map`-derived from (cancelling a
        #: derived future forwards to its source).
        self._source = source

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    def cancelled(self) -> bool:
        with self._condition:
            return self._state == _CANCELLED

    def running(self) -> bool:
        with self._condition:
            return self._state == _RUNNING

    def done(self) -> bool:
        """Whether the future is resolved (result, exception or cancelled)."""
        with self._condition:
            return self._state in (_CANCELLED, _DONE)

    # ------------------------------------------------------------------
    # Resolution (consumer side)
    # ------------------------------------------------------------------
    def result(self, timeout: Optional[float] = None) -> Any:
        """The resolved value; blocks until the batch lands.

        Raises :class:`concurrent.futures.CancelledError` if the future was
        cancelled, re-raises the batch's exception if execution failed, and
        raises :class:`~repro.exceptions.EngineError` on timeout.
        """
        with self._condition:
            self._wait_resolved(timeout)
            if self._state == _CANCELLED:
                raise CancelledError()
            if self._exception is not None:
                raise self._exception
            return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The exception execution raised, ``None`` on success.

        Like :meth:`result` this blocks until resolution and raises
        :class:`~concurrent.futures.CancelledError` for cancelled futures.
        """
        with self._condition:
            self._wait_resolved(timeout)
            if self._state == _CANCELLED:
                raise CancelledError()
            return self._exception

    def _wait_resolved(self, timeout: Optional[float]) -> None:
        """Wait (under the condition) until the future leaves PENDING/RUNNING."""
        if self._state in (_CANCELLED, _DONE):
            return
        if not self._condition.wait_for(
            lambda: self._state in (_CANCELLED, _DONE), timeout
        ):
            raise EngineError(f"future was not resolved within {timeout} s")

    def add_done_callback(self, callback: Callable[["EngineFuture"], None]) -> None:
        """Run ``callback(self)`` when the future resolves (immediately if it
        already has).  As with :class:`concurrent.futures.Future`, a raising
        callback is logged and swallowed — it must never be able to kill the
        scheduler thread mid-batch."""
        with self._condition:
            if self._state not in (_CANCELLED, _DONE):
                self._callbacks.append(callback)
                return
        self._run_callbacks([callback])

    def map(self, transform: Callable[[Any], Any]) -> "EngineFuture":
        """A derived future resolving to ``transform(result)``.

        Exceptions and cancellation pass through unchanged; a ``transform``
        that raises resolves the derived future with that exception.
        Cancelling the derived future forwards to the source future.
        """
        derived = EngineFuture(source=self)

        def _chain(resolved: "EngineFuture") -> None:
            if resolved.cancelled():
                derived._mark_cancelled()
                return
            if resolved._exception is not None:
                derived._set_exception(resolved._exception)
                return
            try:
                derived._set_result(transform(resolved._result))
            except BaseException as error:  # noqa: BLE001 - stored, not swallowed
                derived._set_exception(error)

        self.add_done_callback(_chain)
        return derived

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self) -> bool:
        """Cancel the future if its batch has not started executing.

        Returns ``True`` if the future is (now) cancelled, ``False`` once it
        is running or resolved.  Cancelling a :meth:`map`-derived future
        forwards to its source, so the underlying batch item is pruned too.
        """
        source = self._source
        if source is not None:
            return source.cancel()
        return self._mark_cancelled()

    def _mark_cancelled(self) -> bool:
        with self._condition:
            if self._state == _CANCELLED:
                return True
            if self._state != _PENDING:
                return False
            self._state = _CANCELLED
            callbacks = self._drain_callbacks()
            self._condition.notify_all()
        self._run_callbacks(callbacks)
        return True

    # ------------------------------------------------------------------
    # Resolution (scheduler side)
    # ------------------------------------------------------------------
    def _set_running(self) -> bool:
        """PENDING -> RUNNING; ``False`` if the future was cancelled first."""
        with self._condition:
            if self._state == _CANCELLED:
                return False
            self._state = _RUNNING
            return True

    def _set_result(self, value: Any) -> None:
        with self._condition:
            if self._state == _CANCELLED:
                return
            self._result = value
            self._state = _DONE
            callbacks = self._drain_callbacks()
            self._condition.notify_all()
        self._run_callbacks(callbacks)

    def _set_exception(self, error: BaseException) -> None:
        with self._condition:
            if self._state == _CANCELLED:
                return
            self._exception = error
            self._state = _DONE
            callbacks = self._drain_callbacks()
            self._condition.notify_all()
        self._run_callbacks(callbacks)

    def _drain_callbacks(self) -> List[Callable[["EngineFuture"], None]]:
        callbacks, self._callbacks = self._callbacks, []
        return callbacks

    def _run_callbacks(self, callbacks: Sequence[Callable[["EngineFuture"], None]]) -> None:
        for callback in callbacks:
            try:
                callback(self)
            except Exception:  # noqa: BLE001 - a callback must not kill the resolver
                logging.getLogger(__name__).exception(
                    "exception in EngineFuture done-callback %r", callback
                )

    def __repr__(self):
        with self._condition:
            state = self._state
        return f"EngineFuture({state})"


def gather(futures: Sequence[EngineFuture], timeout: Optional[float] = None) -> List[Any]:
    """Resolve many futures in order (a convenience around ``result()``).

    The per-future ``timeout`` applies to each resolution individually.
    """
    return [future.result(timeout) for future in futures]
