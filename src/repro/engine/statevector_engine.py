"""Ideal statevector execution engine.

Wraps :class:`~repro.simulators.statevector.StatevectorSimulator` behind the
:class:`~repro.engine.base.ExecutionEngine` API with a content-hash state
cache: repeated executions of the same bound circuit (VQE polish steps,
trajectory replays, parity tests) reuse the evolved statevector, and
expectation values are additionally memoised per observable.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..operators.pauli import PauliSum
from ..simulators.readout import probabilities_to_counts
from ..simulators.statevector import (
    StatevectorSimulator,
    measured_distribution_from_probabilities,
)
from .base import EngineResult, ExecutionEngine
from .density_engine import _LRUCache
from .fingerprint import circuit_fingerprint, circuit_hash_chain, observable_fingerprint


class StatevectorEngine(ExecutionEngine):
    """Cached, noise-free execution of logical circuits.

    Implements the process-tier worker protocol: logical circuits ship to
    worker processes whole (they pickle in a few hundred bytes), evolved
    statevectors and memoised expectation values are merged back into the
    parent's caches on return.  The asynchronous ``submit`` /
    ``submit_batch`` / ``submit_expectation_batch`` API is inherited
    unchanged from :class:`~repro.engine.base.ExecutionEngine` — exact
    expectations need no per-call kwargs beyond the observable.
    """

    name = "statevector"

    def __init__(
        self,
        seed: Optional[int] = None,
        state_cache_entries: int = 256,
        expectation_cache_entries: int = 4096,
    ):
        super().__init__(seed=seed)
        self.state_cache_entries = int(state_cache_entries)
        self.expectation_cache_entries = int(expectation_cache_entries)
        self._simulator = StatevectorSimulator()
        self._states = _LRUCache(state_cache_entries)
        self._expectations = _LRUCache(expectation_cache_entries)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _state_for(self, circuit: QuantumCircuit) -> Tuple[np.ndarray, str, bool]:
        fingerprint = circuit_fingerprint(circuit)
        with self._lock:
            self.stats.executions += 1
            cached = self._states.get(fingerprint)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached, fingerprint, True
            self.stats.cache_misses += 1
        state = self._simulator.run_statevector(circuit)
        state.flags.writeable = False
        with self._lock:
            self._states.put(fingerprint, state)
            self.stats.instructions_simulated += len(circuit.instructions)
        return state, fingerprint, False

    def run(self, circuit: QuantumCircuit) -> EngineResult:
        """Evolve ``circuit`` to its final statevector.

        As on every engine, ``result.probabilities`` is the outcome
        distribution over *classical bits* when the circuit measures
        (``None`` otherwise); use :meth:`probabilities` for the raw
        computational-basis distribution of the full register.
        Accepts an ingested program (:class:`repro.frontend.IngestedProgram`)
        in place of a circuit, as do all engine entry points.
        """
        circuit = self._resolve_program(circuit)
        state, fingerprint, from_cache = self._state_for(circuit)
        probabilities = None
        clbit_order = None
        measured = circuit.measured_qubits()
        if measured:
            probabilities = measured_distribution_from_probabilities(np.abs(state) ** 2, circuit)
            clbit_order = list(range(max(clbit for _, clbit in measured) + 1))
        return EngineResult(
            fingerprint=fingerprint,
            engine=self.name,
            state=state,
            probabilities=probabilities,
            clbit_order=clbit_order,
            from_cache=from_cache,
        )

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """Exact computational-basis distribution of the full register
        (measurement instructions are irrelevant here; compare
        ``result.probabilities``, which marginalises onto classical bits)."""
        state, _, _ = self._state_for(self._resolve_program(circuit))
        return np.abs(state) ** 2

    def counts(
        self, circuit: QuantumCircuit, shots: int = 4096, seed: Optional[int] = None
    ) -> Dict[str, int]:
        """Sampled counts under the engine seeding contract."""
        circuit = self._resolve_program(circuit)
        rng = self._sampling_rng(seed, "counts", circuit_fingerprint(circuit), str(shots))
        state, _, _ = self._state_for(circuit)
        distribution = measured_distribution_from_probabilities(np.abs(state) ** 2, circuit)
        return probabilities_to_counts(distribution, shots, rng=rng)

    # ------------------------------------------------------------------
    def expectation(
        self,
        circuit: QuantumCircuit,
        observable: PauliSum,
        shots: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> float:
        """Exact ``<psi|H|psi>`` (the ideal engine ignores ``shots``/``seed``)."""
        from ..exceptions import SimulationError

        circuit = self._resolve_program(circuit)
        bare = circuit.remove_final_measurements()
        if bare.num_qubits != observable.num_qubits:
            raise SimulationError(
                f"observable acts on {observable.num_qubits} qubits, circuit has {bare.num_qubits}"
            )
        key = (circuit_fingerprint(bare), observable_fingerprint(observable))
        with self._lock:
            self.stats.expectation_calls += 1
            cached = self._expectations.get(key)
        if cached is not None:
            with self._lock:
                self.stats.expectation_cache_hits += 1
            return cached
        state, _, _ = self._state_for(bare)
        value = float(observable.expectation_from_statevector(state))
        with self._lock:
            self._expectations.put(key, value)
        return value

    # ------------------------------------------------------------------
    # Process-tier worker protocol (see repro.engine.parallel)
    # ------------------------------------------------------------------
    def _process_spec(self):
        from .parallel import EngineWorkerSpec

        return EngineWorkerSpec(
            engine_class=type(self),
            kwargs={
                "seed": self.seed,
                "state_cache_entries": self.state_cache_entries,
                "expectation_cache_entries": self.expectation_cache_entries,
            },
            cache_key=f"{self.name}:{self.seed}",
        )

    def _shard_chain(self, kind: str, circuit: QuantumCircuit) -> List[str]:
        return circuit_hash_chain(circuit)

    def _worker_execute(self, kind: str, item, kwargs):
        from .parallel import CacheRecord

        result = self._serial_call(kind, item, kwargs)
        records = []
        if kind == "run":
            fingerprint = circuit_fingerprint(item)
            with self._lock:
                state = self._states.get(fingerprint)
            if state is not None:
                records.append(CacheRecord("state", fingerprint, state, int(state.nbytes)))
        elif kind == "expectation":
            bare = item.remove_final_measurements()
            bare_fingerprint = circuit_fingerprint(bare)
            key = (bare_fingerprint, observable_fingerprint(kwargs["observable"]))
            with self._lock:
                state = self._states.get(bare_fingerprint)
                value = self._expectations.get(key)
            if state is not None:
                records.append(CacheRecord("state", bare_fingerprint, state, int(state.nbytes)))
            if value is not None:
                records.append(CacheRecord("expectation", key, value))
        return result, records

    def _is_locally_cached(self, kind: str, item, kwargs, chain) -> bool:
        with self._lock:
            if kind == "run":
                return self._states.get(circuit_fingerprint(item)) is not None
            if kind == "expectation":
                bare = item.remove_final_measurements()
                key = (circuit_fingerprint(bare), observable_fingerprint(kwargs["observable"]))
                return self._expectations.get(key) is not None
        return False

    def _absorb_records(self, records) -> None:
        with self._lock:
            for record in records:
                if record.kind == "state":
                    state = np.asarray(record.value)
                    state.flags.writeable = False
                    self._states.put(record.key, state)
                elif record.kind == "expectation":
                    self._expectations.put(record.key, record.value)

    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop the cached statevectors and memoised expectation values."""
        with self._lock:
            self._states.clear()
            self._expectations.clear()
