"""Ideal statevector execution engine.

Wraps :class:`~repro.simulators.statevector.StatevectorSimulator` behind the
:class:`~repro.engine.base.ExecutionEngine` API with a content-hash state
cache: repeated executions of the same bound circuit (VQE polish steps,
trajectory replays, parity tests) reuse the evolved statevector, and
expectation values are additionally memoised per observable.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..operators.pauli import PauliSum
from ..simulators.readout import probabilities_to_counts
from ..simulators.statevector import (
    StatevectorSimulator,
    measured_distribution_from_probabilities,
)
from .base import EngineResult, ExecutionEngine
from .density_engine import _LRUCache
from .fingerprint import circuit_fingerprint, observable_fingerprint


class StatevectorEngine(ExecutionEngine):
    """Cached, noise-free execution of logical circuits."""

    name = "statevector"

    def __init__(
        self,
        seed: Optional[int] = None,
        state_cache_entries: int = 256,
        expectation_cache_entries: int = 4096,
    ):
        super().__init__(seed=seed)
        self._simulator = StatevectorSimulator()
        self._states = _LRUCache(state_cache_entries)
        self._expectations = _LRUCache(expectation_cache_entries)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _state_for(self, circuit: QuantumCircuit) -> Tuple[np.ndarray, str, bool]:
        fingerprint = circuit_fingerprint(circuit)
        with self._lock:
            self.stats.executions += 1
            cached = self._states.get(fingerprint)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached, fingerprint, True
            self.stats.cache_misses += 1
        state = self._simulator.run_statevector(circuit)
        state.flags.writeable = False
        with self._lock:
            self._states.put(fingerprint, state)
            self.stats.instructions_simulated += len(circuit.instructions)
        return state, fingerprint, False

    def run(self, circuit: QuantumCircuit) -> EngineResult:
        """Evolve ``circuit`` to its final statevector.

        As on every engine, ``result.probabilities`` is the outcome
        distribution over *classical bits* when the circuit measures
        (``None`` otherwise); use :meth:`probabilities` for the raw
        computational-basis distribution of the full register.
        """
        state, fingerprint, from_cache = self._state_for(circuit)
        probabilities = None
        clbit_order = None
        measured = circuit.measured_qubits()
        if measured:
            probabilities = measured_distribution_from_probabilities(np.abs(state) ** 2, circuit)
            clbit_order = list(range(max(clbit for _, clbit in measured) + 1))
        return EngineResult(
            fingerprint=fingerprint,
            engine=self.name,
            state=state,
            probabilities=probabilities,
            clbit_order=clbit_order,
            from_cache=from_cache,
        )

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        state, _, _ = self._state_for(circuit)
        return np.abs(state) ** 2

    def counts(
        self, circuit: QuantumCircuit, shots: int = 4096, seed: Optional[int] = None
    ) -> Dict[str, int]:
        """Sampled counts under the engine seeding contract."""
        rng = self._sampling_rng(seed, "counts", circuit_fingerprint(circuit), str(shots))
        state, _, _ = self._state_for(circuit)
        distribution = measured_distribution_from_probabilities(np.abs(state) ** 2, circuit)
        return probabilities_to_counts(distribution, shots, rng=rng)

    # ------------------------------------------------------------------
    def expectation(
        self, circuit: QuantumCircuit, observable: PauliSum, shots: Optional[int] = None
    ) -> float:
        """Exact ``<psi|H|psi>`` (the ideal engine ignores ``shots``)."""
        from ..exceptions import SimulationError

        bare = circuit.remove_final_measurements()
        if bare.num_qubits != observable.num_qubits:
            raise SimulationError(
                f"observable acts on {observable.num_qubits} qubits, circuit has {bare.num_qubits}"
            )
        key = (circuit_fingerprint(bare), observable_fingerprint(observable))
        with self._lock:
            self.stats.expectation_calls += 1
            cached = self._expectations.get(key)
        if cached is not None:
            with self._lock:
                self.stats.expectation_cache_hits += 1
            return cached
        state, _, _ = self._state_for(bare)
        value = float(observable.expectation_from_statevector(state))
        with self._lock:
            self._expectations.put(key, value)
        return value

    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        with self._lock:
            self._states.clear()
            self._expectations.clear()
