"""Commutation-aware canonicalisation of schedule processing order.

The simulator walks a schedule's instructions in *processing order*.  Any
order consistent with the schedule's timing semantics is mathematically
valid, but the order is also what the engine's content keys are built from:
the schedule hash chain (:mod:`repro.engine.fingerprint`) digests the
processing order instruction by instruction, and every prefix checkpoint,
result-cache key, shard chain and scheduler conflict key derives from it.
Two schedules that differ only in a *benign* permutation of their
instructions — e.g. the same content assembled by different construction
paths, or commuting same-start gates listed in a different order — used to
produce different chains and therefore shared nothing.

This module defines a **canonical processing order** that is a pure function
of schedule *content*: schedules that are equal up to reordering of
provably-commuting instructions canonicalise to the identical instruction
sequence, hence identical chains, checkpoints and cache lines.  Because the
simulator *executes* the canonical order (see
:meth:`~repro.simulators.noisy_simulator.NoisySimulator.prepare`), a prefix
checkpoint taken at canonical depth ``k`` of one schedule seeds any other
schedule with the same canonical ``k``-prefix **bit-identically** — both
executions process the exact same instruction sequence from the same initial
state, so resumed evolution cannot diverge even at the ULP level.

Commutation rules
-----------------
Two instructions may swap in processing order only when the simulator's
per-instruction effects provably commute.  Processing an instruction applies
(a) idle-noise channels for the gap each of its qubits spent waiting —
including two-qubit ZZ-crosstalk channels with *coupled neighbour positions*
that idled alongside — and (b) the gate unitary plus its noise channels on
the instruction's own qubits.  The rules are therefore footprint-based:

* **Disjoint footprints.**  An instruction's *footprint* is the set of
  circuit positions its processing touches: its own qubits plus every
  ZZ-partner position of its idle gaps (a coupled neighbour with a nonzero
  ZZ rate that idles through at least half of the gap — the exact condition
  the simulator applies crosstalk under).  Instructions with disjoint
  footprints act on disjoint state factors, so every channel they apply
  commutes exactly.
* **Same-qubit diagonal runs.**  Instructions on the *same* qubits commute
  when both are diagonal in the computational basis (``rz``, ``z``, ``s``,
  ``t``, …), both are zero-duration, both start at the same time and neither
  footprint carries a crosstalk partner: diagonal unitaries commute with
  each other, zero-duration instructions at one instant leave the idle-gap
  bookkeeping identical under either order, and with no ZZ partner in play
  the gap's idle channels are confined to the pair's own qubits, so other
  instructions interleaved between the two cannot observe the swap.

Everything else keeps its time order: per-qubit instruction sequences are
never reordered (their idle gaps depend on it), and a ZZ-coupled pair stays
put (the crosstalk channel does not commute with its partner's gates).

The canonical order itself is the greedy topological linearisation of the
commutation DAG under a deterministic content key (:func:`canonical_sort_key`):
time-major, with DD-shaped single-qubit ``x``/``y`` pulses deferred for as
long as their dependencies allow.  Deferring pulses is what makes window-tuner
candidate families share long canonical prefixes — every instruction that
commutes past a candidate's pulses is emitted *before* them, identically
across all candidates of the sweep — and it is a pure content rule, so the
order stays a function of the schedule alone.

Determinism notes
-----------------
The canonical order must be identical wherever it is computed (parent
process, pool workers, different sessions), so it uses only schedule content:
instruction tokens, timing, the device's coupling map and ZZ rates.  One
deliberate exception: instructions on the *same* qubit at the *same* start
time that do not satisfy the diagonal rule are genuinely order-sensitive, and
their relative order in ``ScheduledCircuit.timed_instructions`` is treated as
part of the schedule's content (it already determined simulation results
before canonicalisation existed).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..transpiler.scheduling import ScheduledCircuit, TimedInstruction

__all__ = [
    "DIAGONAL_GATES",
    "canonical_order",
    "canonical_sort_key",
    "commutation_dag",
    "commutes",
    "instruction_footprints",
]

#: Gates diagonal in the computational basis: their unitaries commute with
#: each other, and the noise model attaches no channel to the error-free ones
#: (``rz``/``p``), which is what makes the same-qubit diagonal rule exact.
DIAGONAL_GATES = frozenset({"rz", "p", "z", "s", "sdg", "t", "tdg", "id"})

#: Idle gaps at or below this length apply no idle noise (the simulator's own
#: threshold); they contribute no ZZ partners to a footprint.
_IDLE_EPSILON = 1e-9


#: The simulator's own busy-interval and idle-overlap arithmetic, resolved
#: lazily (the simulator imports this module inside ``prepare``) and shared
#: so the footprint rule can never drift from the idle accounting it must
#: reproduce bit for bit.
_SIMULATOR_HELPERS: Optional[Tuple] = None


def _simulator_helpers() -> Tuple:
    global _SIMULATOR_HELPERS
    if _SIMULATOR_HELPERS is None:
        from ..simulators.noisy_simulator import NoisySimulator

        _SIMULATOR_HELPERS = (NoisySimulator._busy_intervals, NoisySimulator._idle_overlap)
    return _SIMULATOR_HELPERS


def _busy_intervals(scheduled: "ScheduledCircuit") -> Dict[int, List[Tuple[float, float]]]:
    """Per-position busy intervals (the simulator's own definition)."""
    return _simulator_helpers()[0](scheduled)


def _coupled_positions(scheduled: "ScheduledCircuit") -> Dict[int, List[int]]:
    """Coupled neighbour positions with a nonzero ZZ rate, per position."""
    device = scheduled.device
    phys_to_pos = {p: i for i, p in enumerate(scheduled.physical_qubits)}
    coupled: Dict[int, List[int]] = {q: [] for q in range(scheduled.num_qubits)}
    for position, physical in enumerate(scheduled.physical_qubits):
        for neighbor in device.neighbors(physical):
            other = phys_to_pos.get(neighbor)
            if other is not None and device.zz_rate(physical, neighbor):
                coupled[position].append(other)
    return coupled


def _idle_overlap(busy: Sequence[Tuple[float, float]], start: float, end: float) -> float:
    """Length of ``[start, end]`` during which the busy list leaves a qubit
    idle (the simulator's own arithmetic)."""
    return _simulator_helpers()[1](busy, start, end)


def instruction_footprints(
    scheduled: "ScheduledCircuit", ordered: Sequence["TimedInstruction"]
) -> List[FrozenSet[int]]:
    """The set of circuit positions each instruction's processing touches.

    ``ordered`` must be time-sorted (any stable tie order).  An instruction's
    footprint is its own qubits plus the ZZ-partner positions of the idle
    gaps its processing applies — mirroring exactly the condition under which
    :meth:`NoisySimulator._idle_ops` emits a two-qubit crosstalk channel: a
    coupled neighbour with a nonzero ZZ rate that idles through at least half
    of the gap.  Barriers touch every position (they are pure ordering
    markers and must never be commuted past).

    The footprint is a pure function of schedule content: each qubit's gap
    before an instruction is delimited by that qubit's *previous* instruction
    in time order (or its first activity), which no commuting reorder can
    change.  ZZ partners are computed against the device's full-model
    coupling regardless of which noise flags are currently enabled —
    conservative for reduced noise models, which keeps one canonical order
    per schedule rather than one per flag combination.
    """
    busy = _busy_intervals(scheduled)
    idle_overlap = _simulator_helpers()[1]
    coupled = _coupled_positions(scheduled)
    all_positions = frozenset(range(scheduled.num_qubits))

    # Idle tracking starts at each qubit's first activity, as in the simulator.
    last_time: Dict[int, float] = {}
    for position in range(scheduled.num_qubits):
        ops = [t for t in ordered if position in t.qubits and t.name != "barrier"]
        last_time[position] = min((t.start_ns for t in ops), default=0.0)

    footprints: List[FrozenSet[int]] = []
    for timed in ordered:
        if timed.name == "barrier":
            footprints.append(all_positions)
            continue
        touched = set(timed.qubits)
        for position in timed.qubits:
            gap_start, gap_end = last_time[position], timed.start_ns
            gap = gap_end - gap_start
            if gap > _IDLE_EPSILON:
                for other in coupled[position]:
                    if idle_overlap(busy[other], gap_start, gap_end) >= 0.5 * gap:
                        touched.add(other)
        for position in timed.qubits:
            last_time[position] = timed.end_ns
        footprints.append(frozenset(touched))
    return footprints


def _diagonal_exempt(
    a: "TimedInstruction",
    b: "TimedInstruction",
    footprint_a: FrozenSet[int],
    footprint_b: FrozenSet[int],
) -> bool:
    """Whether the same-qubit diagonal rule lets ``a`` and ``b`` swap.

    The footprint conditions demand crosstalk-free gaps: whichever member is
    processed first applies the pair's (shared) idle gap, and only when that
    gap has no ZZ partner is the swap unobservable to instructions
    interleaved between the two.
    """
    return (
        a.qubits == b.qubits
        and a.name in DIAGONAL_GATES
        and b.name in DIAGONAL_GATES
        and a.duration_ns == 0.0
        and b.duration_ns == 0.0
        and a.start_ns == b.start_ns
        and footprint_a == frozenset(a.qubits)
        and footprint_b == frozenset(b.qubits)
    )


def commutes(
    a: "TimedInstruction",
    b: "TimedInstruction",
    footprint_a: FrozenSet[int],
    footprint_b: FrozenSet[int],
) -> bool:
    """Whether two instructions may swap in processing order.

    Either their footprints are disjoint (all applied channels act on
    disjoint state factors) or the same-qubit diagonal rule applies.
    """
    if not (footprint_a & footprint_b):
        return True
    return _diagonal_exempt(a, b, footprint_a, footprint_b)


def commutation_dag(
    scheduled: "ScheduledCircuit",
    ordered: Sequence["TimedInstruction"],
    footprints: Optional[Sequence[FrozenSet[int]]] = None,
) -> Tuple[List[int], List[List[int]]]:
    """The ordering constraints between instructions, as a DAG.

    Returns ``(pred_counts, successors)`` over indices into ``ordered``
    (time-sorted).  An edge ``i -> j`` (``i`` before ``j`` in time order)
    exists when the pair's footprints intersect and the diagonal exemption
    does not apply; edges are emitted between each instruction and the
    current *frontier* of every position it touches, so a run of mutually
    exempt instructions all constrain their first non-exempt successor.
    """
    if footprints is None:
        footprints = instruction_footprints(scheduled, ordered)
    count = len(ordered)
    pred_counts = [0] * count
    successors: List[List[int]] = [[] for _ in range(count)]
    # Whether an instruction can participate in a diagonal run at all
    # (precomputed so the common non-diagonal case costs one flag check).
    exemptable = [
        timed.name in DIAGONAL_GATES
        and timed.duration_ns == 0.0
        and footprints[index] == frozenset(timed.qubits)
        for index, timed in enumerate(ordered)
    ]
    # Per-position frontier: the current *run* of mutually-exempt
    # instructions on the position, plus the run before it (the edge sources
    # every new run member must be ordered after).  An instruction exempt
    # with the whole current run joins it — inheriting the run's predecessor
    # edges, so no run member can float ahead of what precedes the run — and
    # a non-exempt instruction closes the run and starts its own.
    run: Dict[int, List[int]] = {}
    run_preds: Dict[int, List[int]] = {}

    def _link(i: int, j: int, linked: set) -> None:
        if i not in linked:
            linked.add(i)
            successors[i].append(j)
            pred_counts[j] += 1

    for j in range(count):
        linked: set = set()
        timed_j = ordered[j]
        for position in footprints[j]:
            members = run.get(position, [])
            if (
                members
                and exemptable[j]
                and all(
                    exemptable[i]
                    and ordered[i].qubits == timed_j.qubits
                    and ordered[i].start_ns == timed_j.start_ns
                    for i in members
                )
            ):
                for i in run_preds.get(position, ()):
                    _link(i, j, linked)
                members.append(j)
                continue
            for i in members:
                _link(i, j, linked)
            run_preds[position] = members
            run[position] = [j]
    return pred_counts, successors


def canonical_sort_key(timed: "TimedInstruction") -> Tuple:
    """The deterministic content key greedy linearisation minimises.

    Time-major (instructions are emitted in schedule order wherever
    commutation does not say otherwise), measurements after same-start gates
    (matching :meth:`ScheduledCircuit.sorted_instructions`), and DD-shaped
    single-qubit ``x``/``y`` pulses deferred behind everything they commute
    with: window-tuner candidates differ precisely in such pulses, so
    emitting the commuting *shared* surroundings first maximises the
    canonical prefix the whole candidate family has in common.  The trailing
    fields spell the full instruction content (the same fields
    :func:`~repro.engine.fingerprint.timed_instruction_token` digests), so
    equal keys imply identical instructions.
    """
    instruction = timed.instruction
    gate = instruction.gate
    name = gate.name
    return (
        1 if (name in ("x", "y") and len(instruction.qubits) == 1) else 0,
        timed.start_ns,
        name == "measure",
        name,
        tuple(repr(param) for param in gate.params),
        instruction.qubits,
        instruction.clbits,
        timed.duration_ns,
    )


def canonical_order(
    scheduled: "ScheduledCircuit",
    ordered: Optional[Sequence["TimedInstruction"]] = None,
) -> List["TimedInstruction"]:
    """The canonical processing order of a schedule.

    Greedy topological linearisation of :func:`commutation_dag` under
    :func:`canonical_sort_key`: of all instructions whose predecessors have
    been emitted, the smallest key is emitted next.  The result is a pure
    function of schedule content — idempotent, and invariant under any input
    permutation of commuting instructions — and is what
    :meth:`NoisySimulator.prepare <repro.simulators.noisy_simulator.NoisySimulator.prepare>`
    executes, so canonical chain prefixes identify bit-identically replayable
    evolution prefixes.
    """
    if ordered is None:
        ordered = scheduled.sorted_instructions()
    count = len(ordered)
    if count <= 1:
        return list(ordered)
    pred_counts, successors = commutation_dag(scheduled, ordered)
    # The index tiebreak keeps the heap total-ordered; two entries can only
    # tie on the full key when their tokens are identical, where either order
    # yields the same canonical sequence.
    ready = [
        (canonical_sort_key(ordered[i]), i) for i in range(count) if pred_counts[i] == 0
    ]
    heapq.heapify(ready)
    out: List["TimedInstruction"] = []
    while ready:
        _, i = heapq.heappop(ready)
        out.append(ordered[i])
        for j in successors[i]:
            pred_counts[j] -= 1
            if pred_counts[j] == 0:
                heapq.heappush(ready, (canonical_sort_key(ordered[j]), j))
    if len(out) != count:  # pragma: no cover - the DAG is acyclic by construction
        raise RuntimeError("commutation DAG linearisation lost instructions")
    return out
