"""Multi-core process-pool execution tier for the engine layer.

The thread fan-out in :meth:`~repro.engine.base.ExecutionEngine.run_batch`
only helps while numpy holds the heavy contractions; for the small states the
paper's workloads use (4-7 qubits) the Python interpreter dominates and the
GIL serialises everything.  This module adds a *process* tier that scales a
batch across cores while preserving every engine guarantee (order stability,
the content-derived seeding contract, bit-identical ``shots=None`` values).

The design has three parts (see ``docs/architecture.md`` for the full
picture):

**Picklable worker protocol.**  An engine describes how to rebuild itself in
a worker process as an :class:`EngineWorkerSpec` — the engine class plus its
(picklable) constructor arguments, tagged with a stable ``cache_key``.  Each
worker process builds its engine once, in the pool initializer, and keeps it
alive across shards, so worker-side result caches stay warm for the whole
sweep.  Reuse caches (prefix snapshots, segment records) are reset at shard
start via the engine's ``_begin_shard`` hook: shard-to-worker placement is
not deterministic, and carrying reuse state across shards would make the
stats counters depend on which worker happened to run a sibling shard.  Work ships as :class:`ShardTask` objects carrying the
serialized schedule content (deduplicated per content fingerprint) and comes
back as a :class:`ShardOutcome`: the per-item results, the worker's new cache
entries (:class:`CacheRecord`) and its stats counters delta.

**Prefix-aware shard scheduler.**  :func:`plan_shards` groups batch items so
checkpoint reuse survives the process boundary: items are ordered by their
schedule hash chain — which digests the commutation-aware canonical
processing order (:mod:`repro.engine.canonical`), so schedules sharing a
processing prefix become neighbours even when their instruction lists were
assembled in different but commuting orders; window-tuner candidates
differing inside one idle window cluster together — and the ordered list is
cut into contiguous shards
balanced by *marginal* simulation cost, i.e. the instructions an item adds
beyond its predecessor's shared prefix.  Duplicates have zero marginal cost
and always land in the shard that already simulates their content.

**Cache merge-on-return.**  Workers export each cache entry they produce at
most once (final states, expectation values, transpilations); the parent
merges the records into its own content-hash caches and folds the stats
deltas into its counters, so a process-parallel sweep leaves the parent
engine exactly as warm as a serial one.

Nothing here is engine-specific: the engines plug in through small hooks
(``_process_spec``, ``_shard_chain``, ``_worker_execute``,
``_absorb_records``) defined on :class:`~repro.engine.base.ExecutionEngine`.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import weakref
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..exceptions import EngineError

#: The accepted ``parallelism=`` values, in increasing isolation order.
PARALLELISM_MODES = ("serial", "thread", "process")


# ----------------------------------------------------------------------------
# Parallelism plans
# ----------------------------------------------------------------------------

@dataclass(frozen=True)
class ParallelismPlan:
    """A resolved execution strategy for one batch call."""

    mode: str
    workers: int

    def thread_fallback(self) -> "ParallelismPlan":
        """The plan an engine without process support degrades to."""
        return ParallelismPlan("thread", self.workers)


def default_worker_count() -> int:
    """Worker count used when ``max_workers`` is not given (one per core)."""
    return os.cpu_count() or 1


def resolve_parallelism(
    parallelism: Optional[str], max_workers: Optional[int], num_items: int
) -> ParallelismPlan:
    """Resolve the ``(parallelism, max_workers)`` knobs into a concrete plan.

    ``parallelism=None`` runs serially.  Historically ``max_workers > 1``
    with ``parallelism=None`` implicitly selected the thread pool; that
    implicit tier selection (a sizing knob silently coupled to a semantics
    knob) went through a :class:`DeprecationWarning` cycle and has been
    **removed** — it now raises :class:`~repro.exceptions.EngineError`; pass
    ``parallelism="thread"`` (or ``"process"``) explicitly, see the migration
    notes in ``docs/api.md``.  An explicit mode uses ``max_workers`` as the
    worker count (default: one per core).  Degenerate requests (single-item
    batches, one worker) collapse to the serial plan, which is behaviourally
    identical and avoids pool overhead.
    """
    if parallelism is None:
        if max_workers is not None and max_workers > 1:
            raise EngineError(
                "passing max_workers > 1 without parallelism= used to implicitly "
                "select the thread tier; that deprecated behaviour has been "
                "removed — pass parallelism='thread' (or 'process') explicitly.  "
                "See the migration notes in docs/api.md."
            )
        mode = "serial"
    elif parallelism in PARALLELISM_MODES:
        mode = parallelism
    else:
        raise EngineError(
            f"unknown parallelism mode '{parallelism}' (expected one of {PARALLELISM_MODES})"
        )
    if mode == "serial":
        return ParallelismPlan("serial", 1)
    workers = default_worker_count() if max_workers is None else int(max_workers)
    workers = max(1, min(workers, max(1, num_items)))
    if workers <= 1 or num_items <= 1:
        return ParallelismPlan("serial", 1)
    return ParallelismPlan(mode, workers)


# ----------------------------------------------------------------------------
# Prefix-aware shard planning
# ----------------------------------------------------------------------------

def common_prefix_length(a: Sequence[str], b: Sequence[str]) -> int:
    """Length of the shared leading run of two hash chains."""
    limit = min(len(a), len(b))
    for index in range(limit):
        if a[index] != b[index]:
            return index
    return limit


def plan_shards(
    chains: Sequence[Sequence[str]],
    num_shards: int,
    segment_keys: Optional[Sequence[Optional[Sequence[str]]]] = None,
) -> List[List[int]]:
    """Group batch items into shards that keep reuse opportunities together.

    ``chains[i]`` is item *i*'s hash chain (``chain[k]`` identifies its first
    ``k`` processing steps; see :mod:`repro.engine.fingerprint`).  Items are
    sorted by chain so shared prefixes become contiguous, then cut into at
    most ``num_shards`` contiguous groups balanced by marginal cost: the
    first item of a shard costs its full simulation (the worker starts with
    cold caches), every later item only the work its predecessors have not
    already warmed.  Content-identical items have zero marginal cost and are
    never split across shards.  Returns the shards as lists of original item
    indices; every shard is non-empty.

    Without ``segment_keys`` the marginal cost is the chain length beyond the
    prefix shared with the sorted predecessor (a checkpoint resume).  With
    ``segment_keys`` — item *i*'s segment content keys, from the engine's
    ``_shard_segment_keys`` hook (see :mod:`repro.engine.segments`) — the
    marginal cost is the number of segment keys not yet seen in the sorted
    order: a worker computes each distinct segment once however the prefixes
    line up, so *novel segments*, not chain overhang, is what an item really
    costs.  Any ``None`` entry disables the segment costing (mixed batches
    fall back to chains).
    """
    count = len(chains)
    if count == 0:
        return []
    num_shards = max(1, min(int(num_shards), count))
    order = sorted(range(count), key=lambda i: tuple(chains[i]))
    use_segments = (
        segment_keys is not None
        and len(segment_keys) == count
        and all(keys is not None for keys in segment_keys)
    )

    marginal: List[int] = []
    if use_segments:
        seen: set = set()
        for position, index in enumerate(order):
            keys = segment_keys[index]
            if position and tuple(chains[index]) == tuple(chains[order[position - 1]]):
                marginal.append(0)  # content-identical: never split
            else:
                marginal.append(sum(1 for key in keys if key not in seen))
            seen.update(keys)
    else:
        for position, index in enumerate(order):
            if position == 0:
                marginal.append(len(chains[index]))
            else:
                previous = chains[order[position - 1]]
                shared = common_prefix_length(chains[index], previous)
                marginal.append(max(1, len(chains[index]) - shared) if shared < len(chains[index]) else 0)
    total = sum(marginal) or 1
    target = total / num_shards

    def full_cost(index: int) -> float:
        # The first item of a shard pays its full simulation cost: the new
        # worker has no checkpoint or segment cache for anything the sort
        # placed before it.
        if use_segments:
            return float(len(set(segment_keys[index])))
        return float(len(chains[index]))

    shards: List[List[int]] = []
    current: List[int] = []
    current_cost = 0.0
    for position, index in enumerate(order):
        cost = full_cost(index) if not current else marginal[position]
        boundary_allowed = (
            current
            and len(shards) < num_shards - 1
            and marginal[position] > 0  # never split content-identical items
            and current_cost >= target
        )
        if boundary_allowed:
            shards.append(current)
            current = [index]
            current_cost = full_cost(index)
        else:
            current.append(index)
            current_cost += cost
    if current:
        shards.append(current)
    return shards


# ----------------------------------------------------------------------------
# Worker protocol payloads
# ----------------------------------------------------------------------------

@dataclass(frozen=True)
class EngineWorkerSpec:
    """How to rebuild an engine inside a worker process.

    ``engine_class`` is pickled by reference and ``kwargs`` must contain only
    picklable values (noise models, devices and seeds all are).  ``cache_key``
    is a stable digest of everything execution-relevant; the parent keys its
    persistent pool on it, so e.g. toggling a noise-model flag retires the
    now-stale workers and spawns fresh ones.
    """

    engine_class: type
    kwargs: Dict[str, Any]
    cache_key: str

    def build(self):
        return self.engine_class(**self.kwargs)


@dataclass(frozen=True)
class CacheRecord:
    """One worker-produced cache entry, merged into the parent on return.

    ``kind`` selects the destination cache (engine-specific: final states,
    expectation values, transpilations); ``key`` is the content-hash cache
    key and ``nbytes`` the byte footprint for budget-evicting stores.
    """

    kind: str
    key: Any
    value: Any
    nbytes: int = 0

    @property
    def dedup_key(self) -> Tuple[str, Any]:
        return (self.kind, self.key)


@dataclass
class ShardTask:
    """One worker work unit: serialized content plus item assignments.

    ``payloads`` holds each distinct circuit/schedule once (items are
    deduplicated by content fingerprint before shipping); ``items`` maps each
    original batch index to its payload slot, preserving duplicates without
    re-serializing them.
    """

    kind: str
    kwargs: Dict[str, Any]
    payloads: List[Any]
    items: List[Tuple[int, int]]  # (original batch index, payload slot)


@dataclass
class ShardOutcome:
    """Everything a worker sends back for one shard."""

    results: List[Tuple[int, Any]]
    records: List[CacheRecord] = field(default_factory=list)
    stats_delta: Dict[str, Dict[str, int]] = field(default_factory=dict)


# ----------------------------------------------------------------------------
# Worker-side execution (runs in the pool processes)
# ----------------------------------------------------------------------------

#: The per-process engine, built once by the pool initializer.
_WORKER_ENGINE = None
#: Cache-record keys this worker already shipped back (entries are exported
#: at most once per worker lifetime; the parent keeps them from then on).
_WORKER_EXPORTED: set = set()


def _initialise_worker(spec: EngineWorkerSpec) -> None:
    global _WORKER_ENGINE, _WORKER_EXPORTED
    _WORKER_ENGINE = spec.build()
    _WORKER_EXPORTED = set()


def _stats_snapshot(engine) -> Dict[str, Dict[str, int]]:
    """Raw counter values of every stats object the engine registers."""
    return {
        name: dataclasses.asdict(stats) for name, stats in engine._stats_registry().items()
    }


def _stats_delta(
    after: Dict[str, Dict[str, int]], before: Dict[str, Dict[str, int]]
) -> Dict[str, Dict[str, int]]:
    delta: Dict[str, Dict[str, int]] = {}
    for name, counters in after.items():
        base = before.get(name, {})
        changed = {
            key: value - base.get(key, 0) for key, value in counters.items()
            if value != base.get(key, 0)
        }
        if changed:
            delta[name] = changed
    return delta


def _execute_shard(task: ShardTask) -> ShardOutcome:
    """Run one shard on the process-local engine (the pool's task function)."""
    engine = _WORKER_ENGINE
    if engine is None:  # pragma: no cover - defensive; initializer always ran
        raise EngineError("worker process was not initialised with an engine spec")
    # Reset per-shard reuse caches (prefix snapshots, segment records) so the
    # shard's counter delta depends only on shard content, never on which
    # pooled worker process happened to run earlier shards.  Without this the
    # reuse counters would vary with shard->worker placement.
    begin_shard = getattr(engine, "_begin_shard", None)
    if begin_shard is not None:
        begin_shard()
    before = _stats_snapshot(engine)
    results: List[Tuple[int, Any]] = []
    records: List[CacheRecord] = []
    # Content-identical "run" items within a shard reuse the first result
    # instead of shipping one full pickled state per duplicate (expectation
    # kinds already return the worker's cached object, which the pickle memo
    # deduplicates for free).
    run_memo: Dict[int, Any] = {}
    for index, slot in task.items:
        if task.kind == "run" and slot in run_memo:
            results.append((index, engine._worker_duplicate(task.kind, run_memo[slot])))
            continue
        value, produced = engine._worker_execute(task.kind, task.payloads[slot], task.kwargs)
        if task.kind == "run":
            run_memo[slot] = value
        results.append((index, value))
        for record in produced:
            key = record.dedup_key
            if key in _WORKER_EXPORTED:
                continue
            _WORKER_EXPORTED.add(key)
            records.append(record)
    return ShardOutcome(
        results=results,
        records=records,
        stats_delta=_stats_delta(_stats_snapshot(engine), before),
    )


# ----------------------------------------------------------------------------
# Parent-side pool management and dispatch
# ----------------------------------------------------------------------------

def _shutdown_pool(executor: ProcessPoolExecutor) -> None:
    executor.shutdown(wait=True)


class ProcessPoolHandle:
    """A persistent worker pool bound to one engine configuration.

    Keeping the pool (and therefore the worker engines) alive across batch
    calls is what makes the process tier pay off on sweep workloads: the
    window tuner submits one batch per window sweep, and each worker's result
    cache and prefix snapshots carry over from sweep to sweep exactly as the
    parent's do on the serial path.
    """

    def __init__(self, spec: EngineWorkerSpec, workers: int):
        self.key = (spec.cache_key, int(workers))
        self.workers = int(workers)
        self.executor = ProcessPoolExecutor(
            max_workers=int(workers),
            initializer=_initialise_worker,
            initargs=(spec,),
        )
        # Tie the worker processes' lifetime to this handle: engines hold the
        # handle, and garbage collection (or an explicit engine.close()) joins
        # the workers.  The finalizer must not reference the engine.
        self._finalizer = weakref.finalize(self, _shutdown_pool, self.executor)

    def shutdown(self) -> None:
        if self._finalizer.detach() is not None:
            _shutdown_pool(self.executor)


class _PoolEntry:
    """Registry bookkeeping for one live pool."""

    __slots__ = ("handle", "in_use", "retired")

    def __init__(self, handle: ProcessPoolHandle):
        self.handle = handle
        #: Number of batches currently executing on this pool.
        self.in_use = 0
        #: Set when the pool's configuration went stale while batches were
        #: still running on it; the last release shuts it down.
        self.retired = False


class ProcessPoolRegistry:
    """Shares an engine's persistent worker pools among concurrent batches.

    With the slot scheduler several batches of one engine may reach the
    process tier at once.  The registry keeps each pool keyed by
    ``(spec.cache_key, workers)`` with an in-use count, so that:

    * concurrent batches with the same execution context **share one pool**
      (worker-side caches and prefix snapshots stay warm for all of them);
    * a batch requesting a different worker count while another batch is
      running does **not** retire the running batch's workers — it shares the
      live pool (submitting shards to a differently-sized pool just queues);
    * a *stale* configuration (a changed ``cache_key``, e.g. a toggled
      noise-model flag) retires idle pools immediately and marks busy ones to
      shut down when their last batch releases them — exactly the old
      single-pool semantics, made safe under concurrency.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[str, int], _PoolEntry] = {}
        #: Broken pools evicted by :meth:`retire` while batches still held
        #: references; they drain through :meth:`release`.
        self._retired: List[Tuple[Tuple[str, int], _PoolEntry]] = []

    def acquire(self, spec: EngineWorkerSpec, workers: int) -> Tuple[ProcessPoolExecutor, Tuple[str, int]]:
        """An executor for ``spec``, plus the key to :meth:`release` it with."""
        workers = int(workers)
        doomed: List[ProcessPoolHandle] = []
        with self._lock:
            # Retire what can no longer serve: stale-config pools always
            # (idle ones now, busy ones on their last release); same-config
            # pools of a different size only when idle — never out from under
            # a running batch.
            for key, entry in list(self._entries.items()):
                stale = key[0] != spec.cache_key
                if entry.in_use == 0:
                    if stale or key[1] != workers:
                        doomed.append(self._entries.pop(key).handle)
                elif stale:
                    entry.retired = True
            entry = self._entries.get((spec.cache_key, workers))
            if entry is None:
                # Share a live same-config pool (whatever its size) rather
                # than spawning a second set of workers next to it.
                for key, candidate in self._entries.items():
                    if key[0] == spec.cache_key and not candidate.retired:
                        entry = candidate
                        break
            if entry is None:
                entry = _PoolEntry(ProcessPoolHandle(spec, workers))
                self._entries[entry.handle.key] = entry
            entry.in_use += 1
            key = entry.handle.key
        for handle in doomed:
            handle.shutdown()
        return entry.handle.executor, key

    def release(self, key: Tuple[str, int]) -> None:
        doomed: Optional[ProcessPoolHandle] = None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry.in_use = max(0, entry.in_use - 1)
                if entry.retired and entry.in_use == 0:
                    doomed = self._entries.pop(key).handle
            else:
                # The pool may have been retired out of the live mapping
                # (broken workers); drop this batch's reference and join the
                # dead pool once the last concurrent batch lets go.
                for position, (retired_key, retired) in enumerate(self._retired):
                    if retired_key == key and retired.in_use > 0:
                        retired.in_use -= 1
                        if retired.in_use == 0:
                            doomed = retired.handle
                            del self._retired[position]
                        break
        if doomed is not None:
            doomed.shutdown()

    def retire(self, key: Tuple[str, int]) -> None:
        """Evict a broken pool so the next batch builds fresh workers.

        Called when a worker process died mid-shard (the executor is broken
        and every future submission to it would fail).  The entry leaves the
        live mapping immediately — a concurrent or subsequent ``acquire`` can
        never hand the dead executor out again — while batches still holding
        references drain through :meth:`release` as usual.  Idempotent.
        """
        doomed: Optional[ProcessPoolHandle] = None
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return
            if entry.in_use == 0:
                doomed = entry.handle
            else:
                entry.retired = True
                self._retired.append((key, entry))
        if doomed is not None:
            doomed.shutdown()

    def handles(self) -> List[ProcessPoolHandle]:
        """The currently-live pool handles (inspection/testing)."""
        with self._lock:
            return [entry.handle for entry in self._entries.values()]

    def shutdown(self) -> None:
        """Join every idle pool; mark busy ones to join on their last release.

        Idempotent, and — per the registry's own guarantee — never rips a
        pool out from under a batch still running on it (a concurrent
        blocking ``run_batch`` on another thread keeps its workers until it
        releases them).  The registry stays usable afterwards.
        """
        doomed: List[ProcessPoolHandle] = []
        with self._lock:
            for key, entry in list(self._entries.items()):
                if entry.in_use == 0:
                    doomed.append(self._entries.pop(key).handle)
                else:
                    entry.retired = True
        for handle in doomed:
            handle.shutdown()


def process_map(
    engine,
    spec: EngineWorkerSpec,
    kind: str,
    items: Sequence[Any],
    kwargs: Dict[str, Any],
    plan: ParallelismPlan,
    chains: Optional[Sequence[Sequence[str]]] = None,
) -> List[Any]:
    """Fan a batch out over the engine's process pool, order-stably.

    Items the parent can already answer from its own caches are served
    locally (no serialization); the rest are sharded by
    :func:`plan_shards`, executed on the workers, and their cache records and
    stats deltas are merged back before the ordered results return.
    ``chains`` optionally carries precomputed per-item hash chains (the batch
    scheduler hashes them at submit time); absent, they are computed here.
    """
    items = list(items)
    if chains is None:
        chains = [engine._shard_chain(kind, item) for item in items]
    else:
        chains = list(chains)
    results: List[Any] = [None] * len(items)

    pending: List[int] = []
    for index, item in enumerate(items):
        if engine._is_locally_cached(kind, item, kwargs, chains[index]):
            results[index] = engine._serial_call(kind, item, kwargs)
        else:
            pending.append(index)
    if not pending:
        return results

    # Segment-aware shard costing, when the engine exposes segment keys
    # (``None`` — no hook, or segment reuse disabled — falls back to chains).
    keys_of = getattr(engine, "_shard_segment_keys", None)
    segment_keys = None
    if keys_of is not None:
        segment_keys = [keys_of(kind, items[index]) for index in pending]
        if any(keys is None for keys in segment_keys):
            segment_keys = None
    shards = plan_shards(
        [chains[i] for i in pending], plan.workers, segment_keys=segment_keys
    )
    pool, pool_key = engine._acquire_process_pool(spec, plan.workers)
    try:
        futures = []
        for shard in shards:
            payloads: List[Any] = []
            slot_by_fingerprint: Dict[str, int] = {}
            assignments: List[Tuple[int, int]] = []
            for position in shard:
                index = pending[position]
                fingerprint = chains[index][-1]
                slot = slot_by_fingerprint.get(fingerprint)
                if slot is None:
                    slot = len(payloads)
                    slot_by_fingerprint[fingerprint] = slot
                    payloads.append(items[index])
                assignments.append((index, slot))
            futures.append(
                pool.submit(_execute_shard, ShardTask(kind, dict(kwargs), payloads, assignments))
            )
        for future in futures:
            outcome = future.result()
            engine._absorb_records(outcome.records)
            engine._absorb_stats(outcome.stats_delta)
            for index, value in outcome.results:
                results[index] = value
    except BrokenExecutor:
        # A worker process died mid-shard.  The executor is permanently
        # broken; without eviction the registry would keep handing the dead
        # pool to every later batch with this configuration.  Retire it so
        # the next batch initialises fresh workers, then let the error reach
        # the caller as this batch's (typed) failure.
        engine._retire_process_pool(pool_key)
        raise
    finally:
        engine._release_process_pool(pool_key)
    return results
