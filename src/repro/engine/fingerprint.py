"""Content fingerprints of circuits, schedules, devices and observables.

The execution engine keys every cache on *content*, never on object identity:
two independently constructed but identical scheduled circuits must hit the
same cache line, and any difference in timing, gate parameters, layout or
device calibration must miss.  Fingerprints are hex digests of BLAKE2b over a
canonical byte encoding of the object.

For prefix reuse the engine needs more than a single digest: it needs the
*hash chain* of a schedule — ``chain[k]`` identifies the schedule's processing
prefix of ``k`` instructions (in the simulator's canonical order), rooted in
everything that influences how a prefix is simulated (device calibration,
layout, register sizes and each qubit's first-activity time).  Two schedules
with ``chain_a[k] == chain_b[k]`` evolve bit-identically through their first
``k`` instructions, so a snapshot taken at depth ``k`` of one can seed the
other.

The processing order the chains digest is the commutation-aware canonical
order of :mod:`repro.engine.canonical` (what the simulator executes):
schedules differing only in benign reorderings of commuting instructions
share fingerprints, chains — and therefore caches, checkpoints, shard
groupings and scheduler conflict keys.
"""

from __future__ import annotations

import hashlib
import weakref
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..backends.device import DeviceModel
    from ..circuits.circuit import QuantumCircuit
    from ..transpiler.scheduling import ScheduledCircuit, TimedInstruction

_SEP = b"\x1f"


def _digest(*parts: str) -> str:
    hasher = hashlib.blake2b(digest_size=16)
    for part in parts:
        hasher.update(part.encode("utf-8"))
        hasher.update(_SEP)
    return hasher.hexdigest()


# ----------------------------------------------------------------------------
# Devices
# ----------------------------------------------------------------------------

_device_fingerprints: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def device_fingerprint(device: "DeviceModel") -> str:
    """Digest of everything calibration-dependent simulation consults.

    Memoised per device instance; device models are treated as immutable
    (every mutation site in the code base builds a fresh model).
    """
    try:
        cached = _device_fingerprints.get(device)
    except TypeError:  # un-weakref-able exotic device stand-ins
        cached = None
    if cached is not None:
        return cached
    qubit_parts = [
        "|".join(
            repr(value)
            for value in (
                q.t1_ns, q.t2_ns, q.readout_error_01, q.readout_error_10,
                q.static_detuning, q.drift_amplitude, q.drift_period_ns, q.drift_phase,
            )
        )
        for q in device.qubits
    ]
    gate_parts = [
        f"{pair}:{props.duration_ns!r}:{props.error!r}"
        for pair, props in sorted(device.two_qubit_gates.items())
    ]
    zz_parts = [
        f"{sorted(pair)}:{rate!r}"
        for pair, rate in sorted(device.zz_crosstalk.items(), key=lambda item: sorted(item[0]))
    ]
    fingerprint = _digest(
        device.name,
        str(device.num_qubits),
        repr(sorted(device.coupling_edges)),
        repr(device.single_qubit_gate.duration_ns) + ":" + repr(device.single_qubit_gate.error),
        repr(device.readout_duration_ns),
        *qubit_parts,
        *gate_parts,
        *zz_parts,
    )
    try:
        _device_fingerprints[device] = fingerprint
    except TypeError:
        pass
    return fingerprint


def invalidate_device_fingerprint(device: "DeviceModel") -> None:
    """Drop the memoised fingerprint of a device whose calibration was
    mutated in place (see :meth:`NoiseModel.invalidate_channel_cache` — the
    supported mutation path; every other mutation site builds a fresh
    model).  The next lookup re-digests the current calibration, so engine
    caches and process-tier worker pools keyed on it miss instead of serving
    pre-mutation results."""
    try:
        _device_fingerprints.pop(device, None)
    except TypeError:
        pass


# ----------------------------------------------------------------------------
# Circuits and schedules
# ----------------------------------------------------------------------------

def instruction_token(name: str, params, qubits, clbits, start_ns=None, duration_ns=None) -> str:
    """Canonical string for one (possibly timed) instruction."""
    token = f"{name}|{tuple(repr(p) for p in params)}|{tuple(qubits)}|{tuple(clbits)}"
    if start_ns is not None:
        token += f"|{start_ns!r}|{duration_ns!r}"
    return token


def circuit_fingerprint(circuit: "QuantumCircuit") -> str:
    """Digest of a logical circuit (gate sequence, parameters, wiring)."""
    parts = [str(circuit.num_qubits), str(circuit.num_clbits)]
    parts.extend(
        instruction_token(inst.name, inst.gate.params, inst.qubits, inst.clbits)
        for inst in circuit.instructions
    )
    return _digest(*parts)


def circuit_hash_chain(circuit: "QuantumCircuit") -> List[str]:
    """``chain[k]`` identifies the first ``k`` instructions of a logical circuit.

    The logical-circuit analogue of :func:`schedule_hash_chain`, used by the
    process tier's shard scheduler to co-locate circuits sharing an
    instruction prefix (and to weight shard balancing by circuit size).
    Unlike schedule chains there is no prefix-resume fast path behind it, so
    ``chain[-1]`` serves purely as a content key — it identifies the same
    content as :func:`circuit_fingerprint` but is a distinct digest.
    """
    chain = [_digest(str(circuit.num_qubits), str(circuit.num_clbits))]
    for inst in circuit.instructions:
        chain.append(
            _digest(chain[-1], instruction_token(inst.name, inst.gate.params, inst.qubits, inst.clbits))
        )
    return chain


def schedule_root(
    scheduled: "ScheduledCircuit",
    initial_last_time: Optional[Dict[int, float]] = None,
    salt: str = "",
) -> str:
    """The depth-0 entry of a schedule's hash chain.

    Captures every input of prefix simulation that is not an instruction:
    device calibration, the position-to-physical-qubit layout, register sizes
    and (when given) each position's first-activity time, which seeds the
    simulator's idle tracking and is derived from the *whole* schedule.
    ``salt`` lets the caller mix in additional execution context (e.g. the
    noise model's flag configuration).
    """
    parts = [
        salt,
        device_fingerprint(scheduled.device),
        str(scheduled.num_qubits),
        str(scheduled.num_clbits),
        repr(tuple(scheduled.physical_qubits)),
    ]
    if initial_last_time is not None:
        parts.append(repr(sorted(initial_last_time.items())))
    return _digest(*parts)


def timed_instruction_token(timed: "TimedInstruction") -> str:
    return instruction_token(
        timed.name,
        timed.instruction.gate.params,
        timed.qubits,
        timed.instruction.clbits,
        timed.start_ns,
        timed.duration_ns,
    )


def schedule_hash_chain(
    scheduled: "ScheduledCircuit",
    ordered: Sequence["TimedInstruction"],
    initial_last_time: Optional[Dict[int, float]] = None,
    salt: str = "",
) -> List[str]:
    """``chain[k]`` identifies the first ``k`` instructions of ``ordered``.

    ``chain`` has ``len(ordered) + 1`` entries; ``chain[-1]`` is a full
    content fingerprint of the schedule and serves as its result-cache key.
    """
    chain = [schedule_root(scheduled, initial_last_time, salt)]
    for timed in ordered:
        chain.append(_digest(chain[-1], timed_instruction_token(timed)))
    return chain


def schedule_fingerprint(scheduled: "ScheduledCircuit", canonical: bool = True) -> str:
    """Full content fingerprint of a scheduled circuit (no chain).

    Digests the canonical processing order by default, so benign
    reorderings of commuting instructions fingerprint identically; pass
    ``canonical=False`` for a digest of the plain time-sorted order.
    """
    if canonical:
        from .canonical import canonical_order

        ordered = canonical_order(scheduled)
    else:
        ordered = scheduled.sorted_instructions()
    return schedule_hash_chain(scheduled, ordered)[-1]


# ----------------------------------------------------------------------------
# Raw array content
# ----------------------------------------------------------------------------

def array_content_key(*arrays) -> str:
    """Digest of the exact contents of one or more numpy arrays.

    Keys caches of *derived* numerical objects (e.g. the PTM compiled from a
    Kraus set) on the bytes of their inputs: two channels built independently
    but with identical operator entries share one cache line, and any change
    in values, dtype or shape misses.  Arrays are digested in C order.
    """
    import numpy as np

    hasher = hashlib.blake2b(digest_size=16)
    for array in arrays:
        contiguous = np.ascontiguousarray(array)
        hasher.update(str(contiguous.dtype).encode("utf-8"))
        hasher.update(_SEP)
        hasher.update(repr(contiguous.shape).encode("utf-8"))
        hasher.update(_SEP)
        hasher.update(contiguous.tobytes())
        hasher.update(_SEP)
    return hasher.hexdigest()


# ----------------------------------------------------------------------------
# Observables and mitigators
# ----------------------------------------------------------------------------

def observable_fingerprint(observable) -> str:
    """Digest of a PauliSum (labels and coefficients, order-independent)."""
    terms = sorted((pauli.label, float(coeff)) for pauli, coeff in observable.terms())
    return _digest(str(observable.num_qubits), *(f"{label}:{coeff!r}" for label, coeff in terms))


def mitigator_fingerprint(mitigator) -> str:
    """Digest of a measurement mitigator's confusion matrices ('' for None)."""
    if mitigator is None:
        return ""
    return _digest(*(repr(matrix.tolist()) for matrix in mitigator.confusions))


# ----------------------------------------------------------------------------
# Deterministic seed derivation
# ----------------------------------------------------------------------------

def derive_seed(base_seed: Optional[int], *parts: str) -> int:
    """A deterministic per-item seed mixed from the engine seed and content.

    This is the engine's seeding contract: sampling randomness depends only on
    ``(engine seed, item content)``, never on execution order, so batched and
    sequential execution of the same item draw identical samples.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(repr(base_seed).encode("utf-8"))
    for part in parts:
        digest.update(_SEP)
        digest.update(part.encode("utf-8"))
    return int.from_bytes(digest.digest(), "big") & ((1 << 63) - 1)
