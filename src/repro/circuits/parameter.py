"""Symbolic circuit parameters.

Variational circuits (ansatz) carry rotation angles that are bound only at
execution time.  :class:`Parameter` is a named symbolic placeholder and
:class:`ParameterExpression` is a tiny linear-expression engine supporting the
operations the ansatz library needs: scaling, negation, addition of constants
and of other parameters.  Keeping the expression language deliberately small
(affine expressions only) keeps binding exact and trivially testable.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Mapping, Union

from ..exceptions import ParameterError

Number = Union[int, float]

_COUNTER = itertools.count()


class ParameterExpression:
    """An affine expression ``sum_i coeff_i * parameter_i + constant``.

    Instances are immutable.  Arithmetic operators return new expressions.
    """

    __slots__ = ("_coeffs", "_const")

    def __init__(self, coeffs: Mapping["Parameter", float], const: float = 0.0):
        # Drop zero coefficients so equality and parameter listing are canonical.
        self._coeffs: Dict[Parameter, float] = {
            p: float(c) for p, c in coeffs.items() if c != 0.0
        }
        self._const = float(const)

    # -- introspection -------------------------------------------------
    @property
    def parameters(self) -> frozenset:
        """The set of unbound :class:`Parameter` objects in this expression."""
        return frozenset(self._coeffs)

    @property
    def constant(self) -> float:
        """The additive constant of the affine expression."""
        return self._const

    def coefficient(self, parameter: "Parameter") -> float:
        """Return the multiplicative coefficient of ``parameter`` (0 if absent)."""
        return self._coeffs.get(parameter, 0.0)

    def is_bound(self) -> bool:
        """True when the expression contains no free parameters."""
        return not self._coeffs

    # -- binding -------------------------------------------------------
    def bind(self, values: Mapping["Parameter", Number]) -> Union[float, "ParameterExpression"]:
        """Substitute numeric values for parameters.

        Parameters not present in ``values`` remain symbolic.  When every
        parameter is substituted a plain ``float`` is returned.
        """
        remaining: Dict[Parameter, float] = {}
        const = self._const
        for param, coeff in self._coeffs.items():
            if param in values:
                const += coeff * float(values[param])
            else:
                remaining[param] = coeff
        if remaining:
            return ParameterExpression(remaining, const)
        return const

    def numeric(self) -> float:
        """Return the numeric value; raises if any parameter is unbound."""
        if self._coeffs:
            unbound = ", ".join(sorted(p.name for p in self._coeffs))
            raise ParameterError(f"expression still contains unbound parameters: {unbound}")
        return self._const

    # -- arithmetic ----------------------------------------------------
    def _as_expression(self, other: Union["ParameterExpression", Number]) -> "ParameterExpression":
        if isinstance(other, ParameterExpression):
            return other
        if isinstance(other, (int, float)):
            return ParameterExpression({}, float(other))
        raise TypeError(f"cannot combine ParameterExpression with {type(other).__name__}")

    def __add__(self, other):
        other = self._as_expression(other)
        coeffs = dict(self._coeffs)
        for p, c in other._coeffs.items():
            coeffs[p] = coeffs.get(p, 0.0) + c
        return ParameterExpression(coeffs, self._const + other._const)

    __radd__ = __add__

    def __neg__(self):
        return ParameterExpression({p: -c for p, c in self._coeffs.items()}, -self._const)

    def __sub__(self, other):
        return self + (-self._as_expression(other))

    def __rsub__(self, other):
        return self._as_expression(other) + (-self)

    def __mul__(self, scalar):
        if not isinstance(scalar, (int, float)):
            raise TypeError("ParameterExpression can only be scaled by a real number")
        return ParameterExpression(
            {p: c * scalar for p, c in self._coeffs.items()}, self._const * scalar
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar):
        if not isinstance(scalar, (int, float)):
            raise TypeError("ParameterExpression can only be divided by a real number")
        if scalar == 0:
            raise ZeroDivisionError("division of a ParameterExpression by zero")
        return self * (1.0 / scalar)

    # -- equality / hashing ---------------------------------------------
    def __eq__(self, other):
        if isinstance(other, (int, float)):
            return self.is_bound() and self._const == float(other)
        if isinstance(other, ParameterExpression):
            return self._coeffs == other._coeffs and self._const == other._const
        return NotImplemented

    def __hash__(self):
        return hash((frozenset(self._coeffs.items()), self._const))

    def __repr__(self):
        terms = [f"{c:+g}*{p.name}" for p, c in sorted(self._coeffs.items(), key=lambda kv: kv[0].name)]
        if self._const or not terms:
            terms.append(f"{self._const:+g}")
        return "".join(terms).lstrip("+")


class Parameter(ParameterExpression):
    """A named free circuit parameter.

    Two parameters with the same name are still distinct objects; identity is
    established by an internal uuid-like counter so that independently
    constructed ansatz never alias each other's parameters by accident.
    """

    __slots__ = ("_name", "_uid")

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise ParameterError("parameter name must be a non-empty string")
        self._name = name
        self._uid = next(_COUNTER)
        super().__init__({self: 1.0}, 0.0)

    @property
    def name(self) -> str:
        """The human-readable parameter name (used in circuit drawings)."""
        return self._name

    def __eq__(self, other):
        if isinstance(other, Parameter):
            return self._uid == other._uid
        return super().__eq__(other)

    def __hash__(self):
        return hash(("Parameter", self._uid))

    def __repr__(self):
        return f"Parameter({self._name})"


class ParameterVector:
    """An indexed family of parameters, e.g. ``theta[0] ... theta[n-1]``."""

    def __init__(self, name: str, length: int):
        if length < 0:
            raise ParameterError("ParameterVector length must be non-negative")
        self._name = name
        self._params = [Parameter(f"{name}[{i}]") for i in range(length)]

    @property
    def name(self) -> str:
        return self._name

    @property
    def params(self):
        return list(self._params)

    def __len__(self) -> int:
        return len(self._params)

    def __getitem__(self, index):
        return self._params[index]

    def __iter__(self):
        return iter(self._params)

    def __repr__(self):
        return f"ParameterVector({self._name}, {len(self._params)})"


def bind_value(value: Union[Number, ParameterExpression], binding: Mapping[Parameter, Number]):
    """Bind ``value`` against ``binding`` if it is symbolic, else return it unchanged."""
    if isinstance(value, ParameterExpression):
        return value.bind(binding)
    return value


def free_parameters(values: Iterable[Union[Number, ParameterExpression]]) -> frozenset:
    """Union of unbound parameters across an iterable of gate parameters."""
    out = set()
    for value in values:
        if isinstance(value, ParameterExpression):
            out |= value.parameters
    return frozenset(out)
