"""Circuit intermediate representation, gate library and ansatz builders."""

from .parameter import Parameter, ParameterExpression, ParameterVector
from .gates import Barrier, Delay, Gate, Measure, standard_gate, IBM_BASIS, VIRTUAL_GATES
from .circuit import Instruction, QuantumCircuit
from .library import (
    bell_circuit,
    efficient_su2,
    ghz_circuit,
    hahn_echo_microbenchmark,
    idle_window_microbenchmark,
    qaoa_ansatz,
    two_local,
    uccsd_like_ansatz,
)

__all__ = [
    "Parameter",
    "ParameterExpression",
    "ParameterVector",
    "Gate",
    "Barrier",
    "Delay",
    "Measure",
    "standard_gate",
    "IBM_BASIS",
    "VIRTUAL_GATES",
    "Instruction",
    "QuantumCircuit",
    "efficient_su2",
    "two_local",
    "uccsd_like_ansatz",
    "qaoa_ansatz",
    "hahn_echo_microbenchmark",
    "idle_window_microbenchmark",
    "ghz_circuit",
    "bell_circuit",
]
