"""Circuit library: ansatz used by the paper and idle-time micro-benchmarks.

The paper's VQE applications use two families of ansatz:

* the hardware-efficient ``EfficientSU2`` ansatz (Ry/Rz layers + CX
  entanglers, with ``full`` or ``circular`` entanglement and a configurable
  number of repetitions), used for the TFIM and Li+ benchmarks, and
* a UCCSD-style chemistry ansatz, used for the H2 benchmark.

It also provides the two micro-benchmark circuits used by Figs. 5, 6 and 9:
a single-qubit Hahn-echo (``H + delay + X + H``) circuit and a two-qubit
circuit containing one large idle window.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..exceptions import CircuitError
from .circuit import QuantumCircuit
from .parameter import Parameter, ParameterVector


def _entangler_pairs(num_qubits: int, entanglement: str) -> List[Tuple[int, int]]:
    """Pairs of qubits coupled by the entangling layer."""
    if num_qubits < 2:
        return []
    if entanglement == "linear":
        return [(i, i + 1) for i in range(num_qubits - 1)]
    if entanglement == "circular":
        pairs = [(i, i + 1) for i in range(num_qubits - 1)]
        pairs.append((num_qubits - 1, 0))
        return pairs
    if entanglement == "full":
        return [(i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)]
    raise CircuitError(f"unknown entanglement pattern '{entanglement}'")


def efficient_su2(
    num_qubits: int,
    reps: int = 2,
    entanglement: str = "full",
    parameter_prefix: str = "theta",
    skip_final_rotation_layer: bool = False,
    name: Optional[str] = None,
) -> QuantumCircuit:
    """Hardware-efficient SU2 ansatz (Ry + Rz rotation layers, CX entanglers).

    The structure mirrors Qiskit's ``EfficientSU2``: ``reps`` blocks, each a
    rotation layer (Ry then Rz on every qubit) followed by an entangling layer
    of CX gates in the requested pattern, plus a final rotation layer.  The
    parameter count is ``2 * num_qubits * (reps + 1)`` (or ``2*n*reps`` when
    the final rotation layer is skipped).
    """
    if num_qubits < 1:
        raise CircuitError("efficient_su2 requires at least one qubit")
    if reps < 1:
        raise CircuitError("efficient_su2 requires reps >= 1")
    layers = reps if skip_final_rotation_layer else reps + 1
    params = ParameterVector(parameter_prefix, 2 * num_qubits * layers)
    circuit = QuantumCircuit(num_qubits, name=name or f"su2_{num_qubits}q_{entanglement}_{reps}r")
    pairs = _entangler_pairs(num_qubits, entanglement)

    idx = 0

    def rotation_layer():
        nonlocal idx
        for q in range(num_qubits):
            circuit.ry(params[idx], q)
            idx += 1
        for q in range(num_qubits):
            circuit.rz(params[idx], q)
            idx += 1

    for _ in range(reps):
        rotation_layer()
        for a, b in pairs:
            circuit.cx(a, b)
    if not skip_final_rotation_layer:
        rotation_layer()

    circuit.metadata.update(
        {
            "ansatz": "efficient_su2",
            "reps": reps,
            "entanglement": entanglement,
            "num_parameters": 2 * num_qubits * layers,
        }
    )
    return circuit


def two_local(
    num_qubits: int,
    rotation_gates: Sequence[str] = ("ry",),
    entanglement_gate: str = "cx",
    reps: int = 1,
    entanglement: str = "linear",
    parameter_prefix: str = "phi",
) -> QuantumCircuit:
    """Generic two-local ansatz: alternating rotation and entanglement layers."""
    if entanglement_gate not in ("cx", "cz"):
        raise CircuitError("entanglement_gate must be 'cx' or 'cz'")
    num_rot_params = len(rotation_gates) * num_qubits * (reps + 1)
    params = ParameterVector(parameter_prefix, num_rot_params)
    circuit = QuantumCircuit(num_qubits, name=f"two_local_{num_qubits}q_{reps}r")
    pairs = _entangler_pairs(num_qubits, entanglement)
    idx = 0

    def rotation_layer():
        nonlocal idx
        for gate in rotation_gates:
            for q in range(num_qubits):
                getattr(circuit, gate)(params[idx], q)
                idx += 1

    for _ in range(reps):
        rotation_layer()
        for a, b in pairs:
            getattr(circuit, entanglement_gate)(a, b)
    rotation_layer()
    circuit.metadata.update({"ansatz": "two_local", "reps": reps, "entanglement": entanglement})
    return circuit


def uccsd_like_ansatz(num_qubits: int = 4, name: str = "uccsd_h2") -> QuantumCircuit:
    """A UCCSD-style ansatz for the 4-qubit H2 problem.

    The paper uses Qiskit's UCCSD with a Hartree–Fock initial state, parity
    mapping and no two-qubit reduction, which produces a deep 4-qubit circuit.
    We implement the standard exponentiated single- and double-excitation
    structure:

    * Hartree–Fock reference ``|0101>`` prepared with X gates,
    * two single-excitation rotations implemented as Givens-style ``CX - Ry -
      CX`` blocks, and
    * one double-excitation rotation implemented with the canonical CX-ladder
      ``exp(-i theta/2 * X X X Y)``-type construction.

    Three variational parameters in total (t1_0, t1_1, t2_0) — the same
    parameter structure as the textbook H2 UCCSD circuit.
    """
    if num_qubits != 4:
        raise CircuitError("the UCCSD-like ansatz is defined for 4 qubits (H2)")
    t1_0 = Parameter("t1_0")
    t1_1 = Parameter("t1_1")
    t2_0 = Parameter("t2_0")
    circuit = QuantumCircuit(4, name=name)

    # Hartree-Fock reference state: occupy the two "lower" spin orbitals.
    circuit.x(0)
    circuit.x(1)

    def single_excitation(theta, occupied: int, virtual: int):
        """Givens rotation between an occupied and a virtual spin orbital."""
        circuit.cx(virtual, occupied)
        circuit.cry(theta, occupied, virtual)
        circuit.cx(virtual, occupied)

    single_excitation(t1_0, 0, 2)
    single_excitation(t1_1, 1, 3)

    # Double excitation: exp(-i t/2 Y0 X1 X2 X3)-style CX ladder construction.
    circuit.h(1)
    circuit.h(2)
    circuit.h(3)
    circuit.rx(math.pi / 2, 0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    circuit.cx(2, 3)
    circuit.rz(t2_0, 3)
    circuit.cx(2, 3)
    circuit.cx(1, 2)
    circuit.cx(0, 1)
    circuit.rx(-math.pi / 2, 0)
    circuit.h(1)
    circuit.h(2)
    circuit.h(3)

    circuit.metadata.update({"ansatz": "uccsd_like", "num_parameters": 3})
    return circuit


def qaoa_ansatz(
    num_qubits: int,
    edges: Sequence[Tuple[int, int]],
    reps: int = 1,
    weights: Optional[Sequence[float]] = None,
    name: Optional[str] = None,
) -> QuantumCircuit:
    """The QAOA ansatz for a MaxCut-style ZZ cost Hamiltonian.

    ``reps`` alternating layers on a uniform-superposition start state:

    * cost layer ``exp(-i gamma_p w_e Z_a Z_b)`` per edge, compiled to the
      standard ``CX - Rz(2 gamma w) - CX`` block, then
    * mixer layer ``exp(-i beta_p X_q)`` = ``Rx(2 beta)`` on every qubit.

    Two parameters per layer (``gamma_p``, ``beta_p``), so ``2 * reps`` in
    total — the compact parameter space is what makes QAOA a useful contrast
    to the SU2 ansatz in the optimizer benchmarks.  The edge list (and
    optional weights) must match the cost Hamiltonian being minimised, e.g.
    :func:`repro.operators.hamiltonians.maxcut_hamiltonian` on the same graph.
    """
    if num_qubits < 2:
        raise CircuitError("the QAOA ansatz needs at least two qubits")
    if reps < 1:
        raise CircuitError("qaoa_ansatz requires reps >= 1")
    if not edges:
        raise CircuitError("the QAOA ansatz needs at least one edge")
    if weights is None:
        weights = [1.0] * len(edges)
    if len(weights) != len(edges):
        raise CircuitError("weights must match edges one-to-one")
    for a, b in edges:
        if not (0 <= a < num_qubits and 0 <= b < num_qubits) or a == b:
            raise CircuitError(f"invalid edge ({a}, {b}) for {num_qubits} qubits")
    gammas = ParameterVector("gamma", reps)
    betas = ParameterVector("beta", reps)
    circuit = QuantumCircuit(num_qubits, name=name or f"qaoa_{num_qubits}q_{reps}p")
    for q in range(num_qubits):
        circuit.h(q)
    for layer in range(reps):
        for (a, b), weight in zip(edges, weights):
            circuit.cx(a, b)
            circuit.rz(2.0 * weight * gammas[layer], b)
            circuit.cx(a, b)
        for q in range(num_qubits):
            circuit.rx(2.0 * betas[layer], q)
    circuit.metadata.update(
        {"ansatz": "qaoa", "reps": reps, "num_edges": len(edges), "num_parameters": 2 * reps}
    )
    return circuit


def hahn_echo_microbenchmark(
    delay_ns: float = 28440.0,
    echo_position: float = 0.5,
    include_echo: bool = True,
    name: str = "hahn_echo",
) -> QuantumCircuit:
    """The paper's Fig. 6 micro-benchmark: ``H + delay + X + delay + H``.

    A qubit is put in superposition, left idle for ``delay_ns`` nanoseconds
    (28.44 us in the paper, created there with 799 identity gates), an ``X``
    gate is placed at the fractional ``echo_position`` of the window (0 =
    as soon as possible, 1 = as late as possible), and a final ``H`` rotates
    into the X basis so that measurement reveals the residual dephasing.
    """
    if not 0.0 <= echo_position <= 1.0:
        raise CircuitError("echo_position must lie in [0, 1]")
    circuit = QuantumCircuit(1, name=name)
    circuit.h(0)
    if include_echo:
        before = delay_ns * echo_position
        after = delay_ns * (1.0 - echo_position)
        if before > 0:
            circuit.delay(before, 0)
        circuit.x(0)
        if after > 0:
            circuit.delay(after, 0)
    else:
        circuit.delay(delay_ns, 0)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.metadata.update(
        {"microbenchmark": "hahn_echo", "delay_ns": delay_ns, "echo_position": echo_position}
    )
    return circuit


def idle_window_microbenchmark(
    idle_ns: float = 10000.0,
    theta: float = math.pi / 3,
    name: str = "idle_window_2q",
) -> QuantumCircuit:
    """A two-qubit circuit with one large idle window (Figs. 5 and 9).

    Qubit 0 is prepared in a phase-sensitive superposition and then sits idle
    while its partner qubit 1 spends a long time "busy" (modelled with an
    excitation followed by a delay — a stand-in for the long routed
    communication chains that create idle windows in real compiled circuits).
    After the wait both qubits are rotated back so the ideal outcome is
    ``|00>``.  The idle window on qubit 0 is where DD sequences / gate
    rescheduling are applied; the partner waits in a Z-basis state so the
    window's fidelity loss is attributable to qubit 0's idle errors (plus the
    always-on ZZ coupling between the pair, which DD also refocuses).
    """
    circuit = QuantumCircuit(2, name=name)
    circuit.ry(theta, 0)
    circuit.x(1)
    # Qubit 1 is "busy" for idle_ns; qubit 0 has a matching idle window that
    # the scheduler will expose.  The delay is placed explicitly on qubit 1 so
    # that qubit 0's idleness is implicit (discovered by idle-window analysis).
    circuit.delay(idle_ns, 1)
    circuit.barrier()
    circuit.ry(-theta, 0)
    circuit.x(1)
    circuit.measure_all()
    circuit.metadata.update({"microbenchmark": "idle_window_2q", "idle_ns": idle_ns, "theta": theta})
    return circuit


def ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """A GHZ state preparation circuit (used in tests and examples)."""
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    return circuit


def bell_circuit() -> QuantumCircuit:
    """The 2-qubit Bell state preparation circuit."""
    return ghz_circuit(2)
