"""The :class:`QuantumCircuit` intermediate representation.

A circuit is an ordered list of :class:`Instruction` objects, each of which is
a gate applied to a tuple of qubit indices (and, for measurements, a classical
bit index).  The representation is deliberately flat and index-based — the
transpiler converts it to a DAG when data-flow analysis is required.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import CircuitError, ParameterError
from .gates import Barrier, Delay, Gate, Measure, standard_gate
from .parameter import Parameter, ParameterExpression

ParamValue = Union[int, float, ParameterExpression]


@dataclass(frozen=True)
class Instruction:
    """One gate application inside a circuit."""

    gate: Gate
    qubits: Tuple[int, ...]
    clbits: Tuple[int, ...] = ()

    @property
    def name(self) -> str:
        return self.gate.name

    def __repr__(self):
        bits = ", ".join(str(q) for q in self.qubits)
        return f"{self.gate.name}({bits})"


class QuantumCircuit:
    """An ordered sequence of gates on ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Number of qubits in the register.
    num_clbits:
        Number of classical bits; defaults to ``num_qubits``.
    name:
        Optional human-readable circuit name.
    """

    def __init__(self, num_qubits: int, num_clbits: Optional[int] = None, name: str = "circuit"):
        if num_qubits <= 0:
            raise CircuitError("a circuit needs at least one qubit")
        self._num_qubits = int(num_qubits)
        self._num_clbits = int(num_clbits) if num_clbits is not None else int(num_qubits)
        self.name = name
        self._instructions: List[Instruction] = []
        # Optional metadata attached by builders (e.g. ansatz hyper-parameters).
        self.metadata: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def num_clbits(self) -> int:
        return self._num_clbits

    @property
    def instructions(self) -> List[Instruction]:
        """The instruction list (a live reference; mutate with care)."""
        return self._instructions

    @property
    def parameters(self) -> frozenset:
        """All unbound symbolic parameters used anywhere in the circuit."""
        params = set()
        for inst in self._instructions:
            params |= inst.gate.parameters
        return frozenset(params)

    @property
    def num_parameters(self) -> int:
        return len(self.parameters)

    def sorted_parameters(self) -> List[Parameter]:
        """Parameters sorted by name (stable binding order for optimizers)."""
        return sorted(self.parameters, key=lambda p: p.name)

    def count_ops(self) -> Dict[str, int]:
        """Histogram of gate names in the circuit."""
        counts: Dict[str, int] = {}
        for inst in self._instructions:
            counts[inst.name] = counts.get(inst.name, 0) + 1
        return counts

    def depth(self, gate_filter: Optional[Iterable[str]] = None) -> int:
        """Longest path length through the circuit.

        Parameters
        ----------
        gate_filter:
            When given, only gates whose name is in this collection contribute
            to the depth (e.g. ``("cx",)`` gives the two-qubit depth used by
            Table I of the paper).  Barriers never contribute but still
            synchronise qubits.
        """
        allowed = set(gate_filter) if gate_filter is not None else None
        level: Dict[int, int] = {q: 0 for q in range(self._num_qubits)}
        for inst in self._instructions:
            qubits = inst.qubits if inst.qubits else tuple(range(self._num_qubits))
            current = max(level[q] for q in qubits)
            counts = allowed is None or inst.name in allowed
            if inst.name == "barrier":
                counts = False
            new_level = current + (1 if counts else 0)
            for q in qubits:
                level[q] = max(level[q], new_level)
        return max(level.values()) if level else 0

    def cx_depth(self) -> int:
        """Circuit depth counting only CX gates (the paper's Table I metric)."""
        return self.depth(gate_filter=("cx",))

    def __len__(self) -> int:
        return len(self._instructions)

    def __repr__(self):
        ops = ", ".join(f"{n}:{c}" for n, c in sorted(self.count_ops().items()))
        return f"QuantumCircuit({self.name}, qubits={self._num_qubits}, ops=[{ops}])"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _check_qubits(self, qubits: Sequence[int], arity: int) -> Tuple[int, ...]:
        if len(qubits) != arity:
            raise CircuitError(f"expected {arity} qubit(s), got {len(qubits)}")
        out = []
        for q in qubits:
            try:
                q = int(q)
            except (TypeError, ValueError):
                raise CircuitError(f"qubit index {q!r} is not an integer") from None
            if not 0 <= q < self._num_qubits:
                raise CircuitError(f"qubit index {q} out of range for {self._num_qubits} qubits")
            out.append(q)
        if len(set(out)) != len(out):
            raise CircuitError(f"duplicate qubit indices in {qubits}")
        return tuple(out)

    def append(self, gate: Gate, qubits: Sequence[int], clbits: Sequence[int] = ()) -> "QuantumCircuit":
        """Append a gate to the circuit and return ``self`` (for chaining)."""
        if not isinstance(gate, Gate):
            raise CircuitError(f"expected a Gate, got {type(gate).__name__}")
        qubits = self._check_qubits(qubits, gate.num_qubits if gate.name != "barrier" else len(qubits))
        try:
            clbits = tuple(int(c) for c in clbits)
        except (TypeError, ValueError):
            raise CircuitError(f"clbit indices {clbits!r} are not integers") from None
        for c in clbits:
            if not 0 <= c < self._num_clbits:
                raise CircuitError(f"clbit index {c} out of range for {self._num_clbits} clbits")
        self._instructions.append(Instruction(gate, qubits, clbits))
        return self

    # Named helpers -----------------------------------------------------
    def id(self, qubit: int):
        return self.append(standard_gate("id"), [qubit])

    def x(self, qubit: int):
        return self.append(standard_gate("x"), [qubit])

    def y(self, qubit: int):
        return self.append(standard_gate("y"), [qubit])

    def z(self, qubit: int):
        return self.append(standard_gate("z"), [qubit])

    def h(self, qubit: int):
        return self.append(standard_gate("h"), [qubit])

    def s(self, qubit: int):
        return self.append(standard_gate("s"), [qubit])

    def sdg(self, qubit: int):
        return self.append(standard_gate("sdg"), [qubit])

    def t(self, qubit: int):
        return self.append(standard_gate("t"), [qubit])

    def tdg(self, qubit: int):
        return self.append(standard_gate("tdg"), [qubit])

    def sx(self, qubit: int):
        return self.append(standard_gate("sx"), [qubit])

    def sxdg(self, qubit: int):
        return self.append(standard_gate("sxdg"), [qubit])

    def rx(self, theta: ParamValue, qubit: int):
        return self.append(standard_gate("rx", theta), [qubit])

    def ry(self, theta: ParamValue, qubit: int):
        return self.append(standard_gate("ry", theta), [qubit])

    def rz(self, phi: ParamValue, qubit: int):
        return self.append(standard_gate("rz", phi), [qubit])

    def p(self, lam: ParamValue, qubit: int):
        return self.append(standard_gate("p", lam), [qubit])

    def u3(self, theta: ParamValue, phi: ParamValue, lam: ParamValue, qubit: int):
        return self.append(standard_gate("u3", theta, phi, lam), [qubit])

    def cx(self, control: int, target: int):
        return self.append(standard_gate("cx"), [control, target])

    def cz(self, control: int, target: int):
        return self.append(standard_gate("cz"), [control, target])

    def swap(self, qubit_a: int, qubit_b: int):
        return self.append(standard_gate("swap"), [qubit_a, qubit_b])

    def rzz(self, theta: ParamValue, qubit_a: int, qubit_b: int):
        return self.append(standard_gate("rzz", theta), [qubit_a, qubit_b])

    def rxx(self, theta: ParamValue, qubit_a: int, qubit_b: int):
        return self.append(standard_gate("rxx", theta), [qubit_a, qubit_b])

    def cry(self, theta: ParamValue, control: int, target: int):
        return self.append(standard_gate("cry", theta), [control, target])

    def delay(self, duration_ns: float, qubit: int):
        return self.append(Delay(duration_ns), [qubit])

    def barrier(self, *qubits: int):
        qubits = tuple(qubits) if qubits else tuple(range(self._num_qubits))
        return self.append(Barrier(len(qubits)), qubits)

    def measure(self, qubit: int, clbit: Optional[int] = None):
        clbit = qubit if clbit is None else clbit
        return self.append(Measure(), [qubit], [clbit])

    def measure_all(self):
        """Measure every qubit into the classical bit of the same index."""
        self.barrier()
        for q in range(self._num_qubits):
            self.measure(q, q)
        return self

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        out = QuantumCircuit(self._num_qubits, self._num_clbits, name or self.name)
        out._instructions = list(self._instructions)
        out.metadata = dict(self.metadata)
        return out

    def bind_parameters(
        self, values: Union[Mapping[Parameter, float], Sequence[float]]
    ) -> "QuantumCircuit":
        """Return a copy with symbolic parameters replaced by numbers.

        ``values`` may be a mapping ``{Parameter: value}`` or a sequence; a
        sequence is matched against :meth:`sorted_parameters`.
        """
        if not isinstance(values, Mapping):
            params = self.sorted_parameters()
            values = list(values)
            if len(values) != len(params):
                raise ParameterError(
                    f"expected {len(params)} parameter values, got {len(values)}"
                )
            values = dict(zip(params, values))
        out = QuantumCircuit(self._num_qubits, self._num_clbits, self.name)
        out.metadata = dict(self.metadata)
        for inst in self._instructions:
            out._instructions.append(
                Instruction(inst.gate.bind(values), inst.qubits, inst.clbits)
            )
        return out

    def compose(self, other: "QuantumCircuit", qubits: Optional[Sequence[int]] = None) -> "QuantumCircuit":
        """Return a new circuit equal to ``self`` followed by ``other``.

        ``qubits`` maps the other circuit's qubit *i* onto ``qubits[i]`` of
        this circuit (identity mapping by default).
        """
        if qubits is None:
            qubits = list(range(other.num_qubits))
        if len(qubits) != other.num_qubits:
            raise CircuitError("qubit mapping length must match the composed circuit width")
        out = self.copy()
        for inst in other.instructions:
            mapped = tuple(qubits[q] for q in inst.qubits)
            out.append(inst.gate, mapped, inst.clbits)
        return out

    def inverse(self) -> "QuantumCircuit":
        """Return the inverse circuit (measurements are not allowed)."""
        out = QuantumCircuit(self._num_qubits, self._num_clbits, f"{self.name}_dg")
        for inst in reversed(self._instructions):
            if inst.name == "measure":
                raise CircuitError("cannot invert a circuit containing measurements")
            out.append(inst.gate.inverse(), inst.qubits, inst.clbits)
        return out

    def remove_final_measurements(self) -> "QuantumCircuit":
        """Return a copy without measurement instructions (and trailing barrier)."""
        out = QuantumCircuit(self._num_qubits, self._num_clbits, self.name)
        out.metadata = dict(self.metadata)
        kept = [inst for inst in self._instructions if inst.name != "measure"]
        while kept and kept[-1].name == "barrier":
            kept.pop()
        out._instructions = kept
        return out

    def has_measurements(self) -> bool:
        return any(inst.name == "measure" for inst in self._instructions)

    def measured_qubits(self) -> List[Tuple[int, int]]:
        """List of ``(qubit, clbit)`` pairs in measurement order."""
        return [
            (inst.qubits[0], inst.clbits[0])
            for inst in self._instructions
            if inst.name == "measure"
        ]

    # ------------------------------------------------------------------
    # Dense unitary (for small verification circuits)
    # ------------------------------------------------------------------
    def to_unitary(self) -> np.ndarray:
        """Dense unitary of the circuit (no measurements, all parameters bound).

        Qubit 0 is the most-significant bit of the state index (big-endian),
        matching the convention used throughout :mod:`repro.simulators`.
        """
        if self.has_measurements():
            raise CircuitError("cannot build the unitary of a circuit with measurements")
        dim = 2 ** self._num_qubits
        if self._num_qubits > 12:
            raise CircuitError("to_unitary is only intended for small circuits (<= 12 qubits)")
        unitary = np.eye(dim, dtype=complex)
        for inst in self._instructions:
            if inst.name in ("barrier", "delay", "id"):
                continue
            full = _embed_unitary(inst.gate.matrix(), inst.qubits, self._num_qubits)
            unitary = full @ unitary
        return unitary

    def draw(self) -> str:
        """A minimal text rendering: one instruction per line."""
        lines = [f"{self.name} ({self._num_qubits} qubits)"]
        for inst in self._instructions:
            params = ""
            if inst.gate.params:
                params = "(" + ", ".join(_fmt_param(p) for p in inst.gate.params) + ")"
            lines.append(f"  {inst.name}{params} {list(inst.qubits)}")
        return "\n".join(lines)


def _fmt_param(p) -> str:
    if isinstance(p, ParameterExpression):
        return repr(p)
    return f"{float(p):.4g}"


def _embed_unitary(matrix: np.ndarray, qubits: Tuple[int, ...], num_qubits: int) -> np.ndarray:
    """Embed a k-qubit unitary acting on ``qubits`` into the full Hilbert space.

    Big-endian convention: qubit 0 corresponds to the left-most tensor factor.
    """
    k = len(qubits)
    dim = 2 ** num_qubits
    op = np.zeros((dim, dim), dtype=complex)
    others = [q for q in range(num_qubits) if q not in qubits]
    # Enumerate basis states by the values of the acted-on and spectator qubits.
    for col in range(dim):
        col_bits = [(col >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)]
        small_col = 0
        for idx, q in enumerate(qubits):
            small_col = (small_col << 1) | col_bits[q]
        for small_row in range(2 ** k):
            amp = matrix[small_row, small_col]
            if amp == 0:
                continue
            row_bits = list(col_bits)
            for idx, q in enumerate(qubits):
                row_bits[q] = (small_row >> (k - 1 - idx)) & 1
            row = 0
            for b in row_bits:
                row = (row << 1) | b
            op[row, col] += amp
    return op
