"""Gate library.

Gates are light-weight immutable descriptions: a name, the number of qubits
they act on and (for rotation gates) a tuple of parameters which may be
numeric or symbolic :class:`~repro.circuits.parameter.ParameterExpression`
objects.  The unitary matrix of a gate is produced by :meth:`Gate.matrix`,
which requires all parameters to be bound.

The gate set intentionally mirrors the IBM heavy-hex basis used by the paper
(``rz``, ``sx``, ``x``, ``cx``) plus the higher-level gates that ansatz and
micro-benchmarks are written in (``h``, ``ry``, ``rx``, ``y``, ``z``, ``cz``,
``swap``, ...).  ``delay`` and ``barrier`` are scheduling directives, and
``measure`` marks terminal read-out.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, Sequence, Tuple, Union

import numpy as np

from ..exceptions import CircuitError, ParameterError
from .parameter import Parameter, ParameterExpression, bind_value, free_parameters

ParamValue = Union[int, float, ParameterExpression]

_SQRT2_INV = 1.0 / math.sqrt(2.0)


class Gate:
    """An immutable gate description.

    Parameters
    ----------
    name:
        Lower-case gate mnemonic, e.g. ``"rx"``.
    num_qubits:
        Arity of the gate.
    params:
        Rotation angles or other numeric gate parameters (possibly symbolic).
    """

    def __init__(self, name: str, num_qubits: int, params: Sequence[ParamValue] = ()):
        self._name = name
        self._num_qubits = int(num_qubits)
        self._params: Tuple[ParamValue, ...] = tuple(params)

    # -- basic attributes -----------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def params(self) -> Tuple[ParamValue, ...]:
        return self._params

    @property
    def parameters(self) -> frozenset:
        """Unbound symbolic parameters appearing in this gate."""
        return free_parameters(self._params)

    def is_parameterized(self) -> bool:
        return bool(self.parameters)

    # -- transformations -------------------------------------------------
    def bind(self, binding) -> "Gate":
        """Return a copy with symbolic parameters substituted from ``binding``."""
        if not self.is_parameterized():
            return self
        new_params = [bind_value(p, binding) for p in self._params]
        return type(self)._rebuild(self._name, self._num_qubits, new_params)

    @classmethod
    def _rebuild(cls, name, num_qubits, params):
        return Gate(name, num_qubits, params)

    def inverse(self) -> "Gate":
        """Return the inverse gate.

        Self-inverse gates return themselves; rotation gates negate their
        angle.  Gates without a known inverse raise :class:`CircuitError`.
        """
        name = self._name
        if name in _SELF_INVERSE:
            return self
        if name in _ROTATION_GATES:
            return Gate(name, self._num_qubits, tuple(-p for p in self._params))
        if name == "s":
            return Gate("sdg", 1)
        if name == "sdg":
            return Gate("s", 1)
        if name == "t":
            return Gate("tdg", 1)
        if name == "tdg":
            return Gate("t", 1)
        if name == "sx":
            return Gate("sxdg", 1)
        if name == "sxdg":
            return Gate("sx", 1)
        if name == "u3":
            theta, phi, lam = self._params
            return Gate("u3", 1, (-theta, -lam, -phi))
        raise CircuitError(f"gate '{name}' has no defined inverse")

    # -- matrix ----------------------------------------------------------
    def matrix(self) -> np.ndarray:
        """Return the unitary matrix of the gate (requires bound parameters).

        Matrices are cached per ``(name, params)``: hot loops (schedule-aware
        simulation, basis translation) request the same handful of distinct
        gates thousands of times.  The returned array is read-only — copy it
        before mutating.
        """
        if self.is_parameterized():
            raise ParameterError(
                f"cannot build the matrix of '{self._name}' with unbound parameters"
            )
        try:
            params = tuple(float(p) for p in self._params)
        except (TypeError, ValueError) as error:
            # A Gate built directly (bypassing standard_gate) can carry
            # non-numeric params; fail as a typed error, not a bare ValueError.
            raise ParameterError(
                f"gate '{self._name}' has non-numeric parameter(s) {self._params!r}: {error}"
            ) from None
        return _cached_matrix(self._name, params)

    # -- dunder ------------------------------------------------------------
    def __eq__(self, other):
        if not isinstance(other, Gate):
            return NotImplemented
        return (
            self._name == other._name
            and self._num_qubits == other._num_qubits
            and self._params == other._params
        )

    def __hash__(self):
        return hash((self._name, self._num_qubits, self._params))

    def __repr__(self):
        if self._params:
            args = ", ".join(repr(p) for p in self._params)
            return f"Gate({self._name}, {args})"
        return f"Gate({self._name})"


class Barrier(Gate):
    """A scheduling barrier across a group of qubits (no unitary action)."""

    def __init__(self, num_qubits: int):
        super().__init__("barrier", num_qubits)

    def matrix(self):
        return np.eye(2 ** self.num_qubits, dtype=complex)

    def inverse(self):
        return self


class Delay(Gate):
    """Explicit idle time on one qubit, expressed in nanoseconds."""

    def __init__(self, duration_ns: float):
        if duration_ns < 0:
            raise CircuitError("delay duration must be non-negative")
        super().__init__("delay", 1, (float(duration_ns),))

    @property
    def duration(self) -> float:
        return float(self._params[0])

    def matrix(self):
        return np.eye(2, dtype=complex)

    def inverse(self):
        return self


class Measure(Gate):
    """Terminal Z-basis measurement of a single qubit into a classical bit."""

    def __init__(self):
        super().__init__("measure", 1)

    def matrix(self):
        raise CircuitError("measurement has no unitary matrix")

    def inverse(self):
        raise CircuitError("measurement is not invertible")


@lru_cache(maxsize=1024)
def _cached_matrix(name: str, params: Tuple[float, ...]) -> np.ndarray:
    try:
        builder = _MATRIX_BUILDERS[name]
    except KeyError:
        raise CircuitError(f"gate '{name}' has no matrix definition") from None
    try:
        matrix = builder(*params)
    except TypeError:
        # A Gate built directly (bypassing standard_gate) can carry the wrong
        # parameter count; fail as a typed error, not a bare TypeError.
        expected = GATE_NUM_PARAMS.get(name, 0)
        raise CircuitError(
            f"gate '{name}' expects {expected} parameter(s), got {len(params)}"
        ) from None
    matrix.flags.writeable = False
    return matrix


# ----------------------------------------------------------------------------
# Matrix builders
# ----------------------------------------------------------------------------

def _id_matrix() -> np.ndarray:
    return np.eye(2, dtype=complex)


def _x_matrix() -> np.ndarray:
    return np.array([[0, 1], [1, 0]], dtype=complex)


def _y_matrix() -> np.ndarray:
    return np.array([[0, -1j], [1j, 0]], dtype=complex)


def _z_matrix() -> np.ndarray:
    return np.array([[1, 0], [0, -1]], dtype=complex)


def _h_matrix() -> np.ndarray:
    return np.array([[_SQRT2_INV, _SQRT2_INV], [_SQRT2_INV, -_SQRT2_INV]], dtype=complex)


def _s_matrix() -> np.ndarray:
    return np.array([[1, 0], [0, 1j]], dtype=complex)


def _sdg_matrix() -> np.ndarray:
    return np.array([[1, 0], [0, -1j]], dtype=complex)


def _t_matrix() -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)


def _tdg_matrix() -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(-1j * math.pi / 4)]], dtype=complex)


def _sx_matrix() -> np.ndarray:
    return 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)


def _sxdg_matrix() -> np.ndarray:
    return _sx_matrix().conj().T


def _rx_matrix(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry_matrix(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz_matrix(phi: float) -> np.ndarray:
    return np.array([[np.exp(-1j * phi / 2), 0], [0, np.exp(1j * phi / 2)]], dtype=complex)


def _p_matrix(lam: float) -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=complex)


def _u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def _cx_matrix() -> np.ndarray:
    # Control is the first qubit; basis ordering is big-endian |q0 q1>.
    m = np.eye(4, dtype=complex)
    m[[2, 3]] = m[[3, 2]]
    return m


def _cz_matrix() -> np.ndarray:
    m = np.eye(4, dtype=complex)
    m[3, 3] = -1
    return m


def _swap_matrix() -> np.ndarray:
    m = np.eye(4, dtype=complex)
    m[[1, 2]] = m[[2, 1]]
    return m


def _rzz_matrix(theta: float) -> np.ndarray:
    phase = np.exp(-1j * theta / 2)
    anti = np.exp(1j * theta / 2)
    return np.diag([phase, anti, anti, phase]).astype(complex)


def _rxx_matrix(theta: float) -> np.ndarray:
    c = math.cos(theta / 2)
    s = -1j * math.sin(theta / 2)
    m = np.eye(4, dtype=complex) * c
    m[0, 3] = s
    m[1, 2] = s
    m[2, 1] = s
    m[3, 0] = s
    return m


def _cry_matrix(theta: float) -> np.ndarray:
    m = np.eye(4, dtype=complex)
    m[2:, 2:] = _ry_matrix(theta)
    return m


_MATRIX_BUILDERS: Dict[str, callable] = {
    "id": _id_matrix,
    "x": _x_matrix,
    "y": _y_matrix,
    "z": _z_matrix,
    "h": _h_matrix,
    "s": _s_matrix,
    "sdg": _sdg_matrix,
    "t": _t_matrix,
    "tdg": _tdg_matrix,
    "sx": _sx_matrix,
    "sxdg": _sxdg_matrix,
    "rx": _rx_matrix,
    "ry": _ry_matrix,
    "rz": _rz_matrix,
    "p": _p_matrix,
    "u3": _u3_matrix,
    "cx": _cx_matrix,
    "cz": _cz_matrix,
    "swap": _swap_matrix,
    "rzz": _rzz_matrix,
    "rxx": _rxx_matrix,
    "cry": _cry_matrix,
}

_SELF_INVERSE = {"id", "x", "y", "z", "h", "cx", "cz", "swap", "barrier", "delay"}
_ROTATION_GATES = {"rx", "ry", "rz", "p", "rzz", "rxx", "cry"}

#: Gate arities for every known gate name.
GATE_ARITY: Dict[str, int] = {
    "id": 1, "x": 1, "y": 1, "z": 1, "h": 1, "s": 1, "sdg": 1, "t": 1, "tdg": 1,
    "sx": 1, "sxdg": 1, "rx": 1, "ry": 1, "rz": 1, "p": 1, "u3": 1,
    "cx": 2, "cz": 2, "swap": 2, "rzz": 2, "rxx": 2, "cry": 2,
    "delay": 1, "barrier": 0, "measure": 1,
}

#: Number of angle parameters each gate expects.
GATE_NUM_PARAMS: Dict[str, int] = {
    "rx": 1, "ry": 1, "rz": 1, "p": 1, "u3": 3, "rzz": 1, "rxx": 1, "cry": 1,
    "delay": 1,
}

#: Gates whose action is purely a virtual frame change (zero duration on IBM hardware).
VIRTUAL_GATES = frozenset({"rz", "p", "barrier"})

#: The hardware basis used by the paper's IBM devices.
IBM_BASIS = ("rz", "sx", "x", "cx")


def standard_gate(name: str, *params: ParamValue) -> Gate:
    """Construct a gate by name with validation of arity/parameter count."""
    name = name.lower()
    if name == "barrier":
        raise CircuitError("use Barrier(num_qubits) to construct barriers")
    if name == "measure":
        return Measure()
    if name == "delay":
        if len(params) != 1:
            raise CircuitError("delay takes exactly one duration parameter")
        return Delay(params[0])
    if name not in GATE_ARITY:
        raise CircuitError(f"unknown gate '{name}'")
    expected = GATE_NUM_PARAMS.get(name, 0)
    if len(params) != expected:
        raise CircuitError(
            f"gate '{name}' expects {expected} parameter(s), got {len(params)}"
        )
    return Gate(name, GATE_ARITY[name], params)
