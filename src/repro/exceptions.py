"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that a
caller can catch library failures without also swallowing programming errors
such as :class:`TypeError` raised by misuse of the Python API itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid circuit operations."""


class ParameterError(CircuitError):
    """Raised when binding or resolving circuit parameters fails."""


class SimulationError(ReproError):
    """Raised when a simulator cannot execute the requested circuit."""


class EngineError(ReproError):
    """Raised when the execution-engine layer is misused (e.g. an unknown
    ``parallelism`` mode or an uninitialised worker process)."""


class NoiseModelError(SimulationError):
    """Raised when a noise model is inconsistent or incomplete."""


class TranspilerError(ReproError):
    """Raised when compilation (layout, routing, scheduling) fails."""


class BackendError(ReproError):
    """Raised when a device model is queried for missing properties."""


class MitigationError(ReproError):
    """Raised when an error-mitigation pass cannot be applied."""


class OptimizerError(ReproError):
    """Raised when a classical optimizer is misconfigured."""


class VQEError(ReproError):
    """Raised when a VQE problem definition or execution is invalid."""


class VAQEMError(ReproError):
    """Raised when the VAQEM tuning framework is misconfigured."""


class RuntimeSessionError(ReproError):
    """Raised when a runtime session violates its constraints (e.g. time cap)."""


class ServiceError(ReproError):
    """Base class of every error raised by the engine-as-a-service tier
    (:mod:`repro.service`).

    The service contract mirrors the frontend's: every failure a remote
    tenant can trigger — malformed envelopes, admission rejections, server
    shutdown — surfaces as exactly this taxonomy, serialised over the wire by
    exception class name and re-raised client-side as the same type, so
    callers handle local and remote failures with one ``except`` clause.
    """


class ServiceProtocolError(ServiceError):
    """Raised for malformed service requests: bodies that are not JSON, bad
    envelopes (missing tenant, empty program list), unknown paths or methods,
    oversized payloads.  Maps to HTTP 400-class statuses."""


class AdmissionError(ServiceError):
    """Base of the admission-control rejections (rate limit, queue depth,
    shutdown).  ``retry_after`` is the server's hint, in seconds, for when a
    retry is likely to be admitted (``None`` when retrying is pointless)."""

    def __init__(self, message: str, retry_after: float = None):
        self.retry_after = retry_after
        super().__init__(message)


class RateLimitError(AdmissionError):
    """Raised when a tenant exceeds its token-bucket request rate (HTTP 429).
    Carries ``retry_after``: the bucket's time-to-next-token."""


class QueueDepthError(AdmissionError):
    """Raised when a tenant's (or the fleet's) bounded queue depth is full
    (HTTP 503) — the service-tier mapping of the scheduler's
    ``max_pending_batches`` backpressure, rejecting instead of blocking."""


class ServiceShutdownError(AdmissionError):
    """Raised for submissions arriving while the server is draining for
    shutdown (HTTP 503).  In-flight requests complete; new ones get this."""


class IngestError(ReproError):
    """Base class of every error raised while ingesting *untrusted* external
    programs (OpenQASM text, JSON circuit/schedule documents).

    The frontend's contract is that malformed or hostile input raises exactly
    this taxonomy — :class:`ParseError`, :class:`ValidationError`,
    :class:`DecompositionError`, :class:`ResourceLimitError` — and never a
    bare ``KeyError`` / ``IndexError`` / ``RecursionError`` or a hang, so a
    service tier can ``except IngestError`` at the trust boundary and reject
    the request with a message safe to echo back to the submitter.
    """


class ParseError(IngestError):
    """Raised when external program text cannot be parsed.

    Carries the 1-based source position of the offending token when known;
    ``str(error)`` always embeds it (``"line L, column C: ..."``) so log
    lines and test assertions need no attribute access.
    """

    def __init__(self, message: str, line: int = None, column: int = None):
        self.line = line
        self.column = column
        if line is not None:
            position = f"line {line}"
            if column is not None:
                position += f", column {column}"
            message = f"{position}: {message}"
        super().__init__(message)


class ValidationError(IngestError):
    """Raised when a parsed program fails structural validation (bad schema,
    unknown gate, out-of-range qubit, non-finite parameter, ...)."""


class DecompositionError(IngestError):
    """Raised when a gate cannot be expanded into the native basis (no rule,
    arity/parameter mismatch against the rule, or a rule cycle)."""


class ResourceLimitError(ValidationError):
    """Raised when an ingested program exceeds a configured resource cap
    (qubits, instructions, depth, shots, macro expansion).  Subclasses
    :class:`ValidationError`: a limit violation is a validation failure with
    an explicitly configurable bound."""

    def __init__(self, message: str, limit_name: str = None, limit: float = None, actual: float = None):
        self.limit_name = limit_name
        self.limit = limit
        self.actual = actual
        super().__init__(message)
