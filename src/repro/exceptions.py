"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that a
caller can catch library failures without also swallowing programming errors
such as :class:`TypeError` raised by misuse of the Python API itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid circuit operations."""


class ParameterError(CircuitError):
    """Raised when binding or resolving circuit parameters fails."""


class SimulationError(ReproError):
    """Raised when a simulator cannot execute the requested circuit."""


class EngineError(ReproError):
    """Raised when the execution-engine layer is misused (e.g. an unknown
    ``parallelism`` mode or an uninitialised worker process)."""


class NoiseModelError(SimulationError):
    """Raised when a noise model is inconsistent or incomplete."""


class TranspilerError(ReproError):
    """Raised when compilation (layout, routing, scheduling) fails."""


class BackendError(ReproError):
    """Raised when a device model is queried for missing properties."""


class MitigationError(ReproError):
    """Raised when an error-mitigation pass cannot be applied."""


class OptimizerError(ReproError):
    """Raised when a classical optimizer is misconfigured."""


class VQEError(ReproError):
    """Raised when a VQE problem definition or execution is invalid."""


class VAQEMError(ReproError):
    """Raised when the VAQEM tuning framework is misconfigured."""


class RuntimeSessionError(ReproError):
    """Raised when a runtime session violates its constraints (e.g. time cap)."""
