"""The VAQEM pipeline: the paper's feasible flow, end to end (Fig. 11, right).

Stage 1 — *angle tuning*: the ansatz gate-rotation angles are tuned with SPSA
against the ideal simulator (or through a Runtime session for the chemistry
applications).

Stage 2 — *error-mitigation tuning on the machine*: the bound circuit is
compiled (noise-aware layout, routing, basis translation, ALAP scheduling),
its idle windows are enumerated, and the independent-window tuner sweeps each
window's DD sequence count and/or adjacent-gate position against the measured
VQA objective with every other window held at baseline.  The per-window
optima are combined into the final mitigated schedule.

:class:`VAQEMPipeline` also evaluates the paper's comparison points (No-EM,
MEM baseline, one-round DD) so a single run produces everything Figs. 12-14
need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.results import ApplicationResult, StrategyOutcome
from ..backends.device import DeviceModel
from ..engine.density_engine import NoisyDensityMatrixEngine
from ..exceptions import VAQEMError
from ..mitigation.dd import uniform_dd
from ..mitigation.mem import MeasurementMitigator
from ..operators.pauli import PauliSum
from ..optimizers.spsa import SPSA
from ..runtime.session import CircuitTimingModel, RuntimeSession
from ..simulators.noise_model import NoiseModel
from ..transpiler.idle_windows import IdleWindow
from ..transpiler.pipeline import TranspileResult, transpile
from ..transpiler.scheduling import ScheduledCircuit
from ..vqe.applications import VQAApplication
from ..vqe.expectation import ExpectationEstimator
from ..vqe.vqe import VQE, VQEResult
from .config import TuningBudget, VAQEMConfig, WindowConfiguration
from .soundness import check_energy_soundness
from .window_tuner import IndependentWindowTuner, TuningResult

#: The strategies evaluated in Figs. 12 and 13, in presentation order.
STANDARD_STRATEGIES = (
    "no_em",
    "mem",
    "dd_xx",
    "dd_xy4",
    "vaqem_gs",
    "vaqem_xx",
    "vaqem_xy",
    "vaqem_gs_xy",
)


@dataclass
class VAQEMRunResult:
    """Everything produced by one pipeline run on one application."""

    application: str
    optimal_energy: float
    angle_result: VQEResult
    transpile_result: TranspileResult
    energies: Dict[str, float] = field(default_factory=dict)
    tuning_results: Dict[str, TuningResult] = field(default_factory=dict)
    evaluation_counts: Dict[str, int] = field(default_factory=dict)
    #: Execution-engine counters at the end of the run (cache hits, prefix
    #: reuse fraction, ...), for perf tracking by the benchmark harness.
    engine_stats: Dict[str, float] = field(default_factory=dict)

    def to_application_result(self) -> ApplicationResult:
        result = ApplicationResult(application=self.application, optimal_energy=self.optimal_energy)
        for strategy, energy in self.energies.items():
            result.add(
                StrategyOutcome(
                    strategy=strategy,
                    energy=energy,
                    num_evaluations=self.evaluation_counts.get(strategy, 0),
                )
            )
        return result

    def improvement(self, strategy: str, baseline: str = "mem") -> float:
        return self.to_application_result().improvement(strategy, baseline)


class VAQEMPipeline:
    """Runs the VAQEM feasible flow for one application."""

    def __init__(
        self,
        application: VQAApplication,
        config: Optional[VAQEMConfig] = None,
        device: Optional[DeviceModel] = None,
        noise_model: Optional[NoiseModel] = None,
        engine: Optional[NoisyDensityMatrixEngine] = None,
    ):
        self.application = application
        self.config = config or VAQEMConfig()
        self.device = device or application.device()
        if noise_model is None and engine is not None:
            noise_model = engine.noise_model
        self.noise_model = noise_model or NoiseModel.from_device(self.device)
        #: All machine executions route through one shared engine, so every
        #: strategy evaluation and tuning sweep pools the same result cache
        #: and prefix snapshots.
        self.engine = engine or NoisyDensityMatrixEngine(self.noise_model, seed=self.config.seed)
        if self.engine.noise_model is not self.noise_model:
            raise VAQEMError("the injected engine must share the pipeline's noise model")
        self._angle_result: Optional[VQEResult] = None
        self._transpiled: Optional[TranspileResult] = None

    # ------------------------------------------------------------------
    # Stage 1: angle tuning
    # ------------------------------------------------------------------
    def tune_angles(self, mode: str = "ideal") -> VQEResult:
        """Tune the ansatz angles (ideal simulation or a Runtime session).

        In ``"ideal"`` mode the SPSA run is followed by a derivative-free
        polish (COBYLA) on the noise-free surface — simulation is not bound by
        Runtime's SPSA-only restriction, and a well-converged reference point
        is what makes the subsequent mitigation tuning meaningful (any noise
        can then only raise the measured energy).  ``mode="runtime"`` wraps
        the noisy objective in a :class:`RuntimeSession`, enforcing the 5-hour
        cap and SPSA-only restriction the paper describes for its chemistry
        applications.
        """
        optimizer = SPSA(maxiter=self.config.angle_tuning_iterations, seed=self.config.seed)
        vqe = VQE(self.application.ansatz, self.application.hamiltonian, optimizer, seed=self.config.seed)
        if mode == "ideal":
            spsa_result = vqe.run_ideal()
            from ..optimizers.scipy_optimizers import COBYLA

            polish = COBYLA(maxiter=max(150, 4 * self.application.num_parameters))
            polished = polish.minimize(vqe.ideal_objective, spsa_result.optimal_parameters)
            best = (
                polished
                if polished.optimal_value <= spsa_result.optimal_value
                else spsa_result
            )
            self._angle_result = VQEResult(
                optimal_parameters=np.asarray(best.optimal_parameters, dtype=float),
                optimal_value=float(best.optimal_value),
                history=list(spsa_result.history) + list(polished.history),
                num_evaluations=spsa_result.num_evaluations + polished.num_evaluations,
                execution_mode="ideal",
            )
        elif mode == "runtime":
            objective = vqe.noisy_objective_factory(
                self.device, self.noise_model, shots=self.config.shots, use_mem=self.config.use_mem
            )
            session = RuntimeSession(objective, machine_name=self.device.name)
            result = session.run_program(optimizer, vqe.initial_point())
            self._angle_result = VQE._to_vqe_result(result, "runtime")
        else:
            raise VAQEMError(f"unknown angle tuning mode '{mode}'")
        return self._angle_result

    @property
    def angle_result(self) -> VQEResult:
        if self._angle_result is None:
            self.tune_angles()
        return self._angle_result

    # ------------------------------------------------------------------
    # Stage 2 prerequisites: compile the tuned circuit
    # ------------------------------------------------------------------
    def compile(self) -> TranspileResult:
        """Bind the tuned angles, add measurements and compile for the device."""
        if self._transpiled is None:
            circuit = self.application.ansatz.bind_parameters(
                list(self.angle_result.optimal_parameters)
            )
            circuit.measure_all()
            self._transpiled = transpile(circuit, self.device)
        return self._transpiled

    def idle_windows(self) -> List[IdleWindow]:
        return self.compile().idle_windows

    # ------------------------------------------------------------------
    # Objective on the "machine"
    # ------------------------------------------------------------------
    def _mitigator(self, scheduled: ScheduledCircuit) -> Optional[MeasurementMitigator]:
        if not self.config.use_mem:
            return None
        measured = sorted(scheduled.measured_positions(), key=lambda pair: pair[1])
        physical = [scheduled.physical_qubit(pos) for pos, _ in measured]
        return MeasurementMitigator.from_device(self.device, physical)

    def _make_estimator(self, use_mem: Optional[bool] = None) -> ExpectationEstimator:
        scheduled_reference = self.compile().scheduled
        use_mem = self.config.use_mem if use_mem is None else use_mem
        mitigator = self._mitigator(scheduled_reference) if use_mem else None
        return ExpectationEstimator(
            self.noise_model,
            shots=self.config.shots,
            mitigator=mitigator,
            seed=self.config.seed,
            engine=self.engine,
        )

    def make_objective(self, use_mem: Optional[bool] = None):
        """An objective callable ``ScheduledCircuit -> energy`` on the noisy machine."""
        estimator = self._make_estimator(use_mem)
        hamiltonian = self.application.hamiltonian

        def objective(scheduled: ScheduledCircuit) -> float:
            return estimator.estimate(scheduled, hamiltonian).value

        return objective

    def make_batch_objective(self, use_mem: Optional[bool] = None):
        """A batched objective ``[ScheduledCircuit] -> [energy]``.

        This is the path the window tuner sweeps run through: the shared
        engine resolves duplicates from its result cache and simulates the
        remaining candidates from their deepest common-prefix snapshots.
        ``config.parallelism`` / ``config.max_workers`` select the execution
        tier each sweep fans out on — with ``"process"`` the candidates are
        sharded across worker processes along their prefix-reuse chains and
        the workers' results repopulate the shared engine's caches.
        """
        estimator = self._make_estimator(use_mem)
        hamiltonian = self.application.hamiltonian

        def batch_objective(schedules: Sequence[ScheduledCircuit]) -> List[float]:
            results = estimator.estimate_batch(
                schedules,
                hamiltonian,
                max_workers=self.config.max_workers,
                parallelism=self.config.parallelism,
            )
            return [r.value for r in results]

        return batch_objective

    def make_async_batch_objective(self, use_mem: Optional[bool] = None):
        """A futures-returning objective ``[ScheduledCircuit] -> [EngineFuture]``.

        This is what lets the window tuner *pipeline* its sweeps
        (``config.pipelined``, the default): candidates are queued on the
        shared engine's slot scheduler and execute — on whichever tier
        ``config.parallelism`` selects — while the tuner builds the next
        window's candidates.  Each future resolves to the candidate's energy;
        per the engine seeding contract the values are bit-identical to the
        blocking batch objective.
        """
        estimator = self._make_estimator(use_mem)
        hamiltonian = self.application.hamiltonian

        def async_batch_objective(schedules: Sequence[ScheduledCircuit]):
            futures = estimator.submit_batch(
                schedules,
                hamiltonian,
                max_workers=self.config.max_workers,
                parallelism=self.config.parallelism,
            )
            return [future.map(lambda result: result.value) for future in futures]

        return async_batch_objective

    # ------------------------------------------------------------------
    # Strategy evaluation
    # ------------------------------------------------------------------
    def _evaluate_schedule(self, scheduled: ScheduledCircuit, use_mem: bool) -> float:
        return float(self.make_objective(use_mem=use_mem)(scheduled))

    def evaluate_strategy(self, strategy: str) -> StrategyOutcome:
        """Evaluate one of the paper's comparison strategies."""
        compiled = self.compile()
        scheduled = compiled.scheduled
        windows = compiled.idle_windows
        details: Dict[str, object] = {}
        evaluations = 1

        if strategy == "no_em":
            energy = self._evaluate_schedule(scheduled, use_mem=False)
        elif strategy == "mem":
            energy = self._evaluate_schedule(scheduled, use_mem=True)
        elif strategy in ("dd_xx", "dd_xy4"):
            sequence = "xx" if strategy == "dd_xx" else "xy4"
            modified = uniform_dd(scheduled, windows, sequence=sequence, num_sequences=1)
            energy = self._evaluate_schedule(modified, use_mem=True)
        elif strategy in ("vaqem_gs", "vaqem_xx", "vaqem_xy", "vaqem_gs_xy"):
            tuning = self._run_tuner(strategy, scheduled, windows)
            energy = tuning.tuned_value
            details["tuning"] = tuning
            evaluations = tuning.num_evaluations
        else:
            raise VAQEMError(f"unknown strategy '{strategy}'")

        check_energy_soundness(
            energy,
            self.application.hamiltonian,
            tolerance=max(1e-6, 0.02 * abs(self.application.hamiltonian.ground_energy())),
            context=f"{self.application.name}/{strategy}",
        )
        return StrategyOutcome(strategy=strategy, energy=energy, num_evaluations=evaluations, details=details)

    def _run_tuner(
        self, strategy: str, scheduled: ScheduledCircuit, windows: Sequence[IdleWindow]
    ) -> TuningResult:
        tune_gs = strategy in ("vaqem_gs", "vaqem_gs_xy")
        tune_dd = strategy in ("vaqem_xx", "vaqem_xy", "vaqem_gs_xy")
        sequence = "xx" if strategy == "vaqem_xx" else "xy4"
        tuner = IndependentWindowTuner(
            objective=self.make_objective(use_mem=True),
            tune_gate_scheduling=tune_gs,
            tune_dd=tune_dd,
            dd_sequence=sequence,
            budget=self.config.budget,
            batch_objective=self.make_batch_objective(use_mem=True),
            async_batch_objective=(
                self.make_async_batch_objective(use_mem=True) if self.config.pipelined else None
            ),
        )
        return tuner.tune(scheduled, list(windows))

    # ------------------------------------------------------------------
    def run(self, strategies: Sequence[str] = STANDARD_STRATEGIES) -> VAQEMRunResult:
        """Run the full flow and evaluate the requested strategies."""
        angle_result = self.angle_result
        compiled = self.compile()
        result = VAQEMRunResult(
            application=self.application.name,
            optimal_energy=self.application.exact_ground_energy(),
            angle_result=angle_result,
            transpile_result=compiled,
        )
        for strategy in strategies:
            outcome = self.evaluate_strategy(strategy)
            result.energies[strategy] = outcome.energy
            result.evaluation_counts[strategy] = outcome.num_evaluations
            tuning = outcome.details.get("tuning")
            if tuning is not None:
                result.tuning_results[strategy] = tuning
        result.engine_stats = self.engine.stats.as_dict()
        return result
