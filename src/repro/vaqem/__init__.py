"""VAQEM: variational tuning of error-mitigation features."""

from .config import TuningBudget, VAQEMConfig, WindowConfiguration
from .framework import STANDARD_STRATEGIES, VAQEMPipeline, VAQEMRunResult
from .soundness import (
    DEFAULT_TOLERANCE,
    check_energy_soundness,
    energy_gap_to_optimal,
    mixed_state_energy_bound,
    pure_state_energy_bound,
)
from .window_tuner import IndependentWindowTuner, TuningResult, WindowSweepRecord

__all__ = [
    "VAQEMConfig",
    "TuningBudget",
    "WindowConfiguration",
    "IndependentWindowTuner",
    "TuningResult",
    "WindowSweepRecord",
    "VAQEMPipeline",
    "VAQEMRunResult",
    "STANDARD_STRATEGIES",
    "pure_state_energy_bound",
    "mixed_state_energy_bound",
    "check_energy_soundness",
    "energy_gap_to_optimal",
    "DEFAULT_TOLERANCE",
]
