"""The independent per-window error-mitigation tuner (paper §VI-C).

Qiskit Runtime cannot tune non-angle parameters and round-tripping every
candidate through the cloud is too slow, so the paper tunes mitigation
features *one idle window at a time*: while one window's configuration is
swept, every other window stays at the baseline; the per-window optima are
then combined.  This is sound because the tuned features only add or move
single-qubit gates inside idle windows, whose cross-window interactions are
negligible (§VI-C).

:class:`IndependentWindowTuner` implements exactly that flow against an
arbitrary objective callable (``ScheduledCircuit -> float``, lower is
better), so it can minimise a VQE energy (the VAQEM use-case) or maximise a
micro-benchmark fidelity (by passing the negated fidelity).

Three evaluation protocols are supported, fastest last:

* a scalar ``objective`` — one evaluation per candidate;
* a ``batch_objective`` — each window sweep submitted as one blocking batch
  (the execution-engine path, where candidates differing only inside the
  swept window share the simulated prefix);
* an ``async_batch_objective`` — a futures-returning submitter
  (``[ScheduledCircuit] -> [EngineFuture]``, see
  :mod:`repro.engine.futures`).  :meth:`IndependentWindowTuner.tune` then
  *pipelines* the sweeps: while window *N*'s candidates execute on the
  engine's batch scheduler, the tuner builds and submits window *N+1*'s
  candidates, so candidate generation overlaps execution and process-tier
  workers never sit idle between sweeps.  The engine seeding contract keeps
  the tuned result bit-identical to the blocking protocols.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import VAQEMError
from ..mitigation.dd import DDConfig, apply_dd_configuration, insert_dd_sequences, max_sequences_in_window
from ..mitigation.gate_scheduling import (
    GSConfig,
    apply_gs_configuration,
    movable_gate,
    reschedule_gate,
)
from ..transpiler.idle_windows import IdleWindow
from ..transpiler.scheduling import ScheduledCircuit
from .config import TuningBudget, WindowConfiguration

Objective = Callable[[ScheduledCircuit], float]
BatchObjective = Callable[[Sequence[ScheduledCircuit]], Sequence[float]]
#: Futures-returning submitter: each future resolves to the candidate's
#: objective value (an ``EngineFuture`` or anything with ``.result()``).
AsyncBatchObjective = Callable[[Sequence[ScheduledCircuit]], Sequence]


@dataclass
class WindowSweepRecord:
    """Everything evaluated while tuning one window."""

    window: IdleWindow
    candidates: List[WindowConfiguration] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    best: Optional[WindowConfiguration] = None
    best_value: float = float("inf")

    def record(self, candidate: WindowConfiguration, value: float) -> None:
        self.candidates.append(candidate)
        self.values.append(float(value))
        if value < self.best_value:
            self.best_value = float(value)
            self.best = candidate


@dataclass
class TuningResult:
    """Outcome of tuning every window of a scheduled circuit."""

    baseline_value: float
    tuned_value: float
    tuned_schedule: ScheduledCircuit
    window_records: List[WindowSweepRecord] = field(default_factory=list)
    num_evaluations: int = 0

    @property
    def improvement(self) -> float:
        """Objective improvement (baseline minus tuned; positive is better)."""
        return self.baseline_value - self.tuned_value

    def chosen_configurations(self) -> Dict[int, WindowConfiguration]:
        return {
            record.window.index: record.best
            for record in self.window_records
            if record.best is not None
        }


class _PipelinedWindowSweep:
    """In-flight tuning state of one window on the pipelined path.

    A window sweep has two phases with a data dependency between them: the
    gate-scheduling (GS) candidates are independent of everything, but the DD
    candidates are built *on top of the best GS position*, so they can only
    be generated once the GS futures resolved.  This object walks one window
    through ``submit GS -> resolve GS -> submit DD -> resolve DD`` while the
    driver keeps other windows' phases in flight around it.  The candidate
    sets and their recording order are exactly those of the blocking
    :meth:`IndependentWindowTuner._tune_window`, which (with the engine
    seeding contract) makes the pipelined result bit-identical.
    """

    def __init__(
        self,
        tuner: "IndependentWindowTuner",
        scheduled: ScheduledCircuit,
        window: IdleWindow,
        baseline_value: float,
    ):
        self.tuner = tuner
        self.scheduled = scheduled
        self.window = window
        self.record = WindowSweepRecord(window=window)
        self.record.record(WindowConfiguration(window.index), baseline_value)
        self._pending: List[Tuple[WindowConfiguration, object]] = []
        self._dd_submitted = False

    def submit_first(self) -> None:
        """Build and submit the window's first phase.

        Normally that is the GS sweep; when GS tuning is off (or the window
        has no movable gate) the DD candidates have no dependency to wait
        for, so they are submitted eagerly — a DD-only tuner pipelines
        exactly as well as a combined one.
        """
        tuner = self.tuner
        if tuner.tune_gate_scheduling and movable_gate(self.scheduled, self.window) is not None:
            configs = [GSConfig(position=position) for position in tuner._gs_candidates()]
            schedules = [reschedule_gate(self.scheduled, self.window, c) for c in configs]
            futures = tuner._submit_candidates(schedules)
            self._pending = [
                (WindowConfiguration(self.window.index, gs=config), future)
                for config, future in zip(configs, futures)
            ]
        else:
            self._dd_submitted = True
            self._submit_dd(None)

    def resolve_next(self) -> bool:
        """Resolve the in-flight phase; returns ``True`` once the window is done.

        Resolving the GS phase submits the DD phase (whose candidates depend
        on the GS winner), so a ``False`` return means freshly-queued work.
        """
        for candidate, future in self._pending:
            self.record.record(candidate, float(future.result()))
        self._pending = []
        if not self._dd_submitted:
            self._dd_submitted = True
            best_gs: Optional[GSConfig] = None
            if self.record.best is not None and self.record.best.gs is not None:
                best_gs = self.record.best.gs
            self._submit_dd(best_gs)
            return not self._pending
        return True

    def _submit_dd(self, best_gs: Optional[GSConfig]) -> None:
        tuner = self.tuner
        if not tuner.tune_dd:
            return
        bases = [(None, self.scheduled)]
        if best_gs is not None:
            bases.append((best_gs, reschedule_gate(self.scheduled, self.window, best_gs)))
        candidates: List[WindowConfiguration] = []
        schedules: List[ScheduledCircuit] = []
        for gs_config, base_schedule in bases:
            for count in tuner._dd_candidates(self.window, self.scheduled):
                if count == 0:
                    continue  # baseline already recorded
                dd_config = DDConfig(tuner.dd_sequence, count)
                candidates.append(
                    WindowConfiguration(self.window.index, dd=dd_config, gs=gs_config)
                )
                schedules.append(insert_dd_sequences(base_schedule, self.window, dd_config))
        if candidates:
            futures = tuner._submit_candidates(schedules)
            self._pending = list(zip(candidates, futures))


class IndependentWindowTuner:
    """Tunes DD and/or GS per idle window against a scalar objective."""

    def __init__(
        self,
        objective: Objective,
        tune_gate_scheduling: bool = True,
        tune_dd: bool = True,
        dd_sequence: str = "xy4",
        budget: Optional[TuningBudget] = None,
        batch_objective: Optional[BatchObjective] = None,
        async_batch_objective: Optional[AsyncBatchObjective] = None,
        pipeline_depth: int = 2,
    ):
        if not (tune_gate_scheduling or tune_dd):
            raise VAQEMError("enable at least one of gate scheduling / DD tuning")
        if pipeline_depth < 1:
            raise VAQEMError("pipeline_depth must be at least 1")
        self.objective = objective
        self.tune_gate_scheduling = tune_gate_scheduling
        self.tune_dd = tune_dd
        self.dd_sequence = dd_sequence
        self.budget = budget or TuningBudget()
        #: Optional vectorised objective (``[ScheduledCircuit] -> [float]``).
        #: When set, each window sweep is submitted as one batch — the
        #: execution-engine path, where candidates that only differ inside the
        #: swept window share the simulated prefix up to that window's start.
        self.batch_objective = batch_objective
        #: Optional futures-returning submitter.  When set it takes precedence
        #: over ``batch_objective`` and :meth:`tune` pipelines the window
        #: sweeps: window *N+1*'s candidates are built and submitted while
        #: window *N*'s execute (see the module docstring).
        self.async_batch_objective = async_batch_objective
        #: How many windows may have candidate batches in flight at once on
        #: the pipelined path.  Depth 1 degenerates to the blocking schedule;
        #: the default keeps one window ahead, which already hides candidate
        #: generation entirely.  Deeper pipelines only add queue memory.
        self.pipeline_depth = int(pipeline_depth)
        self._evaluations = 0

    # ------------------------------------------------------------------
    def _evaluate(self, scheduled: ScheduledCircuit) -> float:
        self._evaluations += 1
        return float(self.objective(scheduled))

    def _evaluate_batch(self, schedules: Sequence[ScheduledCircuit]) -> List[float]:
        """Evaluate a sweep's candidates, batched when a batch objective is set."""
        schedules = list(schedules)
        if not schedules:
            return []
        self._evaluations += len(schedules)
        if self.batch_objective is not None:
            values = [float(v) for v in self.batch_objective(schedules)]
            if len(values) != len(schedules):
                raise VAQEMError("batch objective returned a mismatched number of values")
            return values
        return [float(self.objective(scheduled)) for scheduled in schedules]

    def _submit_candidates(self, schedules: Sequence[ScheduledCircuit]) -> List:
        """Submit a sweep's candidates through the async protocol, counting
        each submission as one evaluation (futures always resolve or raise)."""
        schedules = list(schedules)
        if not schedules:
            return []
        self._evaluations += len(schedules)
        futures = list(self.async_batch_objective(schedules))
        if len(futures) != len(schedules):
            raise VAQEMError("async batch objective returned a mismatched number of futures")
        return futures

    def _evaluate_one(self, scheduled: ScheduledCircuit) -> float:
        """One evaluation through whichever protocol the tuner is using.

        With a batch (or async batch) objective set, *every* value the tuner
        compares — baseline, sweep candidates and greedy re-validations —
        goes through that path, so under finite shots all values are sampled
        under the same (content-seeded) protocol and comparisons stay
        consistent.
        """
        if self.async_batch_objective is not None:
            return float(self._submit_candidates([scheduled])[0].result())
        if self.batch_objective is not None:
            return self._evaluate_batch([scheduled])[0]
        return self._evaluate(scheduled)

    def _dd_candidates(self, window: IdleWindow, scheduled: ScheduledCircuit) -> List[int]:
        """DD sequence counts to sweep for a window (always includes 0)."""
        maximum = max_sequences_in_window(window, scheduled, self.dd_sequence)
        if maximum <= 0:
            return [0]
        counts = np.unique(
            np.round(np.linspace(0, maximum, min(self.budget.dd_resolution, maximum + 1))).astype(int)
        )
        return [int(c) for c in counts]

    def _gs_candidates(self) -> List[float]:
        """Gate positions to sweep (always includes the ALAP baseline 1.0)."""
        positions = list(np.linspace(0.0, 1.0, self.budget.gs_resolution))
        if 1.0 not in positions:
            positions.append(1.0)
        return positions

    # ------------------------------------------------------------------
    def _select_windows(self, windows: Sequence[IdleWindow]) -> List[IdleWindow]:
        selected = sorted(windows, key=lambda w: -w.duration_ns)
        if self.budget.max_windows is not None:
            selected = selected[: self.budget.max_windows]
        return sorted(selected, key=lambda w: w.index)

    def _tune_window(
        self, scheduled: ScheduledCircuit, window: IdleWindow, baseline_value: float
    ) -> WindowSweepRecord:
        """Sweep one window's configuration with all others at baseline.

        When both techniques are enabled they are tuned in a coordinated,
        sequential manner inside the window: the best gate position is found
        first, then DD counts are swept on top of that position (the tuner
        keeps whichever combination minimises the objective, so destructive
        interactions are weeded out automatically).
        """
        record = WindowSweepRecord(window=window)
        baseline_config = WindowConfiguration(window.index)
        record.record(baseline_config, baseline_value)

        best_gs: Optional[GSConfig] = None
        if self.tune_gate_scheduling and movable_gate(scheduled, window) is not None:
            # Every position is evaluated, including 1.0: the movable gate may
            # originally sit either after the window (ALAP, where 1.0 is a
            # near-duplicate of the baseline) or before it (where 1.0 is a
            # genuinely new placement at the window end).
            configs = [GSConfig(position=position) for position in self._gs_candidates()]
            schedules = [reschedule_gate(scheduled, window, config) for config in configs]
            for config, value in zip(configs, self._evaluate_batch(schedules)):
                record.record(WindowConfiguration(window.index, gs=config), value)
            if record.best is not None and record.best.gs is not None:
                best_gs = record.best.gs

        if self.tune_dd:
            # Sweep DD counts on top of the best gate position found above and
            # also on the untouched (ALAP) position: the two techniques can
            # interact, and the coordinated tuning keeps whichever combination
            # wins (including "DD only" and "GS only").
            bases = [(None, scheduled)]
            if best_gs is not None:
                bases.append((best_gs, reschedule_gate(scheduled, window, best_gs)))
            candidates: List[WindowConfiguration] = []
            schedules = []
            for gs_config, base_schedule in bases:
                for count in self._dd_candidates(window, scheduled):
                    if count == 0:
                        continue  # baseline already recorded
                    dd_config = DDConfig(self.dd_sequence, count)
                    candidates.append(WindowConfiguration(window.index, dd=dd_config, gs=gs_config))
                    schedules.append(insert_dd_sequences(base_schedule, window, dd_config))
            for candidate, value in zip(candidates, self._evaluate_batch(schedules)):
                record.record(candidate, value)
        return record

    # ------------------------------------------------------------------
    def tune(self, scheduled: ScheduledCircuit, windows: Sequence[IdleWindow]) -> TuningResult:
        """Tune every (selected) window independently and combine the optima.

        The per-window optima are accumulated greedily in order of their
        individual improvement: a window's configuration is kept only if the
        combined objective keeps improving.  This realises the paper's
        guarantee that "any destructive interference between techniques will
        automatically be weeded out by the tuning logic" — with overlapping
        idle windows on coupled qubits, two individually-beneficial DD
        insertions can partially cancel each other's crosstalk refocusing, and
        the greedy validation drops whichever member of such a pair no longer
        helps.
        """
        self._evaluations = 0
        baseline_value = self._evaluate_one(scheduled)
        selected = self._select_windows(windows)
        if self.async_batch_objective is not None:
            records = self._tune_windows_pipelined(scheduled, selected, baseline_value)
        else:
            records = [
                self._tune_window(scheduled, window, baseline_value) for window in selected
            ]

        improving = [
            r
            for r in records
            if r.best is not None and not r.best.is_baseline() and r.best_value < baseline_value
        ]
        improving.sort(key=lambda r: r.best_value)

        accepted: Dict[int, WindowConfiguration] = {}
        combined = scheduled
        tuned_value = baseline_value
        for record in improving:
            candidate_configs = dict(accepted)
            candidate_configs[record.window.index] = record.best
            candidate_schedule = self.apply_configurations(scheduled, windows, candidate_configs)
            candidate_value = self._evaluate_one(candidate_schedule)
            if candidate_value < tuned_value:
                accepted = candidate_configs
                combined = candidate_schedule
                tuned_value = candidate_value
        return TuningResult(
            baseline_value=baseline_value,
            tuned_value=tuned_value,
            tuned_schedule=combined,
            window_records=records,
            num_evaluations=self._evaluations,
        )

    # ------------------------------------------------------------------
    def _tune_windows_pipelined(
        self,
        scheduled: ScheduledCircuit,
        windows: Sequence[IdleWindow],
        baseline_value: float,
    ) -> List[WindowSweepRecord]:
        """Producer/consumer sweep over the selected windows.

        Up to :attr:`pipeline_depth` windows have candidate batches queued on
        the async submitter at once: while the engine's scheduler executes
        the front window's batch, this thread builds (reschedules, inserts DD
        into) and submits the following windows' candidates.  Sweep records
        are collected in window order regardless of completion order, and per
        the seeding contract they are value-identical to the blocking loop's.
        (On a shared engine the tuner's own batches stay FIFO — one
        submitter — and deep prefix sharing with its base schedule
        additionally serializes them against lookalike work, while *other*
        frontends' disjoint batches overlap freely; see
        ``docs/scheduler.md``.)
        """
        remaining = deque(windows)
        in_flight: "deque[_PipelinedWindowSweep]" = deque()
        records: List[WindowSweepRecord] = []
        while remaining or in_flight:
            while remaining and len(in_flight) < self.pipeline_depth:
                sweep = _PipelinedWindowSweep(self, scheduled, remaining.popleft(), baseline_value)
                sweep.submit_first()
                in_flight.append(sweep)
            sweep = in_flight[0]
            if sweep.resolve_next():
                records.append(sweep.record)
                in_flight.popleft()
            # A False resolve_next() just queued the window's DD batch; loop
            # around so the pipeline tops up behind it before blocking again.
        return records

    # ------------------------------------------------------------------
    @staticmethod
    def apply_configurations(
        scheduled: ScheduledCircuit,
        windows: Sequence[IdleWindow],
        configurations: Dict[int, WindowConfiguration],
    ) -> ScheduledCircuit:
        """Apply a set of per-window configurations to a schedule."""
        window_by_index = {w.index: w for w in windows}
        gs_configs = {
            index: cfg.gs
            for index, cfg in configurations.items()
            if cfg is not None and cfg.gs is not None
        }
        dd_configs = {
            index: cfg.dd
            for index, cfg in configurations.items()
            if cfg is not None and cfg.dd is not None and cfg.dd.num_sequences > 0
        }
        out = apply_gs_configuration(
            scheduled, [window_by_index[i] for i in gs_configs], gs_configs
        )
        out = apply_dd_configuration(
            out, [window_by_index[i] for i in dd_configs], dd_configs
        )
        return out
