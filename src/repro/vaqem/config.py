"""Configuration objects for the VAQEM tuning framework."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..exceptions import VAQEMError
from ..mitigation.dd import DD_SEQUENCES, DDConfig
from ..mitigation.gate_scheduling import GSConfig


@dataclass(frozen=True)
class WindowConfiguration:
    """The tuned mitigation configuration of one idle window."""

    window_index: int
    dd: Optional[DDConfig] = None
    gs: Optional[GSConfig] = None

    def is_baseline(self) -> bool:
        dd_off = self.dd is None or self.dd.num_sequences == 0
        gs_off = self.gs is None or self.gs.position == 1.0
        return dd_off and gs_off


@dataclass
class TuningBudget:
    """How finely each window is swept (paper §VI-C: resolution is bounded by
    the available execution budget on the cloud)."""

    #: Number of DD sequence counts evaluated per window (spread between 0 and
    #: the maximum number that fits).
    dd_resolution: int = 6
    #: Number of gate positions evaluated per window (spread over [0, 1]).
    gs_resolution: int = 5
    #: Cap on the number of windows tuned (largest windows first); ``None``
    #: tunes every window, matching the paper.
    max_windows: Optional[int] = None

    def __post_init__(self):
        if self.dd_resolution < 2:
            raise VAQEMError("dd_resolution must be at least 2 (baseline + one candidate)")
        if self.gs_resolution < 2:
            raise VAQEMError("gs_resolution must be at least 2")
        if self.max_windows is not None and self.max_windows < 1:
            raise VAQEMError("max_windows must be positive when given")


@dataclass
class VAQEMConfig:
    """Top-level configuration of a VAQEM run."""

    #: Whether single-qubit gate scheduling is tuned.
    tune_gate_scheduling: bool = True
    #: Whether DD insertion is tuned.
    tune_dd: bool = True
    #: Base DD sequence ("xy4" is the paper's best performer, "xx" the simplest).
    dd_sequence: str = "xy4"
    #: Sweep budget per window.
    budget: TuningBudget = field(default_factory=TuningBudget)
    #: Shots per objective evaluation (None = exact expectation, i.e. the
    #: infinite-shot limit; the paper uses shot-based estimates on hardware).
    shots: Optional[int] = None
    #: Whether measurement error mitigation is applied (the paper's baseline
    #: always includes MEM; it is orthogonal to VAQEM).
    use_mem: bool = True
    #: SPSA iterations for the angle-tuning stage.
    angle_tuning_iterations: int = 200
    #: Random seed for the whole flow.
    seed: int = 11
    #: Execution tier for the tuner's batched sweeps: ``"serial"``,
    #: ``"thread"`` or ``"process"`` (``None`` keeps the engine's serial
    #: default).  The process tier scales the sweeps across cores while the
    #: tuned energies stay bit-identical at ``shots=None`` — see
    #: :mod:`repro.engine.parallel`.
    parallelism: Optional[str] = None
    #: Worker cap for the thread/process tiers (``None`` = one per core).
    max_workers: Optional[int] = None
    #: Whether the window tuner pipelines its sweeps through the engine's
    #: asynchronous ``submit`` API: window *N+1*'s candidate schedules are
    #: built while window *N*'s execute (see ``docs/async.md``).  Tuned
    #: energies are bit-identical either way; disable only to debug with a
    #: strictly single-threaded execution order.
    pipelined: bool = True

    def __post_init__(self):
        if self.dd_sequence not in DD_SEQUENCES:
            raise VAQEMError(f"unknown DD sequence '{self.dd_sequence}'")
        if not (self.tune_gate_scheduling or self.tune_dd):
            raise VAQEMError("at least one mitigation technique must be tuned")
        if self.parallelism is not None:
            from ..engine.parallel import PARALLELISM_MODES

            if self.parallelism not in PARALLELISM_MODES:
                raise VAQEMError(
                    f"unknown parallelism mode '{self.parallelism}' "
                    f"(expected one of {PARALLELISM_MODES})"
                )

    def describe(self) -> str:
        parts = []
        if self.tune_gate_scheduling:
            parts.append("GS")
        if self.tune_dd:
            parts.append(self.dd_sequence.upper())
        return "VAQEM:" + "+".join(parts)
