"""Soundness of objective-aware mitigation tuning (paper §V).

The paper proves that variational tuning of *purely quantum* mitigation
features can never report an objective below the true ground energy:

* **Property 1 (pure-state VQE)** — ``<phi|H|phi> >= E0`` for every pure
  state, with equality only at the ground state (the variational principle).
* **Property 2 (mixed-state VQE)** — ``Tr[H rho] >= E0`` for every density
  matrix, because a mixed state is a convex combination of pure states.

These checks are asserted throughout the test-suite and at the end of every
VAQEM run, guarding against modelling bugs (e.g. an unphysical channel or a
mis-normalised readout correction) that would otherwise masquerade as
"better than ideal" mitigation.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..exceptions import VAQEMError
from ..operators.pauli import PauliSum
from ..simulators.density_matrix import DensityMatrix

#: Numerical slack allowed on the bound (measurement-mitigation clipping and
#: finite shots can push an estimate marginally below the exact bound).
DEFAULT_TOLERANCE = 1e-7


def pure_state_energy_bound(
    hamiltonian: PauliSum, statevector: np.ndarray, tolerance: float = DEFAULT_TOLERANCE
) -> bool:
    """Property 1: ``<phi|H|phi>`` is no less than the exact ground energy."""
    energy = hamiltonian.expectation_from_statevector(statevector)
    return energy >= hamiltonian.ground_energy() - tolerance


def mixed_state_energy_bound(
    hamiltonian: PauliSum,
    state: Union[np.ndarray, DensityMatrix],
    tolerance: float = DEFAULT_TOLERANCE,
) -> bool:
    """Property 2: ``Tr[H rho]`` is no less than the exact ground energy."""
    rho = state.data if isinstance(state, DensityMatrix) else np.asarray(state, dtype=complex)
    energy = hamiltonian.expectation_from_density_matrix(rho)
    return energy >= hamiltonian.ground_energy() - tolerance


def check_energy_soundness(
    measured_energy: float,
    hamiltonian: PauliSum,
    tolerance: float = 1e-6,
    context: str = "",
) -> None:
    """Raise :class:`VAQEMError` when a reported energy beats the exact optimum.

    ``tolerance`` is looser than the state-level checks because measured
    energies pass through readout mitigation (matrix inversion + clipping) and
    possibly shot sampling, both of which introduce small bias.
    """
    bound = hamiltonian.ground_energy()
    if measured_energy < bound - tolerance:
        label = f" ({context})" if context else ""
        raise VAQEMError(
            f"soundness violation{label}: measured energy {measured_energy:.6f} is below "
            f"the exact ground energy {bound:.6f}"
        )


def energy_gap_to_optimal(measured_energy: float, hamiltonian: PauliSum) -> float:
    """How far above the exact optimum a measurement lies (always >= 0 when sound)."""
    return measured_energy - hamiltonian.ground_energy()
