"""Result aggregation and the paper's comparison metrics."""

from .results import (
    ApplicationResult,
    EvaluationSummary,
    StrategyOutcome,
    fraction_of_optimal,
    improvement_over_baseline,
)

__all__ = [
    "fraction_of_optimal",
    "improvement_over_baseline",
    "StrategyOutcome",
    "ApplicationResult",
    "EvaluationSummary",
]
