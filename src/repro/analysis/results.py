"""Result records and the paper's comparison metrics.

Fig. 12 reports VQE energy *relative to the MEM baseline* (higher is better,
both energies being negative), and Fig. 13 reports energy *relative to the
simulated optimal* (a percentage of the exact ground energy recovered).  The
helpers here centralise those definitions so benchmarks, tests and examples
agree on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..exceptions import ReproError
from ..metrics.fidelity import geometric_mean

#: Floor used when a (noisy) energy has the wrong sign: the paper's metric is
#: a ratio of negative energies, so a non-negative estimate is treated as
#: recovering essentially none of the optimum.
_FRACTION_FLOOR = 1e-3


def fraction_of_optimal(measured_energy: float, optimal_energy: float) -> float:
    """Fraction of the exact ground energy recovered (Fig. 13's y-axis).

    Both energies are negative for the paper's problems; the fraction is
    clipped to ``[_FRACTION_FLOOR, 1]`` so that ratios of fractions stay
    meaningful even when noise pushes an estimate above zero.
    """
    if optimal_energy >= 0:
        raise ReproError("the exact ground energy is expected to be negative")
    fraction = measured_energy / optimal_energy
    return float(min(max(fraction, _FRACTION_FLOOR), 1.0))


def improvement_over_baseline(
    measured_energy: float, baseline_energy: float, optimal_energy: float
) -> float:
    """Fig. 12's metric: how much closer to the optimum than the baseline.

    Defined as the ratio of recovered fractions of the optimal energy, which
    equals the ratio of (negative) energies whenever both estimates have the
    correct sign and degrades gracefully otherwise.
    """
    measured_fraction = fraction_of_optimal(measured_energy, optimal_energy)
    baseline_fraction = fraction_of_optimal(baseline_energy, optimal_energy)
    return float(measured_fraction / baseline_fraction)


@dataclass
class StrategyOutcome:
    """Measured energy of one mitigation strategy on one application."""

    strategy: str
    energy: float
    num_evaluations: int = 0
    details: Dict[str, object] = field(default_factory=dict)


@dataclass
class ApplicationResult:
    """All strategy outcomes for one VQA application."""

    application: str
    optimal_energy: float
    outcomes: Dict[str, StrategyOutcome] = field(default_factory=dict)

    def add(self, outcome: StrategyOutcome) -> None:
        self.outcomes[outcome.strategy] = outcome

    def energy(self, strategy: str) -> float:
        if strategy not in self.outcomes:
            raise ReproError(f"no outcome recorded for strategy '{strategy}'")
        return self.outcomes[strategy].energy

    def fraction_of_optimal(self, strategy: str) -> float:
        return fraction_of_optimal(self.energy(strategy), self.optimal_energy)

    def improvement(self, strategy: str, baseline: str = "mem") -> float:
        return improvement_over_baseline(
            self.energy(strategy), self.energy(baseline), self.optimal_energy
        )

    def strategies(self) -> List[str]:
        return sorted(self.outcomes)


@dataclass
class EvaluationSummary:
    """Cross-application aggregation (the paper's "Geo Mean" column)."""

    results: List[ApplicationResult] = field(default_factory=list)

    def add(self, result: ApplicationResult) -> None:
        self.results.append(result)

    def applications(self) -> List[str]:
        return [r.application for r in self.results]

    def improvements(self, strategy: str, baseline: str = "mem") -> Dict[str, float]:
        return {r.application: r.improvement(strategy, baseline) for r in self.results}

    def geomean_improvement(self, strategy: str, baseline: str = "mem") -> float:
        values = list(self.improvements(strategy, baseline).values())
        return geometric_mean(values)

    def fractions_of_optimal(self, strategy: str) -> Dict[str, float]:
        return {r.application: r.fraction_of_optimal(strategy) for r in self.results}

    def table(self, strategies: Sequence[str], baseline: str = "mem") -> str:
        """A printable Fig. 12-style table of improvements plus the geomean row."""
        header = ["application"] + list(strategies)
        rows = [header]
        for result in self.results:
            rows.append(
                [result.application]
                + [f"{result.improvement(s, baseline):.2f}" for s in strategies]
            )
        rows.append(
            ["GeoMean"] + [f"{self.geomean_improvement(s, baseline):.2f}" for s in strategies]
        )
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = [
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows
        ]
        return "\n".join(lines)
