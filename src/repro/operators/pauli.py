"""Pauli strings and weighted Pauli sums (observables / Hamiltonians).

The VQE objective is the expectation value of a Hamiltonian expressed as a
weighted sum of Pauli strings.  This module provides:

* :class:`PauliString` — an n-qubit tensor product of ``I/X/Y/Z`` factors,
* :class:`PauliSum` — a real-weighted sum of Pauli strings with simplification,
  exact dense-matrix construction, exact ground-state solving and grouping of
  terms into joint measurement bases (qubit-wise commuting groups), which is
  what the shot-based expectation estimator consumes.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import VQEError

_PAULI_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

_VALID = frozenset("IXYZ")


class PauliString:
    """An n-qubit Pauli operator such as ``"ZZIIXI"``.

    The label is big-endian: character 0 acts on qubit 0, matching the
    circuit/simulator convention throughout the library.
    """

    __slots__ = ("_label",)

    def __init__(self, label: str):
        label = label.upper()
        if not label or any(ch not in _VALID for ch in label):
            raise VQEError(f"invalid Pauli label '{label}'")
        self._label = label

    @property
    def label(self) -> str:
        return self._label

    @property
    def num_qubits(self) -> int:
        return len(self._label)

    def weight(self) -> int:
        """Number of non-identity factors."""
        return sum(1 for ch in self._label if ch != "I")

    def support(self) -> Tuple[int, ...]:
        """Indices of qubits acted on non-trivially."""
        return tuple(i for i, ch in enumerate(self._label) if ch != "I")

    def factor(self, qubit: int) -> str:
        return self._label[qubit]

    def is_identity(self) -> bool:
        return self.weight() == 0

    def to_matrix(self) -> np.ndarray:
        """Dense matrix of the Pauli string (big-endian tensor order)."""
        matrix = np.array([[1.0 + 0j]])
        for ch in self._label:
            matrix = np.kron(matrix, _PAULI_MATRICES[ch])
        return matrix

    def commutes_qubitwise(self, other: "PauliString") -> bool:
        """Qubit-wise commutation: on every qubit the factors are equal or one is I."""
        if self.num_qubits != other.num_qubits:
            raise VQEError("Pauli strings act on different numbers of qubits")
        for a, b in zip(self._label, other._label):
            if a != "I" and b != "I" and a != b:
                return False
        return True

    def expectation_sign(self, bitstring: str) -> int:
        """Sign contribution (+1/-1) of a measured bitstring for this Pauli.

        Assumes measurement was performed in this Pauli's own basis (i.e. the
        appropriate basis-change gates were applied before Z-measurement), so
        each non-identity factor contributes ``(-1)^bit``.
        """
        if len(bitstring) != self.num_qubits:
            raise VQEError("bitstring length does not match the Pauli string width")
        parity = 0
        for i, ch in enumerate(self._label):
            if ch != "I" and bitstring[i] == "1":
                parity ^= 1
        return -1 if parity else 1

    def __eq__(self, other):
        return isinstance(other, PauliString) and self._label == other._label

    def __hash__(self):
        return hash(self._label)

    def __repr__(self):
        return f"PauliString({self._label})"


class PauliSum:
    """A real-weighted sum of Pauli strings, e.g. ``0.5*ZZ + 0.3*XI``."""

    def __init__(self, terms: Optional[Mapping[str, float]] = None, num_qubits: Optional[int] = None):
        self._terms: Dict[PauliString, float] = {}
        self._num_qubits = num_qubits
        if terms:
            for label, coeff in terms.items():
                self.add_term(label, coeff)
        if self._num_qubits is None:
            raise VQEError("PauliSum needs at least one term or an explicit num_qubits")

    # -- construction ----------------------------------------------------
    def add_term(self, label, coeff: float) -> "PauliSum":
        pauli = label if isinstance(label, PauliString) else PauliString(label)
        if self._num_qubits is None:
            self._num_qubits = pauli.num_qubits
        elif pauli.num_qubits != self._num_qubits:
            raise VQEError(
                f"term {pauli.label} has {pauli.num_qubits} qubits, expected {self._num_qubits}"
            )
        new = self._terms.get(pauli, 0.0) + float(coeff)
        if abs(new) < 1e-15:
            self._terms.pop(pauli, None)
        else:
            self._terms[pauli] = new
        return self

    @classmethod
    def from_list(cls, pairs: Iterable[Tuple[str, float]], num_qubits: Optional[int] = None) -> "PauliSum":
        pairs = list(pairs)
        if not pairs and num_qubits is None:
            raise VQEError("from_list needs terms or an explicit num_qubits")
        out = cls({}, num_qubits=num_qubits or len(pairs[0][0]))
        for label, coeff in pairs:
            out.add_term(label, coeff)
        return out

    # -- introspection ----------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def num_terms(self) -> int:
        return len(self._terms)

    def terms(self) -> List[Tuple[PauliString, float]]:
        """Terms sorted by label for reproducible iteration."""
        return sorted(self._terms.items(), key=lambda kv: kv[0].label)

    def coefficient(self, label) -> float:
        pauli = label if isinstance(label, PauliString) else PauliString(label)
        return self._terms.get(pauli, 0.0)

    def identity_coefficient(self) -> float:
        return self.coefficient("I" * self._num_qubits)

    def non_identity_terms(self) -> List[Tuple[PauliString, float]]:
        return [(p, c) for p, c in self.terms() if not p.is_identity()]

    def truncate(self, threshold: float) -> "PauliSum":
        """Drop terms whose |coefficient| is below ``threshold`` (paper §VII-A)."""
        kept = {p.label: c for p, c in self._terms.items() if abs(c) >= threshold or p.is_identity()}
        return PauliSum(kept, num_qubits=self._num_qubits)

    # -- algebra -----------------------------------------------------------
    def __add__(self, other: "PauliSum") -> "PauliSum":
        if not isinstance(other, PauliSum):
            return NotImplemented
        if other.num_qubits != self._num_qubits:
            raise VQEError("cannot add PauliSums of different widths")
        out = PauliSum({p.label: c for p, c in self._terms.items()}, num_qubits=self._num_qubits)
        for p, c in other._terms.items():
            out.add_term(p, c)
        return out

    def __mul__(self, scalar: float) -> "PauliSum":
        return PauliSum(
            {p.label: c * float(scalar) for p, c in self._terms.items()},
            num_qubits=self._num_qubits,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "PauliSum":
        return self * -1.0

    # -- dense linear algebra ----------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Dense Hermitian matrix of the observable."""
        dim = 2 ** self._num_qubits
        matrix = np.zeros((dim, dim), dtype=complex)
        for pauli, coeff in self._terms.items():
            matrix += coeff * pauli.to_matrix()
        return matrix

    def ground_state(self) -> Tuple[float, np.ndarray]:
        """Exact lowest eigenvalue and eigenvector via dense diagonalisation."""
        matrix = self.to_matrix()
        eigvals, eigvecs = np.linalg.eigh(matrix)
        return float(eigvals[0]), eigvecs[:, 0]

    def ground_energy(self) -> float:
        """Exact ground-state energy (the paper's 'optimal' reference value)."""
        return self.ground_state()[0]

    def expectation_from_statevector(self, statevector: np.ndarray) -> float:
        """Exact ``<psi|H|psi>`` for a pure state."""
        vec = np.asarray(statevector, dtype=complex).reshape(-1)
        if vec.size != 2 ** self._num_qubits:
            raise VQEError("statevector dimension does not match the observable width")
        return float(np.real(np.vdot(vec, self.to_matrix() @ vec)))

    def expectation_from_density_matrix(self, rho: np.ndarray) -> float:
        """Exact ``Tr[H rho]`` for a (possibly mixed) state."""
        rho = np.asarray(rho, dtype=complex)
        if rho.shape != (2 ** self._num_qubits,) * 2:
            raise VQEError("density matrix dimension does not match the observable width")
        return float(np.real(np.trace(self.to_matrix() @ rho)))

    # -- measurement grouping -----------------------------------------------
    def group_commuting(self) -> List["MeasurementGroup"]:
        """Greedy grouping of terms into qubit-wise commuting measurement groups.

        Each group can be estimated from a single measured circuit whose
        per-qubit basis is the group's joint basis.  The identity term is
        excluded (it contributes its coefficient directly).
        """
        groups: List[MeasurementGroup] = []
        for pauli, coeff in self.terms():
            if pauli.is_identity():
                continue
            placed = False
            for group in groups:
                if group.accepts(pauli):
                    group.add(pauli, coeff)
                    placed = True
                    break
            if not placed:
                group = MeasurementGroup(self._num_qubits)
                group.add(pauli, coeff)
                groups.append(group)
        return groups

    def __repr__(self):
        parts = [f"{c:+.4g}*{p.label}" for p, c in self.terms()]
        return "PauliSum(" + " ".join(parts[:6]) + (" ..." if len(parts) > 6 else "") + ")"


class MeasurementGroup:
    """A set of qubit-wise commuting Pauli terms sharing one measurement basis."""

    def __init__(self, num_qubits: int):
        self.num_qubits = num_qubits
        # joint basis per qubit: "I" means unconstrained so far.
        self._basis: List[str] = ["I"] * num_qubits
        self.terms: List[Tuple[PauliString, float]] = []

    def accepts(self, pauli: PauliString) -> bool:
        for q in range(self.num_qubits):
            factor = pauli.factor(q)
            if factor != "I" and self._basis[q] != "I" and self._basis[q] != factor:
                return False
        return True

    def add(self, pauli: PauliString, coeff: float) -> None:
        if not self.accepts(pauli):
            raise VQEError(f"{pauli.label} does not commute qubit-wise with this group")
        for q in range(self.num_qubits):
            factor = pauli.factor(q)
            if factor != "I":
                self._basis[q] = factor
        self.terms.append((pauli, coeff))

    @property
    def basis(self) -> str:
        """The joint measurement basis, one of I/X/Y/Z per qubit."""
        return "".join(self._basis)

    def __repr__(self):
        return f"MeasurementGroup(basis={self.basis}, terms={len(self.terms)})"
