"""Pauli operators and the paper's problem Hamiltonians."""

from .pauli import MeasurementGroup, PauliString, PauliSum
from .hamiltonians import (
    h2_exact_ground_energy,
    h2_hamiltonian,
    lih_exact_ground_energy,
    lih_hamiltonian,
    lithium_ion_exact_ground_energy,
    lithium_ion_hamiltonian,
    maxcut_hamiltonian,
    ring_maxcut_hamiltonian,
    tfim_exact_ground_energy,
    tfim_hamiltonian,
)

__all__ = [
    "PauliString",
    "PauliSum",
    "MeasurementGroup",
    "tfim_hamiltonian",
    "tfim_exact_ground_energy",
    "h2_hamiltonian",
    "h2_exact_ground_energy",
    "lih_hamiltonian",
    "lih_exact_ground_energy",
    "lithium_ion_hamiltonian",
    "lithium_ion_exact_ground_energy",
    "maxcut_hamiltonian",
    "ring_maxcut_hamiltonian",
]
