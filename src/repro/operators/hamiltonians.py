"""Problem Hamiltonians used by the paper's VQE benchmarks.

Three Hamiltonian families are evaluated in the paper (§VII-A):

* the one-dimensional transverse-field Ising model (TFIM), solved on
  hardware-efficient SU2 ansatz of 4 and 6 qubits,
* the hydrogen molecule (H2) with a UCCSD ansatz — here we use the standard
  4-qubit Jordan–Wigner/STO-3G coefficients from the literature (15 terms, 4
  of which have small coefficients, exactly as the paper reports), and
* the Li+ ion on a 6-qubit SU2 ansatz.  The paper's Li+ Hamiltonian came from
  a chemistry package (55 terms, ~25 truncated); we substitute a synthetic
  molecular-like 6-qubit Hamiltonian with the same term count and locality
  statistics, generated from a fixed seed (see DESIGN.md §2 for why the
  substitution preserves the relevant behaviour).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..exceptions import VQEError
from .pauli import PauliSum


def tfim_hamiltonian(
    num_qubits: int,
    j_coupling: float = 1.0,
    transverse_field: float = 1.0,
    periodic: bool = True,
) -> PauliSum:
    """One-dimensional transverse-field Ising model Hamiltonian.

    ``H = -J * sum_i Z_i Z_{i+1} - h * sum_i X_i``

    Parameters
    ----------
    num_qubits:
        Chain length (the paper uses 4 and 6).
    j_coupling:
        Nearest-neighbour ZZ coupling strength ``J``.
    transverse_field:
        Transverse field strength ``h``.
    periodic:
        Whether to close the chain into a ring (the paper's Fig. 2 example
        Hamiltonian includes the wrap-around ``ZIIIIZ`` term).
    """
    if num_qubits < 2:
        raise VQEError("the TFIM needs at least two qubits")
    ham = PauliSum({}, num_qubits=num_qubits)
    for i in range(num_qubits):
        label = ["I"] * num_qubits
        label[i] = "X"
        ham.add_term("".join(label), -float(transverse_field))
    bonds = [(i, i + 1) for i in range(num_qubits - 1)]
    if periodic:
        bonds.append((num_qubits - 1, 0))
    for a, b in bonds:
        label = ["I"] * num_qubits
        label[a] = "Z"
        label[b] = "Z"
        ham.add_term("".join(label), -float(j_coupling))
    return ham


def tfim_exact_ground_energy(
    num_qubits: int,
    j_coupling: float = 1.0,
    transverse_field: float = 1.0,
    periodic: bool = True,
) -> float:
    """Exact TFIM ground-state energy (dense diagonalisation; n <= 12)."""
    return tfim_hamiltonian(num_qubits, j_coupling, transverse_field, periodic).ground_energy()


#: Literature Jordan-Wigner coefficients for H2 at 0.7414 Angstrom in the
#: STO-3G basis (electronic part, no nuclear repulsion), 4 spin orbitals.
#: These are the widely reproduced values of Whitfield et al. / O'Malley et al.
_H2_JW_TERMS: List[Tuple[str, float]] = [
    ("IIII", -0.81261),
    ("ZIII", 0.171201),
    ("IZII", 0.171201),
    ("IIZI", -0.2227965),
    ("IIIZ", -0.2227965),
    ("ZZII", 0.16862325),
    ("ZIZI", 0.12054625),
    ("ZIIZ", 0.165868),
    ("IZZI", 0.165868),
    ("IZIZ", 0.12054625),
    ("IIZZ", 0.17434925),
    ("XXYY", -0.04532175),
    ("XYYX", 0.04532175),
    ("YXXY", 0.04532175),
    ("YYXX", -0.04532175),
]


def h2_hamiltonian(truncation_threshold: float = 0.0) -> PauliSum:
    """The 4-qubit hydrogen-molecule Hamiltonian (15 Pauli terms).

    ``truncation_threshold`` drops small-coefficient terms; the paper reports
    truncating 4 negligible terms — passing ``0.05`` reproduces that count.
    """
    ham = PauliSum.from_list(_H2_JW_TERMS)
    if truncation_threshold > 0:
        ham = ham.truncate(truncation_threshold)
    return ham


def h2_exact_ground_energy() -> float:
    """Exact electronic ground energy of the H2 Hamiltonian (about -1.85 Ha)."""
    return h2_hamiltonian().ground_energy()


def lithium_ion_hamiltonian(
    num_qubits: int = 6,
    num_terms: int = 55,
    truncation_threshold: float = 0.02,
    seed: int = 20211210,
) -> PauliSum:
    """A synthetic 6-qubit "Li+"-like molecular Hamiltonian.

    The paper's Li+ Hamiltonian has 55 Pauli terms of which roughly 25 were
    truncated as negligible.  We substitute a synthetic Hamiltonian with the
    same structural statistics:

    * a large negative identity offset (core energy),
    * one- and two-local Z-type terms with O(0.1) coefficients,
    * a tail of low-weight mixed X/Y terms with rapidly decaying coefficients
      (these are the ones the truncation removes).

    The construction is deterministic for a given ``seed`` so every benchmark
    run optimises the same problem; the exact ground energy is available from
    :meth:`PauliSum.ground_energy` for the Fig. 13 comparison.
    """
    if num_qubits < 2:
        raise VQEError("the Li+ surrogate needs at least two qubits")
    rng = np.random.default_rng(seed)
    ham = PauliSum({}, num_qubits=num_qubits)
    ham.add_term("I" * num_qubits, -6.7)  # core/offset energy (Li+ scale)

    # Single-qubit Z terms (orbital occupations).
    for q in range(num_qubits):
        label = ["I"] * num_qubits
        label[q] = "Z"
        ham.add_term("".join(label), float(rng.normal(0.25, 0.1)))

    # Two-qubit ZZ terms (Coulomb/exchange-like couplings).
    for a in range(num_qubits):
        for b in range(a + 1, num_qubits):
            label = ["I"] * num_qubits
            label[a] = "Z"
            label[b] = "Z"
            ham.add_term("".join(label), float(rng.normal(0.12, 0.05)))

    # Mixed low-weight terms with decaying magnitude (hopping-like terms and
    # the "negligible" tail that truncation removes).  Each factor is drawn
    # independently from {X, Y}; every individual Pauli string with a real
    # coefficient is Hermitian, so the total stays a valid observable.
    paulis = ["X", "Y"]
    scale = 0.15
    max_attempts = 100 * num_terms
    attempts = 0
    while ham.num_terms < num_terms and attempts < max_attempts:
        attempts += 1
        a, b = sorted(rng.choice(num_qubits, size=2, replace=False))
        label = ["I"] * num_qubits
        label[a] = paulis[int(rng.integers(2))]
        label[b] = paulis[int(rng.integers(2))]
        coeff = float(rng.normal(0.0, scale))
        if abs(coeff) < 1e-3:
            continue
        before = ham.num_terms
        ham.add_term("".join(label), coeff)
        if ham.num_terms > before:
            scale *= 0.93  # decaying tail -> many negligible terms
    if ham.num_terms < num_terms:
        raise VQEError(
            f"could not generate {num_terms} distinct terms on {num_qubits} qubits"
        )
    if truncation_threshold > 0:
        ham = ham.truncate(truncation_threshold)
    return ham


def lithium_ion_exact_ground_energy(**kwargs) -> float:
    """Exact ground energy of the Li+ surrogate Hamiltonian."""
    return lithium_ion_hamiltonian(**kwargs).ground_energy()
