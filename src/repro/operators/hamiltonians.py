"""Problem Hamiltonians used by the paper's VQE benchmarks.

Three Hamiltonian families are evaluated in the paper (§VII-A):

* the one-dimensional transverse-field Ising model (TFIM), solved on
  hardware-efficient SU2 ansatz of 4 and 6 qubits,
* the hydrogen molecule (H2) with a UCCSD ansatz — here we use the standard
  4-qubit Jordan–Wigner/STO-3G coefficients from the literature (15 terms, 4
  of which have small coefficients, exactly as the paper reports), and
* the Li+ ion on a 6-qubit SU2 ansatz.  The paper's Li+ Hamiltonian came from
  a chemistry package (55 terms, ~25 truncated); we substitute a synthetic
  molecular-like 6-qubit Hamiltonian with the same term count and locality
  statistics, generated from a fixed seed (see DESIGN.md §2 for why the
  substitution preserves the relevant behaviour).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import VQEError
from .pauli import PauliSum


def tfim_hamiltonian(
    num_qubits: int,
    j_coupling: float = 1.0,
    transverse_field: float = 1.0,
    periodic: bool = True,
) -> PauliSum:
    """One-dimensional transverse-field Ising model Hamiltonian.

    ``H = -J * sum_i Z_i Z_{i+1} - h * sum_i X_i``

    Parameters
    ----------
    num_qubits:
        Chain length (the paper uses 4 and 6).
    j_coupling:
        Nearest-neighbour ZZ coupling strength ``J``.
    transverse_field:
        Transverse field strength ``h``.
    periodic:
        Whether to close the chain into a ring (the paper's Fig. 2 example
        Hamiltonian includes the wrap-around ``ZIIIIZ`` term).
    """
    if num_qubits < 2:
        raise VQEError("the TFIM needs at least two qubits")
    ham = PauliSum({}, num_qubits=num_qubits)
    for i in range(num_qubits):
        label = ["I"] * num_qubits
        label[i] = "X"
        ham.add_term("".join(label), -float(transverse_field))
    bonds = [(i, i + 1) for i in range(num_qubits - 1)]
    if periodic:
        bonds.append((num_qubits - 1, 0))
    for a, b in bonds:
        label = ["I"] * num_qubits
        label[a] = "Z"
        label[b] = "Z"
        ham.add_term("".join(label), -float(j_coupling))
    return ham


def tfim_exact_ground_energy(
    num_qubits: int,
    j_coupling: float = 1.0,
    transverse_field: float = 1.0,
    periodic: bool = True,
) -> float:
    """Exact TFIM ground-state energy (dense diagonalisation; n <= 12)."""
    return tfim_hamiltonian(num_qubits, j_coupling, transverse_field, periodic).ground_energy()


#: Literature Jordan-Wigner coefficients for H2 at 0.7414 Angstrom in the
#: STO-3G basis (electronic part, no nuclear repulsion), 4 spin orbitals.
#: These are the widely reproduced values of Whitfield et al. / O'Malley et al.
_H2_JW_TERMS: List[Tuple[str, float]] = [
    ("IIII", -0.81261),
    ("ZIII", 0.171201),
    ("IZII", 0.171201),
    ("IIZI", -0.2227965),
    ("IIIZ", -0.2227965),
    ("ZZII", 0.16862325),
    ("ZIZI", 0.12054625),
    ("ZIIZ", 0.165868),
    ("IZZI", 0.165868),
    ("IZIZ", 0.12054625),
    ("IIZZ", 0.17434925),
    ("XXYY", -0.04532175),
    ("XYYX", 0.04532175),
    ("YXXY", 0.04532175),
    ("YYXX", -0.04532175),
]


def h2_hamiltonian(truncation_threshold: float = 0.0) -> PauliSum:
    """The 4-qubit hydrogen-molecule Hamiltonian (15 Pauli terms).

    ``truncation_threshold`` drops small-coefficient terms; the paper reports
    truncating 4 negligible terms — passing ``0.05`` reproduces that count.
    """
    ham = PauliSum.from_list(_H2_JW_TERMS)
    if truncation_threshold > 0:
        ham = ham.truncate(truncation_threshold)
    return ham


def h2_exact_ground_energy() -> float:
    """Exact electronic ground energy of the H2 Hamiltonian (about -1.85 Ha)."""
    return h2_hamiltonian().ground_energy()


def _synthetic_molecular_hamiltonian(
    num_qubits: int,
    num_terms: int,
    identity_offset: float,
    z_mean: float,
    z_std: float,
    zz_mean: float,
    zz_std: float,
    tail_scale: float,
    tail_decay: float,
    seed: int,
) -> PauliSum:
    """Generate a molecular-like Hamiltonian with controlled term statistics.

    The structure mirrors Jordan–Wigner chemistry Hamiltonians:

    * a large negative identity offset (core energy),
    * one-local Z terms (orbital occupations),
    * two-local ZZ terms (Coulomb/exchange-like couplings),
    * a tail of low-weight mixed X/Y terms with decaying coefficients (the
      hopping-like terms a truncation threshold removes).

    The draw sequence is deterministic for a given ``seed``: every benchmark
    run optimises the same problem, and the exact ground energy comes from
    :meth:`PauliSum.ground_energy`.
    """
    if num_qubits < 2:
        raise VQEError("the synthetic molecular generator needs at least two qubits")
    rng = np.random.default_rng(seed)
    ham = PauliSum({}, num_qubits=num_qubits)
    ham.add_term("I" * num_qubits, identity_offset)

    # Single-qubit Z terms (orbital occupations).
    for q in range(num_qubits):
        label = ["I"] * num_qubits
        label[q] = "Z"
        ham.add_term("".join(label), float(rng.normal(z_mean, z_std)))

    # Two-qubit ZZ terms (Coulomb/exchange-like couplings).
    for a in range(num_qubits):
        for b in range(a + 1, num_qubits):
            label = ["I"] * num_qubits
            label[a] = "Z"
            label[b] = "Z"
            ham.add_term("".join(label), float(rng.normal(zz_mean, zz_std)))

    # Mixed low-weight terms with decaying magnitude (hopping-like terms and
    # the "negligible" tail that truncation removes).  Each factor is drawn
    # independently from {X, Y}; every individual Pauli string with a real
    # coefficient is Hermitian, so the total stays a valid observable.
    paulis = ["X", "Y"]
    scale = tail_scale
    max_attempts = 100 * num_terms
    attempts = 0
    while ham.num_terms < num_terms and attempts < max_attempts:
        attempts += 1
        a, b = sorted(rng.choice(num_qubits, size=2, replace=False))
        label = ["I"] * num_qubits
        label[a] = paulis[int(rng.integers(2))]
        label[b] = paulis[int(rng.integers(2))]
        coeff = float(rng.normal(0.0, scale))
        if abs(coeff) < 1e-3:
            continue
        before = ham.num_terms
        ham.add_term("".join(label), coeff)
        if ham.num_terms > before:
            scale *= tail_decay  # decaying tail -> many negligible terms
    if ham.num_terms < num_terms:
        raise VQEError(
            f"could not generate {num_terms} distinct terms on {num_qubits} qubits"
        )
    return ham


def lithium_ion_hamiltonian(
    num_qubits: int = 6,
    num_terms: int = 55,
    truncation_threshold: float = 0.02,
    seed: int = 20211210,
) -> PauliSum:
    """A synthetic 6-qubit "Li+"-like molecular Hamiltonian.

    The paper's Li+ Hamiltonian has 55 Pauli terms of which roughly 25 were
    truncated as negligible.  We substitute a synthetic Hamiltonian with the
    same structural statistics (see :func:`_synthetic_molecular_hamiltonian`
    and DESIGN.md §2 for why the substitution preserves the relevant
    behaviour).
    """
    ham = _synthetic_molecular_hamiltonian(
        num_qubits=num_qubits,
        num_terms=num_terms,
        identity_offset=-6.7,  # core/offset energy (Li+ scale)
        z_mean=0.25,
        z_std=0.1,
        zz_mean=0.12,
        zz_std=0.05,
        tail_scale=0.15,
        tail_decay=0.93,
        seed=seed,
    )
    if truncation_threshold > 0:
        ham = ham.truncate(truncation_threshold)
    return ham


def lithium_ion_exact_ground_energy(**kwargs) -> float:
    """Exact ground energy of the Li+ surrogate Hamiltonian."""
    return lithium_ion_hamiltonian(**kwargs).ground_energy()


def lih_hamiltonian(
    num_qubits: int = 6,
    num_terms: int = 62,
    truncation_threshold: float = 0.0,
    seed: int = 20220315,
) -> PauliSum:
    """A synthetic 6-qubit LiH-scale molecular Hamiltonian.

    Lithium hydride is the step beyond H2 in VQE benchmark suites: more
    qubits, many more Pauli terms, and many more measurement groups — which
    is exactly what stresses the batched optimizer path and the adaptive shot
    collector.  Like the Li+ surrogate, this is a synthetic Hamiltonian with
    LiH-like structural statistics (a ~-7.9 Ha core offset and a longer
    mixed-term tail), not chemistry-package coefficients; the benchmarks
    compare optimizers against ``ground_energy()`` of the *same* operator, so
    only the structure matters.
    """
    ham = _synthetic_molecular_hamiltonian(
        num_qubits=num_qubits,
        num_terms=num_terms,
        identity_offset=-7.88,  # LiH-scale core/offset energy
        z_mean=0.2,
        z_std=0.08,
        zz_mean=0.1,
        zz_std=0.04,
        tail_scale=0.12,
        tail_decay=0.95,
        seed=seed,
    )
    if truncation_threshold > 0:
        ham = ham.truncate(truncation_threshold)
    return ham


def lih_exact_ground_energy(**kwargs) -> float:
    """Exact ground energy of the LiH surrogate Hamiltonian."""
    return lih_hamiltonian(**kwargs).ground_energy()


def maxcut_hamiltonian(
    num_nodes: int,
    edges: List[Tuple[int, int]],
    weights: Optional[List[float]] = None,
) -> PauliSum:
    """The MaxCut cost Hamiltonian ``H = sum_e (w_e / 2) (Z_a Z_b - I)``.

    Minimising ``<H>`` maximises the cut: a computational-basis state with
    qubit ``a`` and ``b`` on opposite sides contributes ``-w_e`` per cut edge,
    so ``ground_energy() == -maxcut_value``.  This is the standard QAOA
    benchmark objective.
    """
    if num_nodes < 2:
        raise VQEError("MaxCut needs at least two nodes")
    if not edges:
        raise VQEError("MaxCut needs at least one edge")
    if weights is None:
        weights = [1.0] * len(edges)
    if len(weights) != len(edges):
        raise VQEError("weights must match edges one-to-one")
    ham = PauliSum({}, num_qubits=num_nodes)
    for (a, b), weight in zip(edges, weights):
        if not (0 <= a < num_nodes and 0 <= b < num_nodes) or a == b:
            raise VQEError(f"invalid edge ({a}, {b}) for {num_nodes} nodes")
        label = ["I"] * num_nodes
        label[a] = "Z"
        label[b] = "Z"
        ham.add_term("".join(label), weight / 2.0)
        ham.add_term("I" * num_nodes, -weight / 2.0)
    return ham


def ring_maxcut_hamiltonian(num_nodes: int = 6) -> PauliSum:
    """MaxCut on an even ring — the canonical QAOA warm-up instance.

    An even ring is fully cuttable (max cut = ``num_nodes``), so the exact
    optimum is known in closed form and convergence is easy to judge.
    """
    if num_nodes % 2 != 0:
        raise VQEError("the ring instance uses an even node count")
    edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    return maxcut_hamiltonian(num_nodes, edges)
