"""Tests for the asynchronous submission layer (:mod:`repro.engine.futures`).

Covers the guarantees ``docs/async.md`` promises:

* blocking-vs-async parity — bit-identical results on the serial, thread and
  process tiers, on all three engines;
* exception propagation — a failing batch re-raises from
  ``EngineFuture.result()`` and is returned by ``exception()``;
* cancellation — futures of not-yet-started batches cancel (and are pruned
  from their batch), running/resolved futures refuse;
* stats/cache merge correctness with two batches in flight on one engine;
* the pipelined window tuner — identical tuning outcome, including the
  per-window candidate/value traces, versus the blocking protocols;
* scheduler lifecycle — close() drains pending batches, engines are
  reusable afterwards.

The slot scheduler's own policies (per-tier slots, fingerprint-overlap
serialization, fairness, priority, pool sharing) are covered in
``tests/test_scheduler.py``.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.circuits import efficient_su2
from repro.engine import (
    BatchScheduler,
    FakeDeviceEngine,
    NoisyDensityMatrixEngine,
    StatevectorEngine,
    gather,
)
from repro.engine.futures import EngineFuture
from repro.exceptions import EngineError, SimulationError
from repro.mitigation import DDConfig, insert_dd_sequences
from repro.mitigation.gate_scheduling import GSConfig, reschedule_gate
from repro.transpiler import transpile
from repro.vaqem import IndependentWindowTuner, TuningBudget
from repro.vqe import ExpectationEstimator

WORKERS = 2

MODES = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def sweep_schedules(device):
    """A compiled ansatz plus window-tuner-style candidates (with duplicates)."""
    ansatz = efficient_su2(4, reps=2, entanglement="circular")
    rng = np.random.default_rng(21)
    bound = ansatz.bind_parameters(rng.uniform(-math.pi, math.pi, ansatz.num_parameters))
    bound.measure_all()
    compiled = transpile(bound, device)
    schedules = [compiled.scheduled]
    for window in compiled.idle_windows[:3]:
        schedules.append(reschedule_gate(compiled.scheduled, window, GSConfig(0.5)))
        try:
            schedules.append(insert_dd_sequences(compiled.scheduled, window, DDConfig("xy4", 1)))
        except Exception:
            pass
    schedules.append(compiled.scheduled.copy())  # content-identical duplicate
    return compiled, schedules


@pytest.fixture(scope="module")
def logical_circuits():
    ansatz = efficient_su2(4, reps=1, entanglement="linear")
    rng = np.random.default_rng(8)
    circuits = [
        ansatz.bind_parameters(rng.uniform(-math.pi, math.pi, ansatz.num_parameters))
        for _ in range(4)
    ]
    circuits.append(circuits[0].copy())
    return circuits


# ----------------------------------------------------------------------------
# EngineFuture unit behaviour
# ----------------------------------------------------------------------------

class TestEngineFuture:
    def test_result_and_done(self):
        future = EngineFuture()
        assert not future.done()
        future._set_result(41)
        assert future.done() and not future.cancelled()
        assert future.result() == 41
        assert future.exception() is None

    def test_exception_propagates(self):
        future = EngineFuture()
        future._set_exception(ValueError("boom"))
        assert isinstance(future.exception(), ValueError)
        with pytest.raises(ValueError, match="boom"):
            future.result()

    def test_cancel_only_before_running(self):
        pending = EngineFuture()
        assert pending.cancel()
        assert pending.cancelled()
        with pytest.raises(CancelledError):
            pending.result()
        running = EngineFuture()
        assert running._set_running()
        assert not running.cancel()
        running._set_result(1)
        assert not running.cancel()
        assert running.result() == 1

    def test_result_timeout_raises(self):
        future = EngineFuture()
        with pytest.raises(EngineError):
            future.result(timeout=0.01)

    def test_map_transforms_and_chains_errors(self):
        future = EngineFuture()
        doubled = future.map(lambda v: 2 * v)
        future._set_result(21)
        assert doubled.result() == 42
        failing = EngineFuture()
        mapped = failing.map(lambda v: v)
        failing._set_exception(KeyError("missing"))
        assert isinstance(mapped.exception(), KeyError)
        bad_transform = EngineFuture().map(lambda v: 1 / v)
        bad_transform._source._set_result(0)
        assert isinstance(bad_transform.exception(), ZeroDivisionError)

    def test_cancel_of_mapped_future_forwards_to_source(self):
        source = EngineFuture()
        mapped = source.map(lambda v: v)
        assert mapped.cancel()
        assert source.cancelled() and mapped.cancelled()

    def test_add_done_callback_fires_immediately_when_done(self):
        future = EngineFuture()
        future._set_result("x")
        seen = []
        future.add_done_callback(seen.append)
        assert seen == [future]

    def test_raising_callback_does_not_break_resolution(self):
        future = EngineFuture()
        seen = []
        future.add_done_callback(lambda f: 1 / 0)
        future.add_done_callback(seen.append)
        future._set_result(7)  # must not raise out of the resolver
        assert seen == [future]
        assert future.result() == 7


# ----------------------------------------------------------------------------
# Scheduler behaviour (driven through a controllable fake engine)
# ----------------------------------------------------------------------------

class _SlowEngine:
    """Minimal engine stand-in whose batches block on an event.

    All items share one fingerprint chain, so every batch conflicts with
    every other and the scheduler drains them strictly one at a time — the
    serial-drain behaviour the cancellation tests rely on.
    """

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.executed: list = []

    def _shard_chain(self, kind, item):
        return ("root", "shared-prefix")

    def _dispatch_batch(self, kind, items, kwargs, max_workers, parallelism, chains=None):
        self.started.set()
        if not self.release.wait(timeout=10):  # pragma: no cover - deadlock guard
            raise EngineError("test gate never opened")
        self.executed.append(list(items))
        if kwargs.get("fail"):
            raise RuntimeError("batch exploded")
        return [item * 2 for item in items]


class TestBatchScheduler:
    def test_cancellation_of_queued_batch_and_item_pruning(self):
        engine = _SlowEngine()
        scheduler = BatchScheduler(engine, name="test-scheduler")
        first = scheduler.submit("run", [1, 2], {})
        engine.started.wait(timeout=10)
        # The first batch is now running (uncancellable); the second and
        # third conflict with it, so they are queued — fully cancellable for
        # the second, partially for the third.
        second = scheduler.submit("run", [3, 4], {})
        third = scheduler.submit("run", [5, 6], {})
        assert all(future.cancel() for future in second)
        assert third[0].cancel()
        assert not first[0].cancel()
        engine.release.set()
        assert gather(first) == [2, 4]
        assert third[1].result() == 12
        with pytest.raises(CancelledError):
            second[0].result()
        # The cancelled batch never executed; the pruned item never shipped.
        scheduler.shutdown()
        assert [1, 2] in engine.executed
        assert [3, 4] not in engine.executed
        assert [6] in engine.executed

    def test_batch_exception_lands_on_every_future(self):
        engine = _SlowEngine()
        engine.release.set()
        scheduler = BatchScheduler(engine, name="test-scheduler")
        futures = scheduler.submit("run", [1, 2], {"fail": True})
        for future in futures:
            assert isinstance(future.exception(), RuntimeError)
        scheduler.shutdown()

    def test_submit_after_shutdown_raises(self):
        engine = _SlowEngine()
        engine.release.set()
        scheduler = BatchScheduler(engine, name="test-scheduler")
        scheduler.shutdown()
        with pytest.raises(EngineError):
            scheduler.submit("run", [1], {})

    def test_shutdown_drains_queued_batches(self):
        engine = _SlowEngine()
        engine.release.set()
        scheduler = BatchScheduler(engine, name="test-scheduler")
        futures = scheduler.submit("run", [7], {})
        scheduler.shutdown(wait=True)
        assert futures[0].result() == 14

    def test_shutdown_is_idempotent_with_futures_pending(self):
        engine = _SlowEngine()
        scheduler = BatchScheduler(engine, name="test-scheduler")
        first = scheduler.submit("run", [1], {})
        second = scheduler.submit("run", [2], {})
        engine.started.wait(timeout=10)
        closer = threading.Thread(target=scheduler.shutdown)
        closer.start()
        engine.release.set()
        # A second shutdown racing the first must drain, not raise.
        scheduler.shutdown()
        closer.join(timeout=10)
        assert not closer.is_alive()
        assert gather(first) + gather(second) == [2, 4]

    def test_raising_done_callback_does_not_kill_scheduler(self):
        engine = _SlowEngine()
        engine.release.set()
        scheduler = BatchScheduler(engine, name="test-scheduler")
        poisoned = scheduler.submit("run", [1], {})[0]
        poisoned.add_done_callback(lambda f: 1 / 0)
        assert poisoned.result() == 2
        # The scheduler survived the raising callback.
        assert scheduler.submit("run", [2], {})[0].result() == 4
        scheduler.shutdown()


# ----------------------------------------------------------------------------
# Blocking-vs-async parity on the real engines
# ----------------------------------------------------------------------------

class TestAsyncParity:
    @pytest.mark.parametrize("mode", MODES)
    def test_noisy_expectations_bit_identical(self, device_noise, sweep_schedules, tfim4, mode):
        _, schedules = sweep_schedules
        blocking_engine = NoisyDensityMatrixEngine(device_noise, seed=3)
        async_engine = NoisyDensityMatrixEngine(device_noise, seed=3)
        blocking = blocking_engine.expectation_batch(
            schedules, tfim4, max_workers=WORKERS, parallelism=mode
        )
        futures = async_engine.submit_expectation_batch(
            schedules, tfim4, max_workers=WORKERS, parallelism=mode
        )
        assert gather(futures) == blocking
        sampled_blocking = blocking_engine.expectation_batch(
            schedules, tfim4, shots=256, max_workers=WORKERS, parallelism=mode
        )
        sampled_async = gather(
            async_engine.submit_expectation_batch(
                schedules, tfim4, shots=256, max_workers=WORKERS, parallelism=mode
            )
        )
        assert sampled_async == sampled_blocking
        blocking_engine.close()
        async_engine.close()

    def test_noisy_run_submit_matches_run_batch(self, device_noise, sweep_schedules):
        _, schedules = sweep_schedules
        engine = NoisyDensityMatrixEngine(device_noise, seed=1)
        blocking = engine.run_batch(schedules)
        fresh = NoisyDensityMatrixEngine(device_noise, seed=1)
        futures = fresh.submit_batch(schedules, max_workers=WORKERS, parallelism="process")
        for reference, result in zip(blocking, gather(futures)):
            assert reference.fingerprint == result.fingerprint
            assert np.array_equal(reference.state.data, result.state.data)
        engine.close()
        fresh.close()

    def test_statevector_and_fake_device_parity(self, device, logical_circuits, tfim4):
        ideal = StatevectorEngine(seed=5)
        assert gather(ideal.submit_expectation_batch(logical_circuits, tfim4)) == (
            ideal.expectation_batch(logical_circuits, tfim4)
        )
        single = ideal.submit(logical_circuits[0]).result()
        assert np.array_equal(single.state, ideal.run(logical_circuits[0]).state)
        ideal.close()

        measured = [c.copy() for c in logical_circuits]
        for circuit in measured:
            circuit.measure_all()
        machine = FakeDeviceEngine(device, seed=6, shots=300)
        blocking = machine.expectation_batch(measured, tfim4)  # configured shots
        async_values = gather(machine.submit_expectation_batch(measured, tfim4))
        assert async_values == blocking
        machine.close()

    def test_two_batches_in_flight_merge_stats_and_caches(
        self, device_noise, sweep_schedules, tfim4
    ):
        _, schedules = sweep_schedules
        split = len(schedules) // 2
        engine = NoisyDensityMatrixEngine(device_noise, seed=2)
        first = engine.submit_expectation_batch(
            schedules[:split], tfim4, max_workers=WORKERS, parallelism="process"
        )
        second = engine.submit_expectation_batch(
            schedules[split:], tfim4, max_workers=WORKERS, parallelism="process"
        )
        values = gather(first) + gather(second)
        reference_engine = NoisyDensityMatrixEngine(device_noise, seed=2)
        reference = reference_engine.expectation_batch(schedules, tfim4)
        assert values == reference
        # Merge-back correctness: every schedule's state and expectation is
        # now in the parent's caches, so the blocking re-query is all hits.
        executions_before = engine.stats.executions
        requery = engine.expectation_batch(schedules, tfim4)
        assert requery == reference
        assert engine.stats.executions == executions_before
        assert engine.stats.expectation_cache_hits >= len(schedules)
        for scheduled in schedules:
            assert engine.run(scheduled).from_cache
        engine.close()
        reference_engine.close()

    def test_exception_propagates_through_engine_future(self, logical_circuits):
        from repro.operators import tfim_hamiltonian

        engine = StatevectorEngine(seed=1)
        mismatched = tfim_hamiltonian(3)  # circuits have 4 qubits
        future = engine.submit_expectation_batch([logical_circuits[0]], mismatched)[0]
        assert isinstance(future.exception(), SimulationError)
        with pytest.raises(SimulationError):
            future.result()
        # The engine survives a failed batch: later submissions still work.
        from repro.operators import tfim_hamiltonian as make

        value = engine.submit_expectation_batch([logical_circuits[0]], make(4))[0].result()
        assert np.isfinite(value)
        engine.close()

    def test_close_is_reentrant_and_engine_reusable(self, logical_circuits, tfim4):
        engine = StatevectorEngine(seed=5)
        engine.submit_batch(logical_circuits)
        engine.close()
        engine.close()
        values = gather(engine.submit_expectation_batch(logical_circuits, tfim4))
        assert len(values) == len(logical_circuits)
        engine.close()


# ----------------------------------------------------------------------------
# Expectations-only process-tier IPC mode
# ----------------------------------------------------------------------------

class TestExpectationsOnlyIPC:
    def test_values_identical_and_expectation_cache_warm(
        self, device_noise, sweep_schedules, tfim4
    ):
        _, schedules = sweep_schedules
        lean = NoisyDensityMatrixEngine(device_noise, seed=3, expectations_only_ipc=True)
        full = NoisyDensityMatrixEngine(device_noise, seed=3)
        lean_values = lean.expectation_batch(
            schedules, tfim4, max_workers=WORKERS, parallelism="process"
        )
        full_values = full.expectation_batch(
            schedules, tfim4, max_workers=WORKERS, parallelism="process"
        )
        assert lean_values == full_values
        # Expectation records merged: re-query costs no simulation at all.
        simulated_before = lean.stats.instructions_simulated
        assert lean.expectation_batch(schedules, tfim4) == lean_values
        assert lean.stats.instructions_simulated == simulated_before
        # But the heavy states were never shipped to the parent.
        fingerprints = {lean._chain(s)[1][-1] for s in schedules}
        with lean._lock:
            lean_states = {fp for fp in fingerprints if fp in lean._results}
        with full._lock:
            full_states = {fp for fp in fingerprints if fp in full._results}
        assert not lean_states
        assert full_states == fingerprints
        lean.close()
        full.close()

    def test_run_batches_still_ship_states(self, device_noise, sweep_schedules):
        _, schedules = sweep_schedules
        engine = NoisyDensityMatrixEngine(device_noise, seed=1, expectations_only_ipc=True)
        engine.run_batch(schedules, max_workers=WORKERS, parallelism="process")
        for scheduled in schedules:
            assert engine.run(scheduled).from_cache
        engine.close()

    def test_ipc_toggle_retires_worker_pool(self, device_noise, sweep_schedules, tfim4):
        _, schedules = sweep_schedules
        engine = NoisyDensityMatrixEngine(device_noise, seed=2)
        engine.expectation_batch(
            schedules[:2], tfim4, max_workers=WORKERS, parallelism="process"
        )
        (first_pool,) = engine._pools.handles()
        engine.expectations_only_ipc = True
        engine.expectation_batch(
            schedules[2:4], tfim4, max_workers=WORKERS, parallelism="process"
        )
        (second_pool,) = engine._pools.handles()
        assert second_pool is not first_pool
        engine.close()


# ----------------------------------------------------------------------------
# The pipelined window tuner
# ----------------------------------------------------------------------------

class TestPipelinedTuner:
    def _tune(self, device_noise, compiled, tfim4, protocol, pipeline_depth=2):
        estimator = ExpectationEstimator(device_noise, seed=9)
        budget = TuningBudget(dd_resolution=2, gs_resolution=2, max_windows=3)
        kwargs = {}
        if protocol == "async":
            kwargs["async_batch_objective"] = lambda ss: [
                future.map(lambda r: r.value)
                for future in estimator.submit_batch(ss, tfim4)
            ]
            kwargs["pipeline_depth"] = pipeline_depth
        elif protocol == "batch":
            kwargs["batch_objective"] = lambda ss: [
                r.value for r in estimator.estimate_batch(ss, tfim4)
            ]
        tuner = IndependentWindowTuner(
            objective=lambda s: estimator.estimate(s, tfim4).value,
            budget=budget,
            **kwargs,
        )
        outcome = tuner.tune(compiled.scheduled, compiled.idle_windows)
        estimator.engine.close()
        return outcome

    @pytest.mark.parametrize("depth", (1, 2, 4))
    def test_pipelined_tuner_matches_blocking(self, device_noise, sweep_schedules, tfim4, depth):
        compiled, _ = sweep_schedules
        blocking = self._tune(device_noise, compiled, tfim4, "batch")
        pipelined = self._tune(device_noise, compiled, tfim4, "async", pipeline_depth=depth)
        assert pipelined.baseline_value == blocking.baseline_value
        assert pipelined.tuned_value == blocking.tuned_value
        assert pipelined.num_evaluations == blocking.num_evaluations
        assert pipelined.chosen_configurations() == blocking.chosen_configurations()
        for pipe_record, block_record in zip(pipelined.window_records, blocking.window_records):
            assert pipe_record.window.index == block_record.window.index
            assert pipe_record.candidates == block_record.candidates
            assert pipe_record.values == block_record.values

    def test_dd_only_pipelined_matches_blocking(self, device_noise, sweep_schedules, tfim4):
        """Without a GS phase the DD candidates submit eagerly; the outcome
        must still match the blocking DD-only tuner exactly."""
        compiled, _ = sweep_schedules
        budget = TuningBudget(dd_resolution=3, gs_resolution=2, max_windows=3)
        outcomes = {}
        for protocol in ("batch", "async"):
            estimator = ExpectationEstimator(device_noise, seed=9)
            kwargs = {}
            if protocol == "async":
                kwargs["async_batch_objective"] = lambda ss: [
                    future.map(lambda r: r.value)
                    for future in estimator.submit_batch(ss, tfim4)
                ]
            else:
                kwargs["batch_objective"] = lambda ss: [
                    r.value for r in estimator.estimate_batch(ss, tfim4)
                ]
            tuner = IndependentWindowTuner(
                objective=lambda s: estimator.estimate(s, tfim4).value,
                tune_gate_scheduling=False,
                tune_dd=True,
                budget=budget,
                **kwargs,
            )
            outcomes[protocol] = tuner.tune(compiled.scheduled, compiled.idle_windows)
            estimator.engine.close()
        assert outcomes["async"].tuned_value == outcomes["batch"].tuned_value
        assert outcomes["async"].num_evaluations == outcomes["batch"].num_evaluations
        for pipe_record, block_record in zip(
            outcomes["async"].window_records, outcomes["batch"].window_records
        ):
            assert pipe_record.candidates == block_record.candidates
            assert pipe_record.values == block_record.values

    def test_invalid_pipeline_depth_rejected(self):
        from repro.exceptions import VAQEMError

        with pytest.raises(VAQEMError):
            IndependentWindowTuner(objective=lambda s: 0.0, pipeline_depth=0)


# ----------------------------------------------------------------------------
# Frontend async routing
# ----------------------------------------------------------------------------

class TestFrontendAsyncRouting:
    def test_estimator_submit_batch_matches_estimate_batch(
        self, device_noise, sweep_schedules, tfim4
    ):
        _, schedules = sweep_schedules
        estimator = ExpectationEstimator(device_noise, seed=9)
        blocking = [r.value for r in estimator.estimate_batch(schedules, tfim4)]
        async_results = gather(estimator.submit_batch(schedules, tfim4))
        assert [r.value for r in async_results] == blocking
        assert all(r.shots_per_group is None for r in async_results)
        estimator.engine.close()

    def test_vaqem_pipelined_flag_matches_blocking(self, device_noise, sweep_schedules, tfim4):
        """VAQEMConfig(pipelined=...) must not change any tuned energy."""
        from repro.vaqem import VAQEMConfig

        assert VAQEMConfig(pipelined=True).pipelined
        assert not VAQEMConfig(pipelined=False).pipelined

    def test_vqe_trajectories_pipeline_bit_identical(self, device, device_noise, tfim4):
        from repro.vqe import VQE

        ansatz = efficient_su2(4, reps=1, entanglement="linear")
        vqe = VQE(ansatz, tfim4, seed=4)
        rng = np.random.default_rng(4)
        points = [rng.uniform(-0.5, 0.5, ansatz.num_parameters) for _ in range(5)]
        ideal = vqe.evaluate_trajectory_ideal(points)
        assert ideal == [vqe.ideal_objective(p) for p in points]
        # Chunked async submission (chunk size 2 via max_workers) equals the
        # default chunking and the blocking reference, bit for bit.
        noisy_default = vqe.evaluate_trajectory_noisy(points, device)
        noisy_chunked = vqe.evaluate_trajectory_noisy(
            points, device, max_workers=2, parallelism="process"
        )
        assert noisy_default == noisy_chunked

    def test_runtime_session_submit_charges_and_executes(self, device_noise, sweep_schedules):
        from repro.runtime import RuntimeSession

        _, schedules = sweep_schedules
        engine = NoisyDensityMatrixEngine(device_noise, seed=1)
        session = RuntimeSession(engine=engine, machine_name="test")
        results = session.submit(schedules[:3])
        assert len(results) == 3
        assert session.num_circuits == 3
        assert session.num_jobs >= 1
        engine.close()
