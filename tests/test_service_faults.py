"""Seeded fault-injection harness for the service tier.

Each test injects one failure class the degradation contract names —
disconnects mid-request, malformed bytes, quota exhaustion, worker-pool
death, shutdown with in-flight batches — and checks the same three
invariants every time:

* the failing tenant gets a **typed** error (or a counted aborted
  connection), never a hang or a raw traceback;
* **no other tenant's results are corrupted** — post-chaos submissions are
  bit-identical to a clean, never-faulted engine;
* the server (or engine) **keeps serving** afterwards.

Everything is deterministic: sockets are driven byte-by-byte, the gated
engine blocks on explicit events, and worker pools are killed by pid — no
sleeps standing in for synchronization.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.circuits import efficient_su2
from repro.engine import NoisyDensityMatrixEngine, gather
from repro.exceptions import RateLimitError
from repro.frontend import ingest_json
from repro.service import EngineServer, ServiceClient, ServiceConfig, TenantPolicy

BELL_DOC = {
    "format": "repro-circuit", "version": 1, "num_qubits": 2, "num_clbits": 2,
    "instructions": [
        {"gate": "h", "qubits": [0]},
        {"gate": "cx", "qubits": [0, 1]},
        {"gate": "measure", "qubits": [0], "clbits": [0]},
        {"gate": "measure", "qubits": [1], "clbits": [1]},
    ],
}


def _envelope(tenant, document=BELL_DOC):
    return json.dumps(
        {"protocol": 1, "tenant": tenant, "programs": [{"op": "run", "program": document}]}
    ).encode("utf-8")


def _send_raw(server, data, shutdown_after=True, timeout=10.0):
    """Ship raw bytes at the server socket; returns whatever comes back."""
    with socket.create_connection((server.host, server.port), timeout=timeout) as sock:
        sock.sendall(data)
        if shutdown_after:
            sock.shutdown(socket.SHUT_WR)
        chunks = []
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        except (socket.timeout, ConnectionError):
            pass
        return b"".join(chunks)


def _wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = timeout / interval
    while deadline > 0:
        if predicate():
            return True
        deadline -= 1
        threading.Event().wait(interval)
    return predicate()


@pytest.fixture
def chaos_server(device_noise):
    engine = NoisyDensityMatrixEngine(device_noise, seed=23)
    config = ServiceConfig(
        default_policy=TenantPolicy(rate_per_second=10_000.0, burst=10_000),
        tenants={
            "quota-victim": TenantPolicy(rate_per_second=1e-9, burst=2),
        },
    )
    server = EngineServer(engine, config, own_engine=True, read_timeout=2.0).start()
    yield server
    server.close()


class TestConnectionFaults:
    def test_disconnect_mid_body_is_counted_and_harmless(self, chaos_server):
        body = _envelope("dropper")
        # Headers promise more bytes than ever arrive, then the client leaves.
        partial = (
            b"POST /v1/submit HTTP/1.1\r\n"
            b"Content-Length: %d\r\n\r\n" % (len(body) + 512,)
        ) + body[: len(body) // 2]
        _send_raw(chaos_server, partial)
        # A half-written request line, then nothing.
        _send_raw(chaos_server, b"POST /v1/sub")
        # An opened-and-abandoned connection (no bytes at all).
        _send_raw(chaos_server, b"")
        assert _wait_for(lambda: chaos_server.service.metrics.disconnects >= 3)
        # The dropper never made it into tenant accounting, and the server
        # still answers other tenants.
        client = ServiceClient(chaos_server.host, chaos_server.port, tenant="alive")
        assert client.run(BELL_DOC)["probabilities"]
        metrics = client.metrics()
        assert "dropper" not in metrics["tenants"]
        assert metrics["fleet"]["disconnects"] >= 3

    def test_garbage_bytes_get_a_typed_400(self, chaos_server):
        for junk in (b"\x00\x01\x02\xff\xfe\r\n\r\n", b"EHLO service\r\n\r\n", b"GET\r\n\r\n"):
            response = _send_raw(chaos_server, junk, shutdown_after=False)
            assert response.startswith(b"HTTP/1.1 400"), junk
            payload = json.loads(response.split(b"\r\n\r\n", 1)[1])
            assert payload["error"]["class"] == "ServiceProtocolError"
        assert chaos_server.service.metrics.protocol_errors >= 3

    def test_truncated_json_body_is_typed_not_fatal(self, chaos_server):
        body = _envelope("truncator")[:-25]
        request = (
            b"POST /v1/submit HTTP/1.1\r\nContent-Length: %d\r\n\r\n" % len(body)
        ) + body
        response = _send_raw(chaos_server, request, shutdown_after=False)
        assert response.startswith(b"HTTP/1.1 400")
        payload = json.loads(response.split(b"\r\n\r\n", 1)[1])
        assert payload["error"]["class"] == "ServiceProtocolError"
        assert "JSON" in payload["error"]["message"]


class TestQuotaFaults:
    def test_quota_exhaustion_is_isolated_per_tenant(self, chaos_server):
        victim = ServiceClient(chaos_server.host, chaos_server.port, tenant="quota-victim")
        bystander = ServiceClient(chaos_server.host, chaos_server.port, tenant="bystander")
        first = victim.run(BELL_DOC)
        victim.run(BELL_DOC)
        with pytest.raises(RateLimitError) as caught:
            victim.run(BELL_DOC)
        assert caught.value.status == 429
        assert caught.value.retry_after > 0
        # Exhaustion is per tenant: the bystander is admitted and — thanks to
        # the fleet store — served the victim's exact bytes.
        served = bystander.run(BELL_DOC)
        assert served["store"] == "hit"
        assert served["probabilities"] == first["probabilities"]
        rejected = victim.metrics()["tenants"]["quota-victim"]["rejected"]
        assert rejected["rate_limit"] == 1


class TestWorkerPoolDeath:
    def test_pool_death_is_one_typed_failure_then_full_recovery(self, device, device_noise):
        """A SIGKILLed worker pool fails its batch with the typed broken-pool
        error, is evicted from the registry, and the next batch rebuilds a
        fresh pool whose results are bit-identical to a never-faulted engine.
        """
        from repro.transpiler import transpile

        rng = np.random.default_rng(77)

        def batch(tag, count=3):
            schedules = []
            for index in range(count):
                ansatz = efficient_su2(2, reps=1, entanglement="linear")
                bound = ansatz.bind_parameters(
                    rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
                )
                bound.measure_all()
                bound.name = f"{tag}-{index}"
                schedules.append(transpile(bound, device).scheduled)
            return schedules

        warmup, doomed, recovery = batch("warm"), batch("doom"), batch("recover")
        engine = NoisyDensityMatrixEngine(device_noise, seed=31)
        try:
            gather(engine.submit_batch(warmup, max_workers=2, parallelism="process"))
            handles = engine._pools.handles()
            assert len(handles) == 1
            for pid in list(handles[0].executor._processes):
                os.kill(pid, signal.SIGKILL)
            with pytest.raises(BrokenProcessPool):
                gather(engine.submit_batch(doomed, max_workers=2, parallelism="process"))
            # The broken pool was retired, not left registered.
            assert engine._pools.handles() == []
            recovered = gather(
                engine.submit_batch(recovery, max_workers=2, parallelism="process")
            )
            assert engine._pools.handles() != []
        finally:
            engine.close()

        clean_engine = NoisyDensityMatrixEngine(device_noise, seed=31)
        try:
            clean = gather(clean_engine.submit_batch(recovery))
        finally:
            clean_engine.close()
        for after, reference in zip(recovered, clean):
            assert after.fingerprint == reference.fingerprint
            assert np.array_equal(after.probabilities, reference.probabilities)


class _GatedEngine(NoisyDensityMatrixEngine):
    """Engine whose dispatch blocks until the test opens the gate."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = threading.Event()
        self.dispatch_started = threading.Event()

    def _dispatch_batch(self, kind, items, kwargs, max_workers, parallelism, chains=None):
        self.dispatch_started.set()
        if not self.gate.wait(timeout=30):  # pragma: no cover - deadlock guard
            raise RuntimeError("test gate never opened")
        return super()._dispatch_batch(kind, items, kwargs, max_workers, parallelism, chains)


class TestShutdownFaults:
    def test_close_drains_inflight_batches_and_answers_them(self, device_noise):
        engine = _GatedEngine(device_noise, seed=23)
        server = EngineServer(engine, own_engine=True).start()
        client = ServiceClient(server.host, server.port, tenant="drainer")
        outcome = {}

        def submit():
            try:
                outcome["result"] = client.run(BELL_DOC)
            except Exception as error:  # pragma: no cover - asserted below
                outcome["error"] = error

        request_thread = threading.Thread(target=submit)
        request_thread.start()
        assert engine.dispatch_started.wait(timeout=10)

        closer = threading.Thread(target=server.close)
        closer.start()
        # close() must not abandon the admitted batch: the request thread is
        # still waiting while the gate is shut.
        request_thread.join(timeout=0.3)
        assert request_thread.is_alive()
        engine.gate.set()
        closer.join(timeout=30)
        request_thread.join(timeout=30)
        assert not closer.is_alive() and not request_thread.is_alive()
        assert "error" not in outcome, outcome.get("error")

        # The drained response is bit-identical to a clean engine's.
        clean_engine = NoisyDensityMatrixEngine(device_noise, seed=23)
        try:
            direct = clean_engine.run(ingest_json(BELL_DOC).engine_payload(clean_engine))
        finally:
            clean_engine.close()
        assert outcome["result"]["probabilities"] == [
            float(v) for v in direct.probabilities
        ]
        # And the server is actually gone: new connections are refused.
        with pytest.raises(OSError):
            socket.create_connection((server.host, server.port), timeout=2).close()


class TestPostChaosParity:
    def test_combined_chaos_leaves_results_bit_identical(self, chaos_server, device_noise):
        """The full gauntlet against one server, then parity for everyone."""
        # 1) disconnects, 2) garbage, 3) truncation, 4) quota exhaustion.
        _send_raw(chaos_server, b"POST /v1/submit HTTP/1.1\r\nContent-Length: 400\r\n\r\n{")
        _send_raw(chaos_server, b"\xde\xad\xbe\xef\r\n\r\n", shutdown_after=False)
        victim = ServiceClient(chaos_server.host, chaos_server.port, tenant="quota-victim")
        victim.run(BELL_DOC)
        victim.run(BELL_DOC)
        with pytest.raises(RateLimitError):
            victim.run(BELL_DOC)

        # Post-chaos: two fresh tenants get bit-identical results to a clean
        # in-process engine; every tenant's counters stay consistent.
        clean_engine = NoisyDensityMatrixEngine(device_noise, seed=23)
        try:
            direct = clean_engine.run(ingest_json(BELL_DOC).engine_payload(clean_engine))
        finally:
            clean_engine.close()
        expected = [float(v) for v in direct.probabilities]
        for tenant in ("phoenix", "lazarus"):
            client = ServiceClient(chaos_server.host, chaos_server.port, tenant=tenant)
            assert client.run(BELL_DOC)["probabilities"] == expected
        metrics = ServiceClient(
            chaos_server.host, chaos_server.port, tenant="auditor"
        ).metrics()
        for tenant, counters in metrics["tenants"].items():
            assert counters["submitted"] == counters["completed"] + sum(
                counters["rejected"].values()
            ), tenant
        assert metrics["fleet"]["disconnects"] >= 1
        assert metrics["fleet"]["protocol_errors"] >= 1
        assert metrics["status"] == "ok"
